//! Collaborative inference under injected network chaos — a live demo of
//! the fault-tolerant protocol layer: round-stamped envelopes, the
//! quarantine/readmission failure detector, and per-round health reports.
//!
//! ```text
//! cargo run --release --example chaos_inference
//! ```
//!
//! A 3-node cluster runs 30 inference rounds while every endpoint's
//! outbound traffic passes through a seeded [`ChaosTransport`] that drops,
//! delays, corrupts and duplicates messages. Midway through, worker 2 is
//! black-holed entirely; the failure detector quarantines it (so its
//! timeout stops taxing every round), and the recovery subsystem ships
//! expert 2's weights to worker 1 — which has certified spare memory —
//! over chunked, CRC-checked `LoadExpert`/`LoadChunk` envelopes, so the
//! full team keeps answering while the node is gone. Once the link heals,
//! a probe readmits worker 2 and the expert is handed back to it.
//!
//! Set `TEAMNET_TRACE=/path/to/trace.jsonl` to record the master's span
//! trace (round / broadcast / expert.forward / gather / argmin) through a
//! [`JsonlSink`], then render the latency table with:
//!
//! ```text
//! TEAMNET_TRACE=trace.jsonl cargo run --release --example chaos_inference
//! cargo xtask trace-report trace.jsonl
//! ```
//!
//! Independently of the full trace, a fixed-capacity flight recorder is
//! always armed: the last 256 trace events circulate in a [`RingSink`]
//! (zero steady-state allocation), and the moment the failure detector
//! quarantines worker 2 the runtime dumps the ring to
//! `target/flight/flight-<n>.jsonl` — the dump's final line is the
//! `flight.quarantine` mark naming the peer and round that triggered it.

use std::sync::Arc;
use std::time::{Duration, Instant};
use teamnet_core::runtime::{
    serve_worker_with_config, shutdown_workers, InferenceSession, MasterConfig, WorkerConfig,
};
use teamnet_core::{
    build_expert, FailureDetectorConfig, HostBudget, PeerHealth, RecoveryConfig, RecoveryManager,
};
use teamnet_net::{ChannelTransport, ChaosConfig, ChaosTransport, SystemClock, Transport};
use teamnet_nn::ModelSpec;
use teamnet_obs::{wrap::fold_transport_stats, JsonlSink, NullSink, Obs, TraceSink};
use teamnet_tensor::Tensor;

const ROUNDS: usize = 30;

fn chaos(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        drop_prob: 0.10,
        delay_prob: 0.08,
        corrupt_prob: 0.05,
        duplicate_prob: 0.08,
        max_delay_msgs: 3,
    }
}

fn health_glyph(h: PeerHealth) -> &'static str {
    match h {
        PeerHealth::Live => "live",
        PeerHealth::Suspect => "suspect",
        PeerHealth::Quarantined => "QUARANTINED",
        PeerHealth::Probing => "probing",
    }
}

fn main() {
    let spec = ModelSpec::mlp(2, 32);
    let mut mesh = ChannelTransport::mesh(3);
    let worker2 = ChaosTransport::with_config(mesh.pop().expect("node 2"), chaos(0xBEE2));
    let worker1 = ChaosTransport::with_config(mesh.pop().expect("node 1"), chaos(0xBEE1));
    let master = ChaosTransport::with_config(mesh.pop().expect("node 0"), chaos(0xBEE0));

    // TEAMNET_TRACE=<path> records the master's full trace; either way
    // the flight recorder is armed: the last 256 events circulate in a
    // ring and anomaly paths (quarantine, round failure) dump them.
    let flight_dir = std::path::Path::new("target/flight");
    let primary: Arc<dyn TraceSink> = match std::env::var("TEAMNET_TRACE") {
        Ok(path) => {
            let sink = JsonlSink::create(&path).expect("create trace file");
            println!("tracing master session to {path}");
            Arc::new(sink)
        }
        Err(_) => Arc::new(NullSink),
    };
    let obs = Obs::with_flight_recorder(Arc::new(SystemClock), primary, 256, flight_dir);

    let config = MasterConfig {
        worker_timeout: Duration::from_millis(150),
        require_all_workers: false,
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 2,
            probe_interval: 3,
        },
        obs: obs.clone(),
        ..MasterConfig::default()
    };

    crossbeam::thread::scope(|scope| {
        for (i, node) in [&worker1, &worker2].into_iter().enumerate() {
            let spec = spec.clone();
            scope.spawn(move |_| {
                let mut expert = build_expert(&spec, i as u64 + 1);
                // Each worker certifies spare memory, so it can host a
                // quarantined peer's expert next to its own.
                let worker_config = WorkerConfig {
                    budget: HostBudget::new(512 << 20, 64 << 20),
                    ..WorkerConfig::default()
                };
                let stats =
                    serve_worker_with_config(node, 0, &mut expert, worker_config).expect("worker");
                println!(
                    "worker {} done: {} rounds served, {} probes answered, {} bad batches skipped, \
                     {} expert loads hosted",
                    i + 1,
                    stats.rounds_served,
                    stats.probes_answered,
                    stats.malformed_skipped,
                    stats.loads_accepted
                );
            });
        }

        let mut session = InferenceSession::new(&master, config);
        // Register every worker's expert (architecture + trained weights +
        // certified resident footprint) and each node's memory budget, so
        // a quarantined node's expert can be re-placed on a survivor.
        let mut recovery = RecoveryManager::new(RecoveryConfig {
            chunk_bytes: 32 * 1024,
            ack_timeout: Duration::from_millis(300),
            obs: obs.clone(),
            ..RecoveryConfig::default()
        });
        for node in 1..3usize {
            let mut twin = build_expert(&spec, node as u64);
            let state = teamnet_nn::state_vec(&mut twin);
            recovery.register_expert(node, node, spec.clone(), &state, 1 << 20);
            recovery.register_budget(node, HostBudget::new(512 << 20, 64 << 20));
        }
        session.set_recovery(recovery);
        let mut expert = build_expert(&spec, 0);
        println!("30 rounds of inference under seeded chaos (worker 2 dies at round 10, heals at round 18):\n");
        let mut prev_migrations = 0;
        let mut was_away = false;
        for round in 0..ROUNDS {
            if round == 10 {
                master.blackhole(2);
                println!("--- black-holing worker 2 ---");
            }
            if round == 18 {
                master.heal(2);
                println!("--- link to worker 2 healed ---");
            }
            let images = Tensor::full([2, 1, 28, 28], (round % 5) as f32 * 0.2);
            let start = Instant::now();
            let report = session.infer(&master, &mut expert, &images).expect("infer");
            let winners: Vec<usize> = report.predictions.iter().map(|p| p.expert).collect();
            let health: Vec<String> = report
                .peers
                .iter()
                .filter(|(&i, _)| i != 0)
                .map(|(i, p)| format!("w{i}={}", health_glyph(p.health)))
                .collect();
            let away: Vec<String> = report
                .expert_hosts
                .iter()
                .filter(|&(&e, &h)| e != h)
                .map(|(e, h)| format!("expert {e}@w{h}"))
                .collect();
            println!(
                "round {round:>2} ({:>5.0?}): winners {winners:?}  {}  [stale {} corrupt {} malformed {}]{}",
                start.elapsed(),
                health.join(" "),
                report.stale_discarded,
                report.corrupt_discarded,
                report.malformed_discarded,
                if away.is_empty() {
                    String::new()
                } else {
                    format!("  hosting: {}", away.join(" "))
                }
            );
            if report.migrations > prev_migrations && !away.is_empty() {
                println!("--- re-placed: {} ---", away.join(" "));
            }
            prev_migrations = report.migrations;
            if was_away && away.is_empty() {
                println!("--- expert handed back to its readmitted home ---");
            }
            was_away = !away.is_empty();
        }

        let stats = master.stats();
        println!(
            "\nmaster chaos stats: {} sent, {} dropped, {} delayed, {} corrupted, {} duplicated",
            stats.messages_sent,
            stats.messages_dropped,
            stats.messages_delayed,
            stats.messages_corrupted,
            stats.messages_duplicated
        );
        // Fold the transport's fault counters into the metrics registry so
        // the snapshot below is the one place that tells the whole story.
        fold_transport_stats(&obs.metrics, "master.transport", &stats);
        if obs.enabled() {
            obs.tracer.flush();
            println!("\nsession metrics:\n{}", obs.metrics.snapshot().summary());
        }
        let dumps = obs.flight.as_ref().map_or(0, |f| f.dump_count());
        println!("\nflight recorder: {dumps} dump(s) in {}", flight_dir.display());
        if dumps > 0 {
            let first = flight_dir.join("flight-0.jsonl");
            let text = std::fs::read_to_string(&first).expect("read flight dump");
            let last = text.lines().last().expect("non-empty dump");
            assert!(
                last.contains("flight.quarantine"),
                "flight dump must end with the triggering transition, got: {last}"
            );
            println!(
                "  {} ends with the triggering transition: {last}",
                first.display()
            );
        }
        shutdown_workers(master.inner()).expect("shutdown");
    })
    .expect("scope");
}
