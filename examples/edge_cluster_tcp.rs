//! A real distributed TeamNet deployment over TCP sockets — the paper's
//! Figure 1(d) protocol, with every node in its own thread talking through
//! the loopback interface exactly as edge devices would over WiFi.
//!
//! ```text
//! cargo run --release --example edge_cluster_tcp
//! ```
//!
//! The master broadcasts each sensor reading, all nodes run their expert
//! in parallel, workers return `(label, entropy)` pairs, and the master
//! takes the least-uncertain answer. The example also demonstrates
//! degraded operation when a worker dies mid-service.

use rand::{rngs::StdRng, SeedableRng};
use std::time::{Duration, Instant};
use teamnet_core::runtime::{master_infer, serve_worker, shutdown_workers, MasterConfig};
use teamnet_core::{build_expert, TrainConfig, Trainer};
use teamnet_data::synth_digits;
use teamnet_net::TcpTransport;
use teamnet_nn::{load_state, state_vec, ModelSpec};

const K: usize = 3;

fn main() {
    // Train a 3-expert team in-process first (deployment ships weights).
    let mut rng = StdRng::seed_from_u64(1);
    let data = synth_digits(2_000, &mut rng);
    let (train, test) = data.split(1_600);
    let spec = ModelSpec::mlp(4, 96);
    let mut trainer = Trainer::new(spec.clone(), K, TrainConfig::default());
    trainer.train(&train);
    let mut team = trainer.into_team();
    println!(
        "trained 3-expert team, in-process accuracy {:.1}%",
        team.evaluate(&test).accuracy * 100.0
    );

    // Snapshot each expert's weights — this is the deployment payload.
    let states: Vec<_> = (0..K).map(|i| state_vec(team.expert_mut(i))).collect();

    // Stand up a 3-node TCP mesh on loopback.
    let nodes = TcpTransport::mesh_localhost(K).expect("tcp mesh");
    println!("TCP mesh up: {K} nodes on 127.0.0.1");

    crossbeam::thread::scope(|scope| {
        // Nodes 1..K are workers, each loading its own expert.
        for (i, node) in nodes.iter().enumerate().skip(1) {
            let spec = spec.clone();
            let state = states[i].clone();
            scope.spawn(move |_| {
                let mut expert = build_expert(&spec, 0);
                load_state(&mut expert, &state);
                serve_worker(node, 0, &mut expert).expect("worker loop");
                println!("worker {i}: shut down cleanly");
            });
        }

        // Node 0 is the master with its own expert.
        let mut master_expert = build_expert(&spec, 0);
        load_state(&mut master_expert, &states[0]);
        let config = MasterConfig::default();

        // Serve 200 "sensor events" and measure wall-clock + accuracy.
        let mut correct = 0usize;
        let rounds = 200.min(test.len());
        let start = Instant::now();
        for i in 0..rounds {
            let image = test.images().select_rows(&[i]);
            let preds = master_infer(&nodes[0], &mut master_expert, &image, &config)
                .expect("collaborative inference");
            if preds[0].label == test.labels()[i] {
                correct += 1;
            }
        }
        let per_inference = start.elapsed() / rounds as u32;
        println!(
            "distributed accuracy over TCP: {:.1}% at {per_inference:?}/inference",
            correct as f64 / rounds as f64 * 100.0
        );

        // Degraded mode: tolerate missing workers.
        let degraded = MasterConfig {
            worker_timeout: Duration::from_millis(200),
            require_all_workers: false,
            ..MasterConfig::default()
        };
        shutdown_workers(&nodes[0]).expect("shutdown broadcast");
        std::thread::sleep(Duration::from_millis(100)); // let workers exit
        let image = test.images().select_rows(&[0]);
        let preds = master_infer(&nodes[0], &mut master_expert, &image, &degraded)
            .expect("degraded inference");
        println!(
            "after all workers left: master alone predicts {} (expert {})",
            preds[0].label, preds[0].expert
        );
    })
    .expect("cluster threads");
}
