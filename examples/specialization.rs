//! Reproduces the paper's Figure 9 in miniature: trains a two-expert
//! TeamNet on the synthetic CIFAR-like dataset and prints which expert
//! claimed which class — the machines/animals split the paper observes.
//!
//! ```text
//! cargo run --release --example specialization
//! ```

use rand::{rngs::StdRng, SeedableRng};
use teamnet_core::{TrainConfig, Trainer};
use teamnet_data::{superclass, synth_objects, SuperClass, OBJECT_CLASSES};
use teamnet_nn::ModelSpec;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let data = synth_objects(1_200, &mut rng);
    let (train, test) = data.split(1_000);

    // Small Shake-Shake experts keep this example fast (≈ a minute).
    let spec = ModelSpec::ShakeShake {
        blocks_per_stage: 1,
        base_channels: 6,
        in_channels: 3,
        image_hw: 32,
        classes: 10,
    };
    let config = TrainConfig {
        epochs: 3,
        batch_size: 32,
        seed: 3,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(spec, 2, config);
    println!(
        "training 2 Shake-Shake experts on {} images ...",
        train.len()
    );
    trainer.train(&train);

    let mut team = trainer.into_team();
    let eval = team.evaluate(&test);
    println!("team accuracy: {:.1}%\n", eval.accuracy * 100.0);

    println!(
        "{:<12} {:>9} {:>9}  super-category",
        "class", "expert 0", "expert 1"
    );
    let share = eval.specialization();
    for (class, row) in share.iter().enumerate() {
        let tag = match superclass(class) {
            SuperClass::Machine => "machine",
            SuperClass::Animal => "animal",
        };
        println!(
            "{:<12} {:>8.0}% {:>8.0}%  {tag}",
            OBJECT_CLASSES[class],
            row[0] * 100.0,
            row[1] * 100.0
        );
    }

    // Aggregate by super-category, as the paper's narrative does.
    let mut machine = [0.0f64; 2];
    let mut animal = [0.0f64; 2];
    let (mut m, mut a) = (0, 0);
    for (class, row) in share.iter().enumerate() {
        match superclass(class) {
            SuperClass::Machine => {
                m += 1;
                machine[0] += row[0];
                machine[1] += row[1];
            }
            SuperClass::Animal => {
                a += 1;
                animal[0] += row[0];
                animal[1] += row[1];
            }
        }
    }
    println!(
        "\nmachines won by expert 0/1: {:.0}% / {:.0}%",
        machine[0] / m as f64 * 100.0,
        machine[1] / m as f64 * 100.0
    );
    println!(
        "animals  won by expert 0/1: {:.0}% / {:.0}%",
        animal[0] / a as f64 * 100.0,
        animal[1] / a as f64 * 100.0
    );
    println!("\n(the paper's Figure 9 reports the same effect: one expert takes the");
    println!("machine classes, the other the animal classes)");
}
