//! Quickstart: train a two-expert TeamNet on synthetic digits and run
//! collaborative inference, all in-process.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::{rngs::StdRng, SeedableRng};
use teamnet_core::{TrainConfig, Trainer};
use teamnet_data::synth_digits;
use teamnet_nn::ModelSpec;

fn main() {
    // 1. Data: a 10-class digit dataset (MNIST stand-in).
    let mut rng = StdRng::seed_from_u64(0);
    let data = synth_digits(3_000, &mut rng);
    let (train, test) = data.split(2_400);
    println!(
        "training on {} examples, testing on {}",
        train.len(),
        test.len()
    );

    // 2. Train two 4-layer MLP experts with competitive/selective learning
    //    (Algorithms 1-3 of the paper).
    let spec = ModelSpec::mlp(4, 128);
    let config = TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(spec, 2, config);
    trainer.train(&train);

    // 3. The gate converged when each expert holds ~1/2 of the data.
    let history = trainer.history();
    let last = history.records.last().expect("non-empty history");
    println!(
        "after {} iterations the experts hold {:.1}% / {:.1}% of the data",
        history.len(),
        last.cumulative_shares[0] * 100.0,
        last.cumulative_shares[1] * 100.0
    );

    // 4. Collaborative inference: every expert predicts, least predictive
    //    entropy wins (Section V).
    let mut team = trainer.into_team();
    let eval = team.evaluate(&test);
    println!("collaborative accuracy: {:.1}%", eval.accuracy * 100.0);
    println!("expert win counts on the test set: {:?}", eval.expert_wins);

    // 5. Peek at one prediction.
    let one = test.images().select_rows(&[0]);
    let pred = &team.predict(&one)[0];
    println!(
        "first test image: predicted class {} by expert {} (entropy {:.3}), truth {}",
        pred.label,
        pred.expert,
        pred.entropy,
        test.labels()[0]
    );
}
