//! Cross-node causal tracing soak: a 3-node cluster where *every* node
//! records its own span trace, ready for offline assembly into one
//! causal DAG.
//!
//! ```text
//! cargo run --release --example trace_soak
//! cargo xtask trace-assemble 0=target/trace-soak/node0.jsonl \
//!     1=target/trace-soak/node1.jsonl 2=target/trace-soak/node2.jsonl
//! ```
//!
//! The master (node 0) runs seeded inference rounds; because
//! `MasterConfig::trace_seed` is set and its tracer is live, each round
//! gets a deterministic trace id and every `Envelope` on the wire carries
//! the 16-byte trace extension. The workers' `worker.handle` spans attach
//! to the master's round spans through those contexts, so
//! `cargo xtask trace-assemble` can merge the three JSONL files into a
//! single DAG with zero orphan spans, reconcile the nodes' clocks from
//! the send/recv edge offsets, and attribute each round's latency to
//! compute / wire / wait / retry. CI runs exactly this pipeline and
//! asserts the assembly stays orphan-free.

use std::sync::Arc;
use std::time::Duration;
use teamnet_core::build_expert;
use teamnet_core::runtime::{
    serve_worker_with_config, shutdown_workers, InferenceSession, MasterConfig, WorkerConfig,
};
use teamnet_net::{ChannelTransport, SystemClock};
use teamnet_nn::ModelSpec;
use teamnet_obs::{JsonlSink, Obs};
use teamnet_tensor::Tensor;

const ROUNDS: usize = 8;
const TRACE_SEED: u64 = 0x7EA17EA1;

fn node_obs(dir: &std::path::Path, node: usize) -> (std::path::PathBuf, Obs) {
    let path = dir.join(format!("node{node}.jsonl"));
    let sink = JsonlSink::create(&path).expect("create per-node trace file");
    (path, Obs::new(Arc::new(SystemClock), Arc::new(sink)))
}

fn main() {
    let dir = std::path::Path::new("target/trace-soak");
    std::fs::create_dir_all(dir).expect("create trace dir");

    let spec = ModelSpec::mlp(2, 32);
    let mut mesh = ChannelTransport::mesh(3);
    let worker2 = mesh.pop().expect("node 2");
    let worker1 = mesh.pop().expect("node 1");
    let master = mesh.pop().expect("node 0");

    let (master_path, master_obs) = node_obs(dir, 0);
    let config = MasterConfig {
        worker_timeout: Duration::from_millis(500),
        obs: master_obs.clone(),
        trace_seed: TRACE_SEED,
        ..MasterConfig::default()
    };

    let mut worker_paths = Vec::new();
    crossbeam::thread::scope(|scope| {
        for (i, node) in [&worker1, &worker2].into_iter().enumerate() {
            let spec = spec.clone();
            let (path, obs) = node_obs(dir, i + 1);
            worker_paths.push(path);
            scope.spawn(move |_| {
                let mut expert = build_expert(&spec, i as u64 + 1);
                let worker_config = WorkerConfig {
                    obs: obs.clone(),
                    ..WorkerConfig::default()
                };
                serve_worker_with_config(node, 0, &mut expert, worker_config).expect("worker");
                obs.tracer.flush();
            });
        }

        let mut session = InferenceSession::new(&master, config);
        let mut expert = build_expert(&spec, 0);
        for round in 0..ROUNDS {
            let images = Tensor::full([2, 1, 28, 28], (round % 5) as f32 * 0.2);
            let report = session.infer(&master, &mut expert, &images).expect("infer");
            let winners: Vec<usize> = report.predictions.iter().map(|p| p.expert).collect();
            println!("round {round}: winners {winners:?}");
        }
        shutdown_workers(&master).expect("shutdown");
        master_obs.tracer.flush();
    })
    .expect("scope");

    println!("\nper-node traces written:");
    println!("  0={}", master_path.display());
    for (i, p) in worker_paths.iter().enumerate() {
        println!("  {}={}", i + 1, p.display());
    }
    println!(
        "\nassemble them with:\n  cargo xtask trace-assemble 0={} 1={} 2={}",
        master_path.display(),
        worker_paths[0].display(),
        worker_paths[1].display()
    );
}
