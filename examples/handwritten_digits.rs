//! The paper's handwritten-digit experiment (Section VI-C) end to end:
//! trains the MLP-8 baseline, TeamNet 2×MLP-4 and 4×MLP-2, prints the
//! accuracy comparison and the gate-convergence trace of Figure 6, and
//! prices each deployment on the simulated Raspberry Pi cluster of
//! Figure 5.
//!
//! ```text
//! cargo run --release --example handwritten_digits
//! ```
//!
//! Set `MNIST_DIR=/path/to/idx/files` to run on the real MNIST instead of
//! the synthetic stand-in.

use rand::{rngs::StdRng, SeedableRng};
use teamnet_core::{build_expert, TrainConfig, Trainer};
use teamnet_data::synth_digits;
use teamnet_nn::{accuracy, softmax_cross_entropy, Layer, Mode, ModelSpec, Sgd};
use teamnet_partition::{simulate, ModelCost, Strategy, Workload};
use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let data = synth_digits(5_000, &mut rng);
    let (train, test) = data.split(4_000);
    let hidden = 256;

    // --- Baseline: one 8-layer MLP trained on everything. ---
    let base_spec = ModelSpec::mlp(8, hidden);
    let mut baseline = build_expert(&base_spec, 7);
    let mut opt = Sgd::with_momentum(0.01, 0.9);
    for _ in 0..6 {
        let shuffled = train.shuffled(&mut rng);
        for batch in shuffled.batches(64) {
            let logits = baseline.forward(&batch.images, Mode::Train);
            let out = softmax_cross_entropy(&logits, &batch.labels);
            baseline.zero_grad();
            baseline.backward(&out.grad);
            opt.step(&mut baseline);
        }
    }
    let base_acc = accuracy(&baseline.forward(test.images(), Mode::Eval), test.labels());
    println!("MLP-8 baseline accuracy: {:.1}%", base_acc * 100.0);

    // --- TeamNet with 2 and 4 experts. ---
    for k in [2usize, 4] {
        let spec = ModelSpec::mlp(8 / k, hidden);
        let config = TrainConfig {
            epochs: 6,
            seed: 7,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(spec.clone(), k, config);
        trainer.train(&train);
        let imbalance = trainer.history().final_imbalance(10);
        let mut team = trainer.into_team();
        let eval = team.evaluate(&test);
        println!(
            "TeamNet {k}xMLP-{}: accuracy {:.1}%, final share imbalance {:.3} (set point {:.2})",
            8 / k,
            eval.accuracy * 100.0,
            imbalance,
            1.0 / k as f32
        );

        // Price this deployment on simulated Raspberry Pis (Figure 5).
        let full = build_expert(&base_spec, 0);
        let expert = build_expert(&spec, 0);
        let workload = Workload {
            full: ModelCost::measure(&full, &base_spec.input_dims()),
            expert: ModelCost::measure(&expert, &spec.input_dims()),
            result_bytes: 20,
        };
        let cluster = SimCluster::homogeneous(DeviceProfile::raspberry_pi_3b_plus(), k);
        let report = simulate(
            Strategy::TeamNet { k },
            &workload,
            &cluster,
            ComputeUnit::Cpu,
        );
        println!(
            "  modeled on {k} Raspberry Pi 3B+: {:.1} ms/inference, {:.1}% memory, {:.1}% CPU",
            report.sim.makespan.as_millis_f64(),
            report.memory_percent,
            report.sim.cpu_percent[0]
        );
    }
}
