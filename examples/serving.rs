//! Multi-tenant serving quickstart: many concurrent clients, one
//! collaborative team.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! A 3-node TeamNet cluster sits behind a [`ServeEngine`]: concurrent
//! tenants submit row-batched tensors, the engine coalesces whatever is
//! pending under the dual trigger (8 ms deadline or 64 rows) into one
//! batched tensor, runs a single fault-tolerant collaborative round, and
//! demuxes each tenant's argmin-entropy rows back to its caller. Two
//! client flavours are shown:
//!
//! * in-process: [`ServeHandle::submit`] + [`Ticket::wait`];
//! * over the network: [`TcpServeFront`] + [`ServeClient`] speaking the
//!   framed wire protocol, including a malformed request coming back as
//!   a typed [`ServeError`] instead of panicking a worker.

use std::time::Duration;
use teamnet_core::build_expert;
use teamnet_core::runtime::{serve_worker, shutdown_workers, MasterConfig};
use teamnet_net::ChannelTransport;
use teamnet_nn::ModelSpec;
use teamnet_serve::{BatcherConfig, ServeClient, ServeConfig, ServeEngine, TcpServeFront};
use teamnet_tensor::Tensor;

const TENANTS: usize = 4;
const REQUESTS_PER_TENANT: usize = 5;

fn main() {
    let spec = ModelSpec::mlp(2, 16);
    let nodes = ChannelTransport::mesh(3);

    crossbeam::thread::scope(|scope| {
        // Workers 1 and 2 each serve their own expert.
        for (i, node) in nodes.iter().enumerate().skip(1) {
            let spec = spec.clone();
            scope.spawn(move |_| {
                let mut expert = build_expert(&spec, i as u64);
                serve_worker(node, 0, &mut expert).expect("worker loop");
            });
        }

        // The master-side engine: admission + dual-trigger batching over
        // one persistent InferenceSession.
        let config = ServeConfig {
            batch: BatcherConfig::default(), // 64 rows or 8 ms
            input_dims: vec![1, 28, 28],
            master: MasterConfig {
                worker_timeout: Duration::from_millis(500),
                require_all_workers: false,
                ..MasterConfig::default()
            },
        };
        let mut engine = ServeEngine::new(&nodes[0], build_expert(&spec, 0), config);
        let handle = engine.handle();

        // A framed TCP front door on an ephemeral loopback port.
        let front = TcpServeFront::bind("127.0.0.1:0", handle.clone()).expect("bind front");
        let addr = front.local_addr();
        println!("serving on {addr}");

        // The engine thread: flushes a coalesced batch whenever the
        // deadline fires or a submission fills the batch.
        let master_node = &nodes[0];
        let engine_thread = scope.spawn(move |_| engine.run(master_node));

        // TCP tenants, each its own connection and request stream.
        let mut clients = Vec::new();
        for tenant in 0..TENANTS {
            clients.push(scope.spawn(move |_| {
                let mut client = ServeClient::connect(&addr).expect("connect");
                for req in 0..REQUESTS_PER_TENANT {
                    let rows = 1 + (tenant + req) % 3;
                    let fill = 0.1 + tenant as f32 * 0.2;
                    let preds = client
                        .infer(&Tensor::full(vec![rows, 1, 28, 28], fill))
                        .expect("inference");
                    assert_eq!(preds.len(), rows);
                    if req == 0 {
                        println!(
                            "tenant {tenant}: label {} from expert {} (entropy {:.3})",
                            preds[0].label, preds[0].expert, preds[0].entropy
                        );
                    }
                }
            }));
        }

        // An in-process tenant rides the same batches without a socket.
        let ticket = handle
            .submit(&Tensor::full([2, 1, 28, 28], 0.9))
            .expect("submit");
        let preds = ticket.wait().expect("in-process inference");
        println!(
            "in-process tenant: {} rows, first label {} from expert {}",
            preds.len(),
            preds[0].label,
            preds[0].expert
        );

        // A mis-shaped request is rejected with a typed error frame at
        // the front door — it never reaches (let alone panics) a worker.
        let mut bad = ServeClient::connect(&addr).expect("connect");
        match bad.infer(&Tensor::full([1, 7, 7], 0.0)) {
            Err(e) => println!("malformed request rejected: {e}"),
            Ok(_) => unreachable!("a [1,7,7] tensor must not be served"),
        }

        for c in clients {
            c.join().expect("tenant thread");
        }
        handle.close();
        engine_thread.join().expect("engine thread");
        // `bad` is still connected and never says goodbye: shutdown
        // force-closes its socket rather than waiting on it.
        front.shutdown();
        shutdown_workers(&nodes[0]).expect("shutdown broadcast");
        println!(
            "served {} requests; clean shutdown",
            TENANTS * REQUESTS_PER_TENANT + 2
        );
    })
    .expect("cluster threads");
}
