//! Runs every *real* distributed inference implementation once, over
//! in-process transports, and prints measured wall-clock per strategy —
//! TeamNet vs MPI-Matrix vs SG-MoE (RPC and point-to-point) — the live
//! counterpart of the simulated Tables I/II.
//!
//! ```text
//! cargo run --release --example baseline_showdown
//! ```

use rand::{rngs::StdRng, SeedableRng};
use std::time::{Duration, Instant};
use teamnet_core::build_expert;
use teamnet_core::runtime::{master_infer, serve_worker, shutdown_workers, MasterConfig};
use teamnet_moe::{
    infer_p2p, infer_rpc, serve_expert_p2p, serve_expert_rpc, shutdown_experts_p2p, SgMoe,
    SgMoeConfig,
};
use teamnet_net::rpc::ServerControl;
use teamnet_net::{ChannelTransport, Communicator};
use teamnet_nn::{state_vec, Layer, Mode, ModelSpec};
use teamnet_partition::{mpi_matrix_forward, shard_mlp};
use teamnet_tensor::Tensor;

const ROUNDS: u32 = 200;

fn time_per_round(f: impl FnMut()) -> Duration {
    let mut f = f;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        f();
    }
    start.elapsed() / ROUNDS
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let image = Tensor::rand_uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);
    let base_spec = ModelSpec::mlp(8, 256);
    let expert_spec = ModelSpec::mlp(4, 256);

    // Baseline: one deep model, no communication.
    let mut baseline = build_expert(&base_spec, 0);
    let t = time_per_round(|| {
        baseline.forward(&image, Mode::Eval);
    });
    println!("{:<28} {:>12?}", "baseline MLP-8 (local)", t);

    // TeamNet x2 over in-process transport.
    {
        let nodes = ChannelTransport::mesh(2);
        crossbeam::thread::scope(|scope| {
            let node1 = &nodes[1];
            let spec = expert_spec.clone();
            scope.spawn(move |_| {
                let mut expert = build_expert(&spec, 1);
                serve_worker(node1, 0, &mut expert).unwrap();
            });
            let mut master = build_expert(&expert_spec, 0);
            let config = MasterConfig::default();
            let t = time_per_round(|| {
                master_infer(&nodes[0], &mut master, &image, &config).unwrap();
            });
            println!("{:<28} {:>12?}", "TeamNet x2 (broadcast+gather)", t);
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }

    // MPI-Matrix x2: per-layer all-gathers.
    {
        let mut model = build_expert(&base_spec, 0);
        let state = state_vec(&mut model);
        let nodes = ChannelTransport::mesh(2);
        let flat = image.reshape([1, 784]).unwrap();
        crossbeam::thread::scope(|scope| {
            let node1 = &nodes[1];
            let shards1 = shard_mlp(&base_spec, &state, 1, 2);
            let stop = ServerControl::new();
            let stop_worker = stop.clone();
            scope.spawn(move |_| {
                let comm = Communicator::new(node1);
                while !stop_worker.is_stopped() {
                    if mpi_matrix_forward(&comm, &shards1, None).is_err() {
                        break;
                    }
                }
            });
            let shards0 = shard_mlp(&base_spec, &state, 0, 2);
            let comm = Communicator::new(&nodes[0]);
            let t = time_per_round(|| {
                mpi_matrix_forward(&comm, &shards0, Some(&flat)).unwrap();
            });
            println!("{:<28} {:>12?}", "MPI-Matrix x2 (per-layer)", t);
            stop.stop();
            nodes[0].shutdown();
            nodes[1].shutdown();
        })
        .unwrap();
    }

    // SG-MoE x2 over RPC and raw point-to-point.
    for rpc in [true, false] {
        let nodes = ChannelTransport::mesh(2);
        let config = SgMoeConfig {
            top_k: 1,
            ..SgMoeConfig::default()
        };
        let mut moe = SgMoe::new(expert_spec.clone(), 2, config.clone());
        crossbeam::thread::scope(|scope| {
            let node1 = &nodes[1];
            let control = ServerControl::new();
            let worker_control = control.clone();
            let spec = expert_spec.clone();
            let seed = config.seed.wrapping_add(0xB0B + 1);
            scope.spawn(move |_| {
                let mut expert = build_expert(&spec, seed);
                if rpc {
                    serve_expert_rpc(node1, &worker_control, &mut expert).unwrap();
                } else {
                    serve_expert_p2p(node1, 0, &mut expert).unwrap();
                }
            });
            let timeout = Duration::from_secs(5);
            let t = time_per_round(|| {
                if rpc {
                    infer_rpc(&nodes[0], &mut moe, &image, timeout).unwrap();
                } else {
                    infer_p2p(&nodes[0], &mut moe, &image, timeout).unwrap();
                }
            });
            let label = if rpc {
                "SG-MoE-G x2 (rpc gate)"
            } else {
                "SG-MoE-M x2 (p2p gate)"
            };
            println!("{label:<28} {t:>12?}");
            if rpc {
                control.stop();
            } else {
                shutdown_experts_p2p(&nodes[0]).unwrap();
            }
        })
        .unwrap();
    }

    println!("\n(in-process transports: the ordering, not the absolute values, is the");
    println!("point — on WiFi every MPI-Matrix message would cost milliseconds)");
}
