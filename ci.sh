#!/usr/bin/env sh
# Full CI gate, in dependency order, failing fast:
#   1. formatting        (cheap, catches accidental diffs)
#   2. release build     (also builds the xtask binary)
#   3. invariant audit   (lint + manifest + static shape checks)
#   4. test suite        (unit + property + integration)
#   5. chaos soak        (50 seeded fault-injected inference rounds)
set -eu
cd "$(dirname "$0")"

cargo fmt --check
cargo build --release
cargo xtask check
cargo test -q --workspace
cargo test -q --release --test chaos_soak
