#!/usr/bin/env sh
# Full CI gate, in dependency order, failing fast:
#   1. formatting        (cheap, catches accidental diffs)
#   2. release build     (also builds the xtask binary)
#   3. invariant audit   (lint + manifest + static shape checks)
#   4. concurrency audit (lock order, determinism taint, protocol
#                         exhaustiveness, narrowing casts — symbol/
#                         call-graph analysis)
#   4b. model checking   (cargo xtask mc: bounded exhaustive exploration
#                         of the recovery-transfer and session-gather
#                         FSMs under a drop/dup/reorder/crash/deadline
#                         adversary, with a compiled-in protocol mutant
#                         as negative control and a seeded cross-check of
#                         the fault model against ChaosTransport; fails
#                         loudly if a budget truncates exploration —
#                         acknowledging that requires --allow-truncation)
#   5. resource certs    (cargo xtask cost --check: the static per-expert
#                         resource certification of the paper model grid
#                         must match the checked-in COST.json; the
#                         allocation-honesty test in stage 6 asserts the
#                         certified peaks against instrumented forwards)
#   6. test suite        (unit + property + integration), run twice:
#                         TEAMNET_THREADS=1 pins the sequential kernels,
#                         TEAMNET_THREADS=4 forces the parallel paths —
#                         the pool determinism contract says both runs
#                         must see bit-identical numerics
#   7. kernel-bench smoke (parallel-vs-sequential bit-identity on every
#                         kernel, plus the JSON artifact plumbing)
#   7b. serve-bench smoke (the serving front-end's batching win: the
#                         binary itself asserts that sustained req/s at
#                         the fixed p99 target is non-decreasing in the
#                         batch cap and strictly better than no
#                         batching, so a batching regression fails here)
#   8. chaos soak        (50 seeded fault-injected inference rounds)
#   8b. recovery soak    (seeded session that permanently black-holes one
#                         worker mid-run: its expert must migrate to a
#                         survivor with certified spare memory and the
#                         whole recovery must replay byte-for-byte)
#   8c. serve soak       (seeded multi-tenant serving run on a ManualClock
#                         with chaos transports and a mid-run worker
#                         blackhole: quarantine must shrink the admission
#                         window, and two identical seeds must emit
#                         byte-identical trace + metrics + prediction
#                         transcripts)
#   9. traced smoke      (chaos_inference with TEAMNET_TRACE -> JsonlSink,
#                         piped through `cargo xtask trace-report`, which
#                         exits non-zero on a parse error or an empty span
#                         table; the workspace tests in stage 5 cover the
#                         default NullSink path)
#   9b. cross-node trace (trace_soak example: every node of a 3-node
#                         cluster records its own JSONL sink; the three
#                         files go through `cargo xtask trace-assemble`,
#                         which exits non-zero on orphan spans — the
#                         stage additionally asserts zero warnings on
#                         stderr and a non-empty critical-path table)
#
# Opt-in stage (not part of the default gate):
#   ./ci.sh tsan         runs the fault-tolerance, chaos-soak and
#                        recovery-soak suites under ThreadSanitizer. Requires a nightly
#                        toolchain with the rust-src component; exits 0
#                        with a notice when none is installed so the
#                        default gate never depends on nightly.
set -eu
cd "$(dirname "$0")"

if [ "${1:-}" = "tsan" ]; then
    # ThreadSanitizer needs -Zbuild-std so std itself is instrumented;
    # `xtask audit` covers the lock-order and lock-across-io classes
    # statically, this stage covers the dynamic interleavings the static
    # pass documents as out of scope (DESIGN.md §10).
    if ! rustup toolchain list 2>/dev/null | grep -q nightly ||
        ! rustup component list --toolchain nightly 2>/dev/null |
        grep -q 'rust-src.*(installed)'; then
        echo "ci.sh tsan: nightly toolchain with rust-src not installed; skipping (static audit still covers lock order)"
        exit 0
    fi
    host="$(rustc -vV | sed -n 's/^host: //p')"
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$host" \
        --test fault_tolerance --test chaos_soak --test recovery_soak
    exit 0
fi

cargo fmt --check
cargo build --release
cargo xtask check
cargo xtask audit
cargo xtask mc
cargo xtask cost --check
TEAMNET_THREADS=1 cargo test -q --workspace
TEAMNET_THREADS=4 cargo test -q --workspace
cargo run -q --release -p teamnet-bench --bin kernel_bench -- --smoke --out /tmp/BENCH_kernels_smoke.json
cargo run -q --release -p teamnet-bench --bin serve_bench -- --smoke --out /tmp/BENCH_serve_smoke.json
cargo test -q --release --test chaos_soak
cargo test -q --release --test recovery_soak
cargo test -q --release --test serve_soak
TEAMNET_TRACE=/tmp/ci_trace.jsonl cargo run -q --release --example chaos_inference >/dev/null
cargo xtask trace-report /tmp/ci_trace.jsonl
cargo run -q --release --example trace_soak >/dev/null
# trace-assemble hard-fails on orphan spans; unmatched send/recv events
# (possible only if a worker's file were truncated) surface as warnings
# on stderr, which this stage also treats as fatal.
assemble_out="$(cargo xtask trace-assemble \
    0=target/trace-soak/node0.jsonl \
    1=target/trace-soak/node1.jsonl \
    2=target/trace-soak/node2.jsonl 2>/tmp/ci_assemble_warnings.txt)"
if [ -s /tmp/ci_assemble_warnings.txt ]; then
    echo "trace-assemble produced warnings:" >&2
    cat /tmp/ci_assemble_warnings.txt >&2
    exit 1
fi
echo "$assemble_out" | grep -q '^  all' || {
    echo "trace-assemble critical-path table is empty:" >&2
    echo "$assemble_out" >&2
    exit 1
}
