//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, backed by
//! `std::thread::scope`. One behavioural difference: panics in scoped
//! threads propagate when the scope exits (std semantics) instead of being
//! returned through the outer `Result`, which is therefore always `Ok` —
//! every workspace call site immediately `unwrap()`s that `Result`, so the
//! observable behaviour is identical.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;

    /// A handle for spawning threads that may borrow from the caller's
    /// stack, mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _env: PhantomData<&'env ()>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let handle = inner.spawn(move || {
                let scope = Scope {
                    inner,
                    _env: PhantomData,
                };
                f(&scope)
            });
            ScopedJoinHandle { inner: handle }
        }
    }

    /// Runs `f` with a scope in which borrowed-stack threads can be
    /// spawned; all are joined before `scope` returns.
    ///
    /// Always returns `Ok`: std's scope re-raises child panics in the
    /// parent instead of capturing them.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope {
                inner: s,
                _env: PhantomData,
            };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .sum::<i32>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().expect("inner join") * 2
            });
            h.join().expect("outer join")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
