//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free API: locks
//! never return poison errors — a lock held by a panicking thread is
//! recovered rather than propagated, matching parking_lot's semantics
//! (and the straggler-tolerant posture of the TeamNet runtime).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` is always `Some` between construction and drop; it
/// exists only so [`Condvar::wait_until`] can move the std guard out and
/// back while blocking.
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering it if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutably borrows the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard invariant: Some between new and drop")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard invariant: Some between new and drop")
    }
}

/// Whether a condvar wait ended by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the guarded lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .inner
            .take()
            .expect("guard invariant: Some between new and drop");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `deadline` passes; reports which happened.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        let inner = guard
            .inner
            .take()
            .expect("guard invariant: Some between new and drop");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Blocks until notified or `timeout` elapses; reports which happened.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.wait_until(guard, Instant::now() + timeout)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self
            .inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockWriteGuard { inner }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_after_holder_panics() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the data stays reachable.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                let r = cvar.wait_until(&mut ready, Instant::now() + Duration::from_secs(5));
                assert!(!r.timed_out());
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        assert!(handle.join().expect("waiter"));
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
