//! Offline stand-in for the `serde` crate.
//!
//! Rather than serde's zero-copy visitor architecture, this stub uses a
//! direct value model: [`Serialize`] renders any value into a JSON-like
//! [`Value`] tree and [`Deserialize`] rebuilds it. The derive macros
//! (re-exported from the vendored `serde_derive`) generate impls against
//! this model with serde's externally-tagged enum layout, so the JSON
//! artifacts written by the bench suite keep their upstream shape.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization-side names kept for source compatibility with serde's
/// module layout (`serde::de::DeserializeOwned`).
pub mod de {
    /// In this stub every deserialization is owned, so `DeserializeOwned`
    /// is the [`crate::Deserialize`] trait itself.
    pub use crate::Deserialize as DeserializeOwned;
}

/// A JSON-like value tree. Maps preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Value)>),
}

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Value {
    /// The entries of an object, or `None` for any other variant.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array, or `None` for any other variant.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None` for any other variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|entries| map_get(entries, key))
    }
}

/// First value for `key` among ordered map entries.
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any printable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// A required struct field was absent.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}` for `{type_name}`"),
        }
    }

    /// The value had the wrong JSON type.
    pub fn wrong_type(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        };
        Error {
            msg: format!("expected {expected}, got {kind}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// Converts the value into its JSON-like representation.
    fn to_json_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value from its JSON-like representation.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] naming the first structural mismatch.
    fn from_json_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::wrong_type("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Num(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Num(Number::PosInt(n)) => *n,
                    Value::Num(Number::NegInt(_)) | Value::Num(Number::Float(_)) => {
                        return Err(Error::custom(concat!(
                            "expected non-negative integer for ",
                            stringify!($t)
                        )))
                    }
                    other => return Err(Error::wrong_type("number", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} overflows {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Num(Number::NegInt(v))
                } else {
                    Value::Num(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let wide: i128 = match value {
                    Value::Num(Number::PosInt(n)) => *n as i128,
                    Value::Num(Number::NegInt(n)) => *n as i128,
                    Value::Num(Number::Float(_)) => {
                        return Err(Error::custom(concat!(
                            "expected integer for ",
                            stringify!($t)
                        )))
                    }
                    other => return Err(Error::wrong_type("number", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!("{wide} overflows {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Num(Number::Float(v))
                } else {
                    // JSON has no NaN/Inf; mirror `serde_json::json!`'s
                    // null mapping so histories with NaN losses survive.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(Number::Float(f)) => Ok(*f as $t),
                    Value::Num(Number::PosInt(n)) => Ok(*n as $t),
                    Value::Num(Number::NegInt(n)) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::wrong_type("number", other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::wrong_type("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::wrong_type("array", other)),
        }
    }
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Keys render as JSON object member names (strings), mirroring
        // serde_json's integer-keyed map behavior. BTreeMap iteration is
        // ordered, so the rendered object is deterministic.
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    K::Err: fmt::Display,
    V: Deserialize,
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::wrong_type("object", value))?;
        entries
            .iter()
            .map(|(k, v)| {
                let key = k
                    .parse::<K>()
                    .map_err(|e| Error::custom(format!("bad map key `{k}`: {e}")))?;
                Ok((key, V::from_json_value(v)?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                let items = value.as_seq().ok_or_else(|| Error::wrong_type("array", value))?;
                if items.len() != ARITY {
                    return Err(Error::custom(format!(
                        "expected {ARITY}-tuple, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_json_value(&42u64.to_json_value()), Ok(42));
        assert_eq!(i32::from_json_value(&(-7i32).to_json_value()), Ok(-7));
        assert_eq!(f64::from_json_value(&1.5f64.to_json_value()), Ok(1.5));
        assert_eq!(bool::from_json_value(&true.to_json_value()), Ok(true));
        assert_eq!(
            String::from_json_value(&"hi".to_string().to_json_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![(1usize, vec![1.0f32, 2.0]), (2, vec![])];
        let back: Vec<(usize, Vec<f32>)> =
            Deserialize::from_json_value(&v.to_json_value()).expect("roundtrip");
        assert_eq!(back, v);
    }

    #[test]
    fn option_maps_to_null() {
        let none: Option<f64> = None;
        assert_eq!(none.to_json_value(), Value::Null);
        assert_eq!(Option::<f64>::from_json_value(&Value::Null), Ok(None));
        assert_eq!(
            Option::<f64>::from_json_value(&2.0f64.to_json_value()),
            Ok(Some(2.0))
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f32::NAN.to_json_value(), Value::Null);
        let back = f32::from_json_value(&Value::Null).expect("nan");
        assert!(back.is_nan());
    }

    #[test]
    fn btreemap_roundtrips_with_string_keys() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
        m.insert(2, vec![0.5]);
        m.insert(0, vec![1.0, 2.0]);
        let v = m.to_json_value();
        // Rendered in key order, keys as strings.
        assert_eq!(
            v.as_map()
                .map(|e| e.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>()),
            Some(vec!["0", "2"])
        );
        let back: BTreeMap<usize, Vec<f32>> = Deserialize::from_json_value(&v).expect("roundtrip");
        assert_eq!(back, m);
    }

    #[test]
    fn btreemap_rejects_bad_keys() {
        use std::collections::BTreeMap;
        let v = Value::Map(vec![("not-a-number".into(), Value::Num(Number::PosInt(1)))]);
        assert!(BTreeMap::<usize, u64>::from_json_value(&v).is_err());
    }

    #[test]
    fn wrong_types_are_reported() {
        assert!(u32::from_json_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_json_value(&1000u64.to_json_value()).is_err());
        assert!(String::from_json_value(&Value::Null).is_err());
    }
}
