//! Offline stand-in for the `proptest` crate.
//!
//! Keeps proptest's surface — [`strategy::Strategy`], range and collection
//! strategies, `prop_map`/`prop_flat_map`, the [`proptest!`] /
//! [`prop_assert!`] macros and a [`test_runner::TestRunner`] — but drops
//! shrinking: a failing case reports its assertion message and case number
//! rather than a minimized input. Generation is fully deterministic (fixed
//! seed), so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng as _;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generated value plus (in real proptest) its shrink history.
    ///
    /// This stub does not shrink, so a tree is just the value.
    pub trait ValueTree {
        /// The type of value this tree holds.
        type Value;

        /// Returns the current (here: only) value of the tree.
        fn current(&self) -> Self::Value;
    }

    /// A [`ValueTree`] holding exactly one value.
    pub struct LeafTree<T: Clone>(T);

    impl<T: Clone> ValueTree for LeafTree<T> {
        type Value = T;

        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value generated.
        type Value;

        /// Draws one value using the runner's RNG.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Draws one value wrapped in a [`ValueTree`].
        ///
        /// # Errors
        ///
        /// Never fails in this stub; the `Result` mirrors proptest's
        /// signature so `.new_tree(..).expect(..)` call sites compile.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<LeafTree<Self::Value>, String>
        where
            Self::Value: Clone,
        {
            Ok(LeafTree(self.generate(runner)))
        }

        /// Transforms every generated value with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it — for sizes that feed later structure.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Turns the strategy into a trait object with the same value type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, runner: &mut TestRunner) -> T::Value {
            (self.f)(self.inner.generate(runner)).generate(runner)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, runner: &mut TestRunner) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, runner: &mut TestRunner) -> S::Value {
            self.generate(runner)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            self.0.dyn_generate(runner)
        }
    }

    /// A strategy that always yields clones of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// A strategy yielding one of `T`'s values uniformly — placeholder for
    /// proptest's `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    /// Uniform strategy over all values of a [`rand::FromRandomBits`] type.
    pub fn any<T: rand::FromRandomBits>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: rand::FromRandomBits> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            runner.rng().gen::<T>()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng as _;
    use std::ops::Range;

    /// The number of elements a collection strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.min + 1 >= self.size.max_exclusive {
                self.size.min
            } else {
                runner
                    .rng()
                    .gen_range(self.size.min..self.size.max_exclusive)
            };
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// The engine that drives generated test cases.
pub mod test_runner {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;
    use std::fmt;

    /// Runner configuration; only `cases` is honoured by this stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case, carrying the assertion message.
    #[derive(Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Builds a failure from any printable message.
        pub fn fail(msg: impl fmt::Display) -> Self {
            TestCaseError {
                msg: msg.to_string(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl fmt::Debug for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Generates inputs and runs property bodies against them.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner using `config` and the fixed deterministic seed.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(0x5eed_cafe_0000_0001),
            }
        }

        /// A runner with default config and a fixed seed — generation is
        /// reproducible across runs and platforms.
        pub fn deterministic() -> Self {
            Self::new(ProptestConfig::default())
        }

        /// The runner's random source, used by strategies.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }

        /// Checks `test` against `config.cases` generated inputs.
        ///
        /// # Errors
        ///
        /// Returns the first case failure, tagged with its case number.
        /// (No shrinking: the failing input is whatever was generated.)
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestCaseError>
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(self);
                if let Err(err) = test(value) {
                    return Err(TestCaseError::fail(format!(
                        "property failed at case {case}/{}: {err}",
                        self.config.cases
                    )));
                }
            }
            Ok(())
        }
    }
}

/// Module-path shim so `prop::collection::vec` resolves after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (@body $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                let strategy = ($($strat,)+);
                let outcome = runner.run(&strategy, |($($pat,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                });
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!("{}", err);
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values compare equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs == *rhs,
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    lhs,
                    rhs
                );
            }
        }
    };
}

/// Asserts two values compare unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs != *rhs,
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    lhs
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_runner_repeats_itself() {
        use crate::strategy::ValueTree;
        let strat = 0.0f64..1.0;
        let draw = |_| {
            let mut runner = TestRunner::deterministic();
            strat.new_tree(&mut runner).expect("tree").current()
        };
        assert_eq!(draw(()), draw(()));
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..100 {
            let fixed = prop::collection::vec(0u64..10, 7).generate(&mut runner);
            assert_eq!(fixed.len(), 7);
            let ranged = prop::collection::vec(0u64..10, 2..5).generate(&mut runner);
            assert!((2..5).contains(&ranged.len()));
            assert!(ranged.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_threads_sizes_through() {
        let mut runner = TestRunner::deterministic();
        let strat = (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            prop::collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, c, v))
        });
        for _ in 0..50 {
            let (r, c, v) = strat.generate(&mut runner);
            assert_eq!(v.len(), r * c);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, config, and assertions together.
        #[test]
        fn macro_end_to_end((a, b) in (0u64..100, 0u64..100), scale in 1u64..5) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!((a + b) * scale, scale * b + scale * a);
            prop_assert_ne!(a + 1, a);
        }
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn failures_panic_with_case_number() {
        let mut runner = TestRunner::deterministic();
        runner
            .run(&(0u64..10,), |(x,)| {
                prop_assert!(x < 3, "x was {x}");
                Ok(())
            })
            .map_err(|e| panic!("{e}"))
            .ok();
    }
}
