//! Offline stand-in for the `serde_json` crate.
//!
//! Text encoding/decoding for the vendored `serde` value model: a
//! recursive-descent JSON parser, a compact and a pretty writer, and the
//! [`json!`] literal macro. Numbers keep `u64`/`i64` precision where
//! possible (floats use Rust's shortest-roundtrip formatting).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use serde::{Error, Number, Value};

use std::fmt::Write as _;

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// This implementation cannot fail, but keeps serde_json's fallible
/// signature so call sites stay source-compatible.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON text.
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// See [`to_string`].
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    T::from_json_value(&value)
}

/// Deserializes a value from JSON bytes (must be UTF-8).
///
/// # Errors
///
/// See [`from_str`].
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Builds a [`Value`] from JSON-looking literal syntax.
///
/// Supports the subset the workspace uses: one level of object or array
/// literal whose values are arbitrary serializable Rust expressions.
/// Nest by passing another `json!(..)` call in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( ::serde::Serialize::to_json_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (::std::string::String::from($key), ::serde::Serialize::to_json_value(&$val)) ),*
        ])
    };
    ($other:expr) => {
        ::serde::Serialize::to_json_value(&$other)
    };
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Number::PosInt(n)) => {
            let _ = write!(out, "{n}");
        }
        Value::Num(Number::NegInt(n)) => {
            let _ = write!(out, "{n}");
        }
        Value::Num(Number::Float(f)) => {
            if f.is_finite() {
                // Rust's Display for floats is shortest-roundtrip; add a
                // `.0` to keep integral floats recognizably floating.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.parse_value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> JsonParser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(char::from),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::custom("empty input"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("non-UTF-8 number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Num(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Num(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::Float(f)))
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_through_text() {
        for text in [
            "null",
            "true",
            "false",
            "42",
            "-17",
            "1.5",
            "\"hi\\nthere\"",
            "[]",
            "{}",
        ] {
            let v: Value = from_str(text).expect(text);
            assert_eq!(to_string(&v).expect("write"), text);
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2.5,{"b":null}],"c":"x"}"#;
        let v: Value = from_str(text).expect("parse");
        assert_eq!(to_string(&v).expect("write"), text);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"a": [1, 2], "b": true});
        let pretty = to_string_pretty(&v).expect("pretty");
        assert!(
            pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"),
            "{pretty}"
        );
        let reparsed: Value = from_str(&pretty).expect("reparse");
        assert_eq!(reparsed, v);
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "k": 3usize,
            "nested": json!({"xs": [1, 2, 3]}),
            "expr": 2u64 + 3,
        });
        assert_eq!(
            to_string(&v).expect("write"),
            r#"{"k":3,"nested":{"xs":[1,2,3]},"expr":5}"#
        );
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        let text = to_string(&n).expect("write");
        assert_eq!(text, "18446744073709551615");
        let back: u64 = from_str(&text).expect("parse");
        assert_eq!(back, n);
    }

    #[test]
    fn errors_carry_positions() {
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
