//! Offline stand-in for `serde_derive`.
//!
//! The sandbox has no crates-io access, so these derives are written
//! against `proc_macro` alone — no `syn`, no `quote`. The item is parsed
//! with a small token-tree walker into a shape description (named struct /
//! tuple struct / enum), and the impls are generated as source text against
//! the vendored `serde` value model, using serde's externally-tagged enum
//! encoding so emitted JSON matches upstream layouts.
//!
//! Supported surface (everything the TeamNet workspace uses):
//!
//! * structs with named fields, including `#[serde(default)]` per field;
//! * tuple structs (newtypes serialize transparently);
//! * unit structs;
//! * enums with unit, newtype, tuple and struct variants;
//! * no generic parameters (a clear compile error is emitted instead).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier and whether `#[serde(default)]` is set.
struct Field {
    name: String,
    default: bool,
}

/// The payload carried by an enum variant.
enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Parsed shape of the derive input item.
enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal compile_error is valid Rust")
}

/// True if an attribute group is `serde(...)` containing the word
/// `default`.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let text = group.stream().to_string();
    text.starts_with("serde") && text.contains("default")
}

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(stream: TokenStream) -> Self {
        Parser {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attribute groups, reporting whether any was
    /// `#[serde(default)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut saw_default = false;
        loop {
            match (self.peek(), self.tokens.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    if attr_is_serde_default(g) {
                        saw_default = true;
                    }
                    self.pos += 2;
                }
                _ => return saw_default,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(super)`, ….
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skips a type (or any token run) until a top-level `,`, tracking
    /// `<...>` nesting so generic arguments do not end the field early.
    fn skip_until_top_level_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(token) = self.peek() {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Parses `name: Type, ...` named-field lists (attributes allowed).
    fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
        let mut p = Parser::new(stream);
        let mut fields = Vec::new();
        while p.peek().is_some() {
            let default = p.skip_attrs();
            p.skip_visibility();
            let name = p.expect_ident()?;
            match p.bump() {
                Some(TokenTree::Punct(punct)) if punct.as_char() == ':' => {}
                other => {
                    return Err(format!(
                        "expected `:` after field `{name}`, found {other:?}"
                    ))
                }
            }
            p.skip_until_top_level_comma();
            p.bump(); // consume the comma, if present
            fields.push(Field { name, default });
        }
        Ok(fields)
    }

    /// Counts the fields of a tuple struct/variant body `(T, U, ...)`.
    fn count_tuple_fields(stream: TokenStream) -> usize {
        let mut p = Parser::new(stream);
        let mut count = 0;
        while p.peek().is_some() {
            p.skip_attrs();
            p.skip_visibility();
            p.skip_until_top_level_comma();
            p.bump();
            count += 1;
        }
        count
    }

    fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
        let mut p = Parser::new(stream);
        let mut variants = Vec::new();
        while p.peek().is_some() {
            p.skip_attrs();
            let name = p.expect_ident()?;
            let kind = match p.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = Parser::parse_named_fields(g.stream())?;
                    p.pos += 1;
                    VariantKind::Named(fields)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = Parser::count_tuple_fields(g.stream());
                    p.pos += 1;
                    VariantKind::Tuple(arity)
                }
                _ => VariantKind::Unit,
            };
            // Skip a possible `= discriminant` and the separating comma.
            p.skip_until_top_level_comma();
            p.bump();
            variants.push(Variant { name, kind });
        }
        Ok(variants)
    }

    fn parse_input(mut self) -> Result<Input, String> {
        self.skip_attrs();
        self.skip_visibility();
        let keyword = self.expect_ident()?;
        if keyword != "struct" && keyword != "enum" {
            return Err(format!("derive supports struct/enum, found `{keyword}`"));
        }
        let name = self.expect_ident()?;
        if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Err(format!(
                "vendored serde derive does not support generic type `{name}`"
            ));
        }
        if keyword == "enum" {
            match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Enum {
                    name,
                    variants: Parser::parse_variants(g.stream())?,
                }),
                other => Err(format!("expected enum body, found {other:?}")),
            }
        } else {
            match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Ok(Input::NamedStruct {
                        name,
                        fields: Parser::parse_named_fields(g.stream())?,
                    })
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Ok(Input::TupleStruct {
                        name,
                        arity: Parser::count_tuple_fields(g.stream()),
                    })
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input::UnitStruct { name }),
                other => Err(format!("expected struct body, found {other:?}")),
            }
        }
    }
}

fn named_fields_to_value(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from(
        "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        out.push_str(&format!(
            "fields.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_json_value({p}{n})));\n",
            n = f.name,
            p = access_prefix,
        ));
    }
    out.push_str("::serde::Value::Map(fields)");
    out
}

fn named_fields_from_entries(type_name: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::Error::missing_field(\
                 \"{type_name}\", \"{n}\"))",
                n = f.name
            )
        };
        out.push_str(&format!(
            "{n}: match ::serde::map_get(entries, \"{n}\") {{\n\
             ::std::option::Option::Some(v) => ::serde::Deserialize::from_json_value(v)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            n = f.name,
        ));
    }
    out
}

fn generate_serialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::NamedStruct { name, fields } => (name, named_fields_to_value(fields, "&self.")),
        Input::TupleStruct { name, arity: 1 } => (
            name,
            "::serde::Serialize::to_json_value(&self.0)".to_string(),
        ),
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", ")),
            )
        }
        Input::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    VariantKind::Named(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n{inner}\nlet inner = \
                             ::serde::Value::Map(fields);\n\
                             ::serde::Value::Map(::std::vec![(::std::string::String::from(\
                             \"{v}\"), inner)])\n}}\n",
                            v = v.name,
                            binds = binders.join(", "),
                            inner = {
                                let mut s = String::from(
                                    "let mut fields: ::std::vec::Vec<(::std::string::String, \
                                     ::serde::Value)> = ::std::vec::Vec::new();\n",
                                );
                                for f in fields {
                                    s.push_str(&format!(
                                        "fields.push((::std::string::String::from(\"{n}\"), \
                                         ::serde::Serialize::to_json_value({n})));\n",
                                        n = f.name
                                    ));
                                }
                                s
                            },
                        ));
                    }
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(x0) => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_json_value(x0))]),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Seq(::std::vec![{items}]))]),\n",
                            v = v.name,
                            binds = binders.join(", "),
                            items = items.join(", "),
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::NamedStruct { name, fields } => (
            name,
            format!(
                "let entries = value.as_map().ok_or_else(|| \
                 ::serde::Error::wrong_type(\"object\", value))?;\n\
                 ::std::result::Result::Ok({name} {{\n{fields}\n}})",
                fields = named_fields_from_entries(name, fields),
            ),
        ),
        Input::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::from_json_value(value)?))"
            ),
        ),
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let items = value.as_seq().ok_or_else(|| \
                     ::serde::Error::wrong_type(\"array\", value))?;\n\
                     if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                     \"wrong tuple arity for {name}\"));\n}}\n\
                     ::std::result::Result::Ok({name}({items}))",
                    items = items.join(", "),
                ),
            )
        }
        Input::UnitStruct { name } => (
            name,
            format!(
                "match value {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::Error::wrong_type(\
                 \"null\", other)),\n}}"
            ),
        ),
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Named(fields) => tagged_arms.push_str(&format!(
                        "\"{v}\" => {{\n\
                         let entries = inner.as_map().ok_or_else(|| \
                         ::serde::Error::wrong_type(\"object\", inner))?;\n\
                         ::std::result::Result::Ok({name}::{v} {{\n{fields}\n}})\n}}\n",
                        v = v.name,
                        fields = named_fields_from_entries(name, fields),
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_json_value(inner)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let items = inner.as_seq().ok_or_else(|| \
                             ::serde::Error::wrong_type(\"array\", inner))?;\n\
                             if items.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong arity for variant {v}\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{v}({items}))\n}}\n",
                            v = v.name,
                            items = items.join(", "),
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown unit variant `{{other}}` for {name}\"))),\n}},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                     let (tag, inner) = &entries[0];\n\
                     let _ = inner;\n\
                     match tag.as_str() {{\n{tagged_arms}\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n\
                     other => ::std::result::Result::Err(::serde::Error::wrong_type(\
                     \"externally tagged enum\", other)),\n}}"
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match Parser::new(input).parse_input() {
        Ok(parsed) => generate_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive generated bad code: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match Parser::new(input).parse_input() {
        Ok(parsed) => generate_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive generated bad code: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}
