//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` and `BytesMut` are plain `Vec<u8>` wrappers (no refcounted
//! zero-copy splitting — the workspace never splits buffers), plus the
//! little-endian [`Buf`]/[`BufMut`] accessors the frame codecs use.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Bytes { data: b.data }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Number of bytes remaining.
    fn remaining(&self) -> usize;

    /// Advances the read position by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads a little-endian `u32`, advancing 4 bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let bytes = self.chunk();
        assert!(bytes.len() >= 4, "buffer underflow reading u32");
        let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        self.advance(4);
        v
    }

    /// Reads a single byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let bytes = self.chunk();
        assert!(!bytes.is_empty(), "buffer underflow reading u8");
        let v = bytes[0];
        self.advance(1);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of slice");
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor, b"xy");
    }

    #[test]
    fn bytes_from_vec_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u32_le();
    }
}
