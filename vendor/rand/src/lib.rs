//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the small API subset it actually uses: the [`Rng`]/[`RngCore`] traits,
//! a deterministic [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! uniform range sampling and Fisher–Yates shuffling.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, but it
//! is deterministic for a given seed, which is the property the workspace
//! relies on (same seed ⇒ identical weights on every node).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits.
pub trait FromRandomBits: Sized {
    /// Draws one uniformly distributed value.
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandomBits for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRandomBits for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandomBits for bool {
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_from_random_bits_int {
    ($($t:ty),*) => {$(
        impl FromRandomBits for $t {
            fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_random_bits_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t>::from_random_bits(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * <$t>::from_random_bits(rng)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: FromRandomBits>(&mut self) -> T {
        T::from_random_bits(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires a probability");
        f64::from_random_bits(self) < p
    }

    /// Fills `dest` with random bytes (mirror of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding a 64-bit seed (SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used to expand small seeds into full PRNG state.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    ///
    /// Not the same stream as upstream `rand`'s ChaCha-based `StdRng`, but
    /// deterministic, fast, and statistically solid for simulation use.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start at the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_one(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (0..self.len()).sample_one(rng);
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f32..5.0);
            assert!((-3.0..5.0).contains(&x));
            let n = rng.gen_range(2usize..9);
            assert!((2..9).contains(&n));
            let m = rng.gen_range(0..=3u64);
            assert!(m <= 3);
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let sum: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn(rng: &mut dyn super::RngCore) -> f32 {
            super::FromRandomBits::from_random_bits(rng)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let x = takes_dyn(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
