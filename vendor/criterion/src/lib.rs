//! Offline stand-in for the `criterion` crate.
//!
//! Provides the entry points the bench suite uses ([`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], benchmark groups with
//! `bench_function`/`sample_size`/`finish`) over a simple wall-clock
//! harness. Statistics are min/mean/max over the sample set — no outlier
//! analysis, HTML reports, or comparison against saved baselines.
//!
//! Mirrors criterion's `cargo test` behaviour: when the binary is run
//! without `--bench` (as `cargo test` does for `harness = false` bench
//! targets), every routine executes exactly once as a smoke test.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    bench_mode: bool,
    benches_run: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the target with `--bench`; `cargo test`
        // does not. Match criterion: only measure under `cargo bench`.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            bench_mode,
            benches_run: 0,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Prints the closing summary line (called by [`criterion_main!`]).
    pub fn final_summary(&self) {
        if self.bench_mode {
            println!("\ncompleted {} benchmarks", self.benches_run);
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and (in bench mode) measures one benchmark routine.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            bench_mode: self.criterion.bench_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.criterion.benches_run += 1;
        if self.criterion.bench_mode {
            report(&self.name, &id, &bencher.samples);
        }
        self
    }

    /// Ends the group. (Statistics are reported per benchmark.)
    pub fn finish(self) {}
}

/// Times a single benchmark routine.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each call.
    ///
    /// In test mode (no `--bench` argument) the routine runs exactly once,
    /// untimed, so `cargo test` stays fast.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.bench_mode {
            std::hint::black_box(routine());
            return;
        }
        // One warm-up call so lazy initialization stays out of sample 0.
        std::hint::black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples (Bencher::iter never called)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{group}/{id}: time [{} {} {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group callable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_routine_once() {
        let mut c = Criterion {
            bench_mode: false,
            benches_run: 0,
        };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("once", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
        assert_eq!(c.benches_run, 1);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut c = Criterion {
            bench_mode: true,
            benches_run: 0,
        };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("counted", |b| b.iter(|| calls += 1));
        group.finish();
        // 5 samples + 1 warm-up.
        assert_eq!(calls, 6);
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
