//! End-to-end contracts of cross-node trace assembly (DESIGN.md §17):
//!
//! 1. **Order invariance** — `assemble` keys everything on `seq` numbers
//!    and span ids, never on file order, so arbitrarily shuffling the
//!    lines of every node's JSONL file yields a byte-identical DAG and
//!    critical-path report. (Real collectors interleave and reorder.)
//! 2. **Seed determinism** — two identical seeded runs over pinned
//!    [`ManualClock`]s emit byte-identical per-node traces, which
//!    assemble into byte-identical reports.
//! 3. **Zero orphans** — on a clean transport every worker span finds
//!    its causal parent in the master's rounds.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use teamnet_core::build_expert;
use teamnet_core::runtime::{
    serve_worker_with_config, shutdown_workers, InferenceSession, MasterConfig, WorkerConfig,
};
use teamnet_net::ManualClock;
use teamnet_net::{ChannelTransport, Clock};
use teamnet_nn::{ModelSpec, Sequential};
use teamnet_obs::assemble::assemble;
use teamnet_obs::{Obs, TraceSink, VecSink};
use teamnet_tensor::Tensor;

const TRACE_SEED: u64 = 0x5EED_CAFE;
const ROUNDS: usize = 4;

fn expert(seed: u64) -> Sequential {
    build_expert(&ModelSpec::mlp(2, 16), seed)
}

/// Runs a clean (chaos-free) 3-node soak where *every* node records its
/// own trace over a pinned ManualClock; returns the three JSONL texts.
fn traced_cluster() -> Vec<(u64, String)> {
    let mut mesh = ChannelTransport::mesh(3);
    let worker2 = mesh.pop().unwrap();
    let worker1 = mesh.pop().unwrap();
    let master = mesh.pop().unwrap();

    let node_obs = || {
        let sink = Arc::new(VecSink::new());
        let obs = Obs::new(
            Arc::new(ManualClock::new()) as Arc<dyn Clock>,
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        );
        (sink, obs)
    };
    let (master_sink, master_obs) = node_obs();
    let (sink1, obs1) = node_obs();
    let (sink2, obs2) = node_obs();

    let config = MasterConfig {
        worker_timeout: Duration::from_millis(800),
        obs: master_obs,
        trace_seed: TRACE_SEED,
        ..MasterConfig::default()
    };

    crossbeam::thread::scope(|scope| {
        for (i, (node, obs)) in [(&worker1, obs1), (&worker2, obs2)].into_iter().enumerate() {
            scope.spawn(move |_| {
                let mut worker_expert = expert(i as u64 + 1);
                let worker_config = WorkerConfig {
                    obs,
                    ..WorkerConfig::default()
                };
                serve_worker_with_config(node, 0, &mut worker_expert, worker_config).unwrap();
            });
        }

        let mut session = InferenceSession::new(&master, config);
        let mut master_expert = expert(0);
        for round in 0..ROUNDS {
            let images = Tensor::full([2, 1, 28, 28], (round % 3) as f32 * 0.3);
            session.infer(&master, &mut master_expert, &images).unwrap();
        }
        shutdown_workers(&master).unwrap();
    })
    .unwrap();

    vec![
        (0, master_sink.to_jsonl()),
        (1, sink1.to_jsonl()),
        (2, sink2.to_jsonl()),
    ]
}

/// Deterministic Fisher–Yates over a SplitMix64 stream.
fn shuffle_lines(text: &str, mut seed: u64) -> String {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut lines: Vec<&str> = text.lines().collect();
    for i in (1..lines.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        lines.swap(i, j);
    }
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[test]
fn clean_cluster_assembles_with_zero_orphans_and_exact_attribution() {
    let inputs = traced_cluster();
    let assembled = assemble(&inputs).expect("no orphan spans on a clean transport");
    assert!(
        assembled.warnings.is_empty(),
        "unexpected warnings: {:?}",
        assembled.warnings
    );
    assert_eq!(assembled.skews.len(), 3, "all three nodes present");
    assert!(
        !assembled.edges.is_empty(),
        "wire edges must pair across nodes"
    );

    let rounds = assembled.critical_path();
    assert_eq!(rounds.len(), ROUNDS);
    for r in &rounds {
        let sum = r.attr.compute_ns + r.attr.wire_ns + r.attr.wait_ns + r.attr.retry_ns;
        assert_eq!(
            sum, r.wall_ns,
            "attribution must sum exactly to round wall time"
        );
    }
    // Every round carries its seeded trace id, and the report shows a
    // non-empty table.
    let report = assembled.critical_path_report();
    assert!(report.lines().count() > ROUNDS, "{report}");
}

#[test]
fn identical_seeds_assemble_byte_identically() {
    let a = traced_cluster();
    let b = traced_cluster();
    for ((node_a, text_a), (node_b, text_b)) in a.iter().zip(b.iter()) {
        assert_eq!(node_a, node_b);
        assert_eq!(
            text_a, text_b,
            "node {node_a} trace diverged between identical seeded runs"
        );
    }
    let asm_a = assemble(&a).unwrap();
    let asm_b = assemble(&b).unwrap();
    assert_eq!(asm_a.render_dag(), asm_b.render_dag());
    assert_eq!(asm_a.critical_path_report(), asm_b.critical_path_report());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shuffling every node's JSONL lines arbitrarily leaves the
    /// assembled DAG and the critical-path report byte-identical.
    #[test]
    fn assembly_is_invariant_under_line_order(seed in 0u64..1_000_000) {
        // One soak per process would be ideal, but proptest cases must be
        // independent; a OnceLock caches the baseline cluster run.
        use std::sync::OnceLock;
        static BASELINE: OnceLock<(Vec<(u64, String)>, String, String)> = OnceLock::new();
        let (inputs, dag, report) = BASELINE.get_or_init(|| {
            let inputs = traced_cluster();
            let asm = assemble(&inputs).unwrap();
            let dag = asm.render_dag();
            let report = asm.critical_path_report();
            (inputs, dag, report)
        });

        let shuffled: Vec<(u64, String)> = inputs
            .iter()
            .map(|(node, text)| (*node, shuffle_lines(text, seed ^ node)))
            .collect();
        let asm = assemble(&shuffled).unwrap();
        prop_assert_eq!(&asm.render_dag(), dag);
        prop_assert_eq!(&asm.critical_path_report(), report);
    }
}
