//! The serving bijection property: coalesce → broadcast → demux is a
//! row-order-preserving bijection.
//!
//! Expert forwards are row-independent, so a request's rows inside a
//! coalesced batch must receive **byte-for-byte** the predictions a solo
//! [`InferenceSession::infer`] of that request's own tensor would have
//! produced — same winning label, same winning expert, same entropy bits.
//! That is the whole correctness contract of the serving front-end: the
//! batcher may reorder *time*, never *rows*, and batching must be
//! invisible to every tenant.
//!
//! The property is checked for arbitrary request splits (1..=16 rows per
//! request, up to 64 rows per flush) and with a worker missing from the
//! team — the quarantine-during-batch case — where the degraded argmin
//! must still agree row-for-row with a solo session degraded the same
//! way.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use teamnet_core::runtime::{serve_worker, shutdown_workers, InferenceSession, MasterConfig};
use teamnet_core::{build_expert, FailureDetectorConfig, TeamPrediction};
use teamnet_net::{ChannelTransport, ManualClock};
use teamnet_nn::{ModelSpec, Sequential};
use teamnet_serve::{BatcherConfig, ServeConfig, ServeEngine};
use teamnet_tensor::Tensor;

fn expert(seed: u64) -> Sequential {
    build_expert(&ModelSpec::mlp(2, 16), seed)
}

/// The bit-exact identity of one predicted row.
fn row_key(p: &TeamPrediction) -> (usize, usize, u32) {
    (p.label, p.expert, p.entropy.to_bits())
}

/// One tenant request: `rows` rows of a constant fill (constant per
/// request, distinct across requests, so a row mix-up changes the key).
fn request_tensor(rows: usize, fill: f32) -> Tensor {
    Tensor::full(vec![rows, 1, 28, 28], fill)
}

fn master_config(clock: Arc<ManualClock>) -> MasterConfig {
    MasterConfig {
        // Small timeout: with a dead worker every pre-quarantine round
        // blocks for this long in *real* time (the ManualClock never
        // moves while the master awaits the silent peer).
        worker_timeout: Duration::from_millis(150),
        require_all_workers: false,
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 2,
            probe_interval: 1_000,
        },
        clock,
        ..MasterConfig::default()
    }
}

/// Serves every request through one engine and a single coalesced flush;
/// returns the demuxed row keys in request-submission order.
fn batched_rows(splits: &[usize], fills: &[f32], dead_worker: bool) -> Vec<(usize, usize, u32)> {
    let nodes = ChannelTransport::mesh(3);
    let clock = Arc::new(ManualClock::new());
    let mut rows = Vec::new();
    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            let mut e = expert(1);
            serve_worker(&nodes[1], 0, &mut e).unwrap();
        });
        if !dead_worker {
            scope.spawn(|_| {
                let mut e = expert(2);
                serve_worker(&nodes[2], 0, &mut e).unwrap();
            });
        }
        let config = ServeConfig {
            batch: BatcherConfig {
                max_batch_rows: 64,
                max_delay_ns: 8_000_000,
                queue_cap_rows: 128,
            },
            input_dims: vec![1, 28, 28],
            master: master_config(Arc::clone(&clock)),
        };
        let mut engine = ServeEngine::new(&nodes[0], expert(0), config);
        let handle = engine.handle();
        let tickets: Vec<_> = splits
            .iter()
            .zip(fills)
            .map(|(&r, &fill)| handle.submit(&request_tensor(r, fill)).unwrap())
            .collect();
        // One deadline-triggered flush coalesces every pending request.
        clock.advance(Duration::from_millis(8));
        assert_eq!(engine.pump_now(&nodes[0]), splits.len());
        for (i, t) in tickets.iter().enumerate() {
            let preds = t
                .try_take()
                .unwrap_or_else(|| panic!("request {i} not completed by the flush"))
                .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
            assert_eq!(preds.len(), splits[i], "request {i} row count");
            rows.extend(preds.iter().map(row_key));
        }
        shutdown_workers(&nodes[0]).unwrap();
    })
    .unwrap();
    rows
}

/// Serves every request as its own solo round on one persistent session
/// (so detector state evolves exactly as the engine's session would);
/// returns row keys in the same request order.
fn solo_rows(splits: &[usize], fills: &[f32], dead_worker: bool) -> Vec<(usize, usize, u32)> {
    let nodes = ChannelTransport::mesh(3);
    let clock = Arc::new(ManualClock::new());
    let mut rows = Vec::new();
    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            let mut e = expert(1);
            serve_worker(&nodes[1], 0, &mut e).unwrap();
        });
        if !dead_worker {
            scope.spawn(|_| {
                let mut e = expert(2);
                serve_worker(&nodes[2], 0, &mut e).unwrap();
            });
        }
        let mut session = InferenceSession::new(&nodes[0], master_config(Arc::clone(&clock)));
        let mut master_expert = expert(0);
        for (i, (&r, &fill)) in splits.iter().zip(fills).enumerate() {
            let report = session
                .infer(&nodes[0], &mut master_expert, &request_tensor(r, fill))
                .unwrap_or_else(|e| panic!("solo round {i} failed: {e}"));
            assert_eq!(report.predictions.len(), r, "solo round {i} row count");
            rows.extend(report.predictions.iter().map(row_key));
        }
        shutdown_workers(&nodes[0]).unwrap();
    })
    .unwrap();
    rows
}

fn fills_for(splits: &[usize], seed: u64) -> Vec<f32> {
    splits
        .iter()
        .enumerate()
        .map(|(i, _)| 0.05 + ((seed as usize + i * 13) % 17) as f32 * 0.05)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary splits of up to 64 rows across up to 4 tenants, with
    /// the team either whole or missing a worker: coalesced serving is
    /// byte-identical, row for row, to solo inference per request.
    #[test]
    fn coalesced_serving_is_a_row_preserving_bijection(
        splits in prop::collection::vec(1usize..17, 1..5),
        fill_seed in 0u64..1_000,
        dead in 0u8..2,
    ) {
        let dead_worker = dead == 1;
        let fills = fills_for(&splits, fill_seed);
        let batched = batched_rows(&splits, &fills, dead_worker);
        let solo = solo_rows(&splits, &fills, dead_worker);
        prop_assert_eq!(&batched, &solo);
        prop_assert_eq!(batched.len(), splits.iter().sum::<usize>());
    }
}

/// The extreme of the property space, pinned deterministically: a full
/// 64-row flush (4 tenants × 16 rows) equals its four solo rounds.
#[test]
fn full_batch_of_64_rows_matches_solo() {
    let splits = [16usize, 16, 16, 16];
    let fills = fills_for(&splits, 7);
    assert_eq!(
        batched_rows(&splits, &fills, false),
        solo_rows(&splits, &fills, false)
    );
}
