//! Seeded chaos soak: a 3-node cluster where *every* endpoint's outbound
//! traffic passes through a fault-injecting [`ChaosTransport`] (drops,
//! reorder-delays, bit corruption, duplication), driven for 50 inference
//! rounds. The run must neither hang nor panic, every round must produce a
//! full prediction vector, and every prediction must come from a peer that
//! actually responded this round — never from stale, corrupt, or
//! quarantined traffic.
//!
//! All faults are drawn from per-node seeded PRNGs, so a failure replays
//! identically.

use std::time::Duration;
use teamnet_core::runtime::{serve_worker, shutdown_workers, InferenceSession, MasterConfig};
use teamnet_core::{build_expert, FailureDetectorConfig, PeerHealth};
use teamnet_net::{ChannelTransport, ChaosConfig, ChaosTransport, Transport};
use teamnet_nn::{ModelSpec, Sequential};
use teamnet_tensor::Tensor;

const ROUNDS: usize = 50;

/// Fixed session seed mixed into every per-node chaos seed. One knob
/// replays the whole soak: change it to explore a different fault
/// schedule, keep it to reproduce a failure byte-for-byte. (Deliberately
/// a constant, not entropy — `cargo xtask audit` rejects OS randomness on
/// simulation paths for exactly this reason.)
const SESSION_SEED: u64 = 0x7EA3_0001;

fn expert(seed: u64) -> Sequential {
    build_expert(&ModelSpec::mlp(2, 16), seed)
}

fn chaos(node_seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed: SESSION_SEED ^ node_seed,
        drop_prob: 0.12,
        delay_prob: 0.10,
        corrupt_prob: 0.06,
        duplicate_prob: 0.10,
        max_delay_msgs: 3,
    }
}

#[test]
fn fifty_rounds_under_chaos_complete_with_live_predictions() {
    let mut mesh = ChannelTransport::mesh(3);
    let worker2 = ChaosTransport::with_config(mesh.pop().unwrap(), chaos(0xC2));
    let worker1 = ChaosTransport::with_config(mesh.pop().unwrap(), chaos(0xC1));
    let master = ChaosTransport::with_config(mesh.pop().unwrap(), chaos(0xC0));

    let config = MasterConfig {
        worker_timeout: Duration::from_millis(150),
        require_all_workers: false,
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 3,
            probe_interval: 2,
        },
        ..MasterConfig::default()
    };

    crossbeam::thread::scope(|scope| {
        for (i, node) in [&worker1, &worker2].into_iter().enumerate() {
            scope.spawn(move |_| {
                let mut worker_expert = expert(i as u64 + 1);
                serve_worker(node, 0, &mut worker_expert).unwrap();
            });
        }

        let mut session = InferenceSession::new(&master, config);
        let mut master_expert = expert(0);
        let mut discarded = (0u64, 0u64, 0u64);
        for round in 0..ROUNDS {
            let images = Tensor::full([2, 1, 28, 28], (round % 7) as f32 * 0.1);
            let report = session
                .infer(&master, &mut master_expert, &images)
                .unwrap_or_else(|e| panic!("round {round} failed: {e}"));

            // Full prediction vector every round, every winner a peer that
            // responded this round (the master itself always counts).
            assert_eq!(report.predictions.len(), 2, "round {round}");
            let responsive = report.responsive_peers();
            for p in &report.predictions {
                assert!(
                    responsive.contains(&p.expert),
                    "round {round}: prediction from unresponsive peer {}: {report:?}",
                    p.expert
                );
                assert!(
                    report.peers[&p.expert].health != PeerHealth::Quarantined,
                    "round {round}: prediction from quarantined peer {}",
                    p.expert
                );
            }
            discarded.0 += report.stale_discarded;
            discarded.1 += report.corrupt_discarded;
            discarded.2 += report.malformed_discarded;
        }

        // The chaos layer must actually have injected faults (seeded, so
        // this is deterministic), and the protocol must have caught at
        // least some damaged traffic rather than silently consuming it.
        let stats = master.stats();
        assert!(stats.messages_dropped > 0, "{stats:?}");
        assert!(stats.messages_corrupted > 0, "{stats:?}");
        let (stale, corrupt, malformed) = discarded;
        assert!(
            stale + corrupt + malformed > 0,
            "chaos injected faults but none were discarded \
             (stale={stale} corrupt={corrupt} malformed={malformed})"
        );

        // Shutdown travels the fault-free inner path so it cannot be
        // chaos-dropped.
        shutdown_workers(master.inner()).unwrap();
    })
    .unwrap();
}

/// Runs a short 3-node soak with the given fault schedule and returns the
/// concatenated [`InferenceReport::summary`] of every round.
///
/// The summaries deliberately exclude absolute round stamps (a
/// process-global counter), so two sessions in the same process can still
/// compare byte-for-byte. Fault probabilities are kept low relative to
/// the generous deadline: a live in-process worker answers in
/// microseconds, so the only missed replies are the seeded,
/// chaos-suppressed ones — timing never decides an outcome.
fn mini_soak_summaries(rounds: usize) -> String {
    let mut mesh = ChannelTransport::mesh(3);
    let gentle = |node_seed: u64| ChaosConfig {
        seed: SESSION_SEED ^ node_seed,
        drop_prob: 0.06,
        delay_prob: 0.08,
        corrupt_prob: 0.04,
        duplicate_prob: 0.10,
        max_delay_msgs: 3,
    };
    let worker2 = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xD2));
    let worker1 = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xD1));
    let master = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xD0));

    let config = MasterConfig {
        worker_timeout: Duration::from_millis(800),
        require_all_workers: false,
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 3,
            probe_interval: 2,
        },
        ..MasterConfig::default()
    };

    let mut summaries = String::new();
    crossbeam::thread::scope(|scope| {
        for (i, node) in [&worker1, &worker2].into_iter().enumerate() {
            scope.spawn(move |_| {
                let mut worker_expert = expert(i as u64 + 1);
                serve_worker(node, 0, &mut worker_expert).unwrap();
            });
        }

        let mut session = InferenceSession::new(&master, config);
        let mut master_expert = expert(0);
        for round in 0..rounds {
            let images = Tensor::full([2, 1, 28, 28], (round % 7) as f32 * 0.1);
            let report = session
                .infer(&master, &mut master_expert, &images)
                .unwrap_or_else(|e| panic!("round {round} failed: {e}"));
            summaries.push_str(&report.summary());
            summaries.push('\n');
        }
        shutdown_workers(master.inner()).unwrap();
    })
    .unwrap();
    summaries
}

/// The replayability claim, enforced: two soaks from the same session
/// seed must report byte-identical outcomes — same winners, same entropy
/// bits, same health transitions, same discard counts — even though the
/// runs are separated in wall-clock time and use fresh threads.
#[test]
fn identical_seeds_produce_byte_identical_report_summaries() {
    let first = mini_soak_summaries(12);
    let second = mini_soak_summaries(12);
    assert!(!first.is_empty());
    assert_eq!(first, second, "seeded soak diverged between runs");
}
