//! Seeded chaos soak: a 3-node cluster where *every* endpoint's outbound
//! traffic passes through a fault-injecting [`ChaosTransport`] (drops,
//! reorder-delays, bit corruption, duplication), driven for 50 inference
//! rounds. The run must neither hang nor panic, every round must produce a
//! full prediction vector, and every prediction must come from a peer that
//! actually responded this round — never from stale, corrupt, or
//! quarantined traffic.
//!
//! All faults are drawn from per-node seeded PRNGs, so a failure replays
//! identically.

use std::time::Duration;
use teamnet_core::runtime::{serve_worker, shutdown_workers, InferenceSession, MasterConfig};
use teamnet_core::{build_expert, FailureDetectorConfig, PeerHealth};
use teamnet_net::{ChannelTransport, ChaosConfig, ChaosTransport, Transport};
use teamnet_nn::{ModelSpec, Sequential};
use teamnet_tensor::Tensor;

const ROUNDS: usize = 50;

fn expert(seed: u64) -> Sequential {
    build_expert(&ModelSpec::mlp(2, 16), seed)
}

fn chaos(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        drop_prob: 0.12,
        delay_prob: 0.10,
        corrupt_prob: 0.06,
        duplicate_prob: 0.10,
        max_delay_msgs: 3,
    }
}

#[test]
fn fifty_rounds_under_chaos_complete_with_live_predictions() {
    let mut mesh = ChannelTransport::mesh(3);
    let worker2 = ChaosTransport::with_config(mesh.pop().unwrap(), chaos(0xC2));
    let worker1 = ChaosTransport::with_config(mesh.pop().unwrap(), chaos(0xC1));
    let master = ChaosTransport::with_config(mesh.pop().unwrap(), chaos(0xC0));

    let config = MasterConfig {
        worker_timeout: Duration::from_millis(150),
        require_all_workers: false,
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 3,
            probe_interval: 2,
        },
        ..MasterConfig::default()
    };

    crossbeam::thread::scope(|scope| {
        for (i, node) in [&worker1, &worker2].into_iter().enumerate() {
            scope.spawn(move |_| {
                let mut worker_expert = expert(i as u64 + 1);
                serve_worker(node, 0, &mut worker_expert).unwrap();
            });
        }

        let mut session = InferenceSession::new(&master, config);
        let mut master_expert = expert(0);
        let mut discarded = (0u64, 0u64, 0u64);
        for round in 0..ROUNDS {
            let images = Tensor::full([2, 1, 28, 28], (round % 7) as f32 * 0.1);
            let report = session
                .infer(&master, &mut master_expert, &images)
                .unwrap_or_else(|e| panic!("round {round} failed: {e}"));

            // Full prediction vector every round, every winner a peer that
            // responded this round (the master itself always counts).
            assert_eq!(report.predictions.len(), 2, "round {round}");
            let responsive = report.responsive_peers();
            for p in &report.predictions {
                assert!(
                    responsive.contains(&p.expert),
                    "round {round}: prediction from unresponsive peer {}: {report:?}",
                    p.expert
                );
                assert!(
                    report.peers[p.expert].health != PeerHealth::Quarantined,
                    "round {round}: prediction from quarantined peer {}",
                    p.expert
                );
            }
            discarded.0 += report.stale_discarded;
            discarded.1 += report.corrupt_discarded;
            discarded.2 += report.malformed_discarded;
        }

        // The chaos layer must actually have injected faults (seeded, so
        // this is deterministic), and the protocol must have caught at
        // least some damaged traffic rather than silently consuming it.
        let stats = master.stats();
        assert!(stats.messages_dropped > 0, "{stats:?}");
        assert!(stats.messages_corrupted > 0, "{stats:?}");
        let (stale, corrupt, malformed) = discarded;
        assert!(
            stale + corrupt + malformed > 0,
            "chaos injected faults but none were discarded \
             (stale={stale} corrupt={corrupt} malformed={malformed})"
        );

        // Shutdown travels the fault-free inner path so it cannot be
        // chaos-dropped.
        shutdown_workers(master.inner()).unwrap();
    })
    .unwrap();
}
