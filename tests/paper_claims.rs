//! Integration tests asserting the paper's qualitative claims hold in the
//! reproduction, spanning training, baselines and the cost model.

use rand::{rngs::StdRng, SeedableRng};
use teamnet_core::convergence::{gamma_recurrence, imbalance};
use teamnet_core::{TrainConfig, Trainer};
use teamnet_data::synth_digits;
use teamnet_nn::ModelSpec;

/// Claim (Section IV, Figures 6/8): the proportion of data assigned to
/// each expert converges to the 1/K set point, and the empirical curve is
/// bounded by the Appendix A theory in the tail.
#[test]
fn empirical_shares_track_theory() {
    let mut rng = StdRng::seed_from_u64(0);
    let data = synth_digits(1_200, &mut rng);
    let config = TrainConfig {
        epochs: 4,
        batch_size: 48,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(ModelSpec::mlp(2, 32), 2, config);
    trainer.train(&data);
    let history = trainer.history();
    let total = history.records.len();

    // Empirical convergence: last 10% of iterations within 0.12 of 0.5.
    let final_imbalance = history.final_imbalance(total / 10);
    assert!(
        final_imbalance < 0.12,
        "empirical imbalance {final_imbalance}"
    );

    // Theory with the same gain contracts at least as fast from the same
    // start.
    let first = &history.records[0].cumulative_shares;
    let theory = gamma_recurrence(0.5, first, total);
    let theory_final = imbalance(theory.last().expect("non-empty"));
    assert!(theory_final < 0.05, "theory imbalance {theory_final}");
}

/// Claim (Tables I/II): TeamNet's accuracy is not compromised relative to
/// training the same expert architecture on all the data — the partition
/// costs little because the arg-min-entropy gate routes inputs to the
/// right specialist.
#[test]
fn partitioned_training_keeps_accuracy() {
    let mut rng = StdRng::seed_from_u64(1);
    let data = synth_digits(1_500, &mut rng);
    let (train, test) = data.split(1_200);

    // TeamNet: two specialists, each seeing ≈ half the data.
    let config = TrainConfig {
        epochs: 4,
        batch_size: 48,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(ModelSpec::mlp(2, 48), 2, config);
    trainer.train(&train);
    let mut team = trainer.into_team();
    let team_acc = team.evaluate(&test).accuracy;

    assert!(team_acc > 0.85, "TeamNet accuracy {team_acc}");
}

/// Claim (Section VI-C): each expert ends up a *specialist* — the classes
/// it wins at inference are concentrated, not uniform.
#[test]
fn experts_specialize_on_class_subsets() {
    let mut rng = StdRng::seed_from_u64(2);
    let data = synth_digits(1_200, &mut rng);
    let (train, test) = data.split(1_000);
    let config = TrainConfig {
        epochs: 4,
        batch_size: 48,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(ModelSpec::mlp(2, 48), 2, config);
    trainer.train(&train);
    let mut team = trainer.into_team();
    let eval = team.evaluate(&test);

    // At least a third of classes should be clearly owned (≥70%) by a
    // single expert.
    let owned = eval
        .specialization()
        .iter()
        .filter(|row| row.iter().any(|&s| s >= 0.7))
        .count();
    assert!(owned >= 3, "only {owned} classes clearly owned");
    // ... while both experts stay in play overall.
    assert!(
        eval.expert_wins.iter().all(|&w| w > 0),
        "{:?}",
        eval.expert_wins
    );
}

/// Claim (Table I): on WiFi, per-layer model parallelism (MPI-Matrix) is
/// slower than just running the whole model locally, while TeamNet's
/// two-message protocol is not.
#[test]
fn cost_model_reproduces_headline_ordering() {
    use teamnet_core::build_expert;
    use teamnet_partition::{simulate, ModelCost, Strategy, Workload};
    use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster};

    let full_spec = ModelSpec::mlp(8, 256);
    let expert_spec = ModelSpec::mlp(4, 256);
    let w = Workload {
        full: ModelCost::measure(&build_expert(&full_spec, 0), &full_spec.input_dims()),
        expert: ModelCost::measure(&build_expert(&expert_spec, 0), &expert_spec.input_dims()),
        result_bytes: 20,
    };
    let cluster = SimCluster::homogeneous(DeviceProfile::jetson_tx2_cpu(), 2);
    let base = simulate(Strategy::Baseline, &w, &cluster, ComputeUnit::Cpu)
        .sim
        .makespan;
    let team = simulate(Strategy::TeamNet { k: 2 }, &w, &cluster, ComputeUnit::Cpu)
        .sim
        .makespan;
    let mpi = simulate(
        Strategy::MpiMatrix { nodes: 2 },
        &w,
        &cluster,
        ComputeUnit::Cpu,
    )
    .sim
    .makespan;

    assert!(
        team < base,
        "TeamNet {team} should beat baseline {base} (paper: 3.2 vs 3.4 ms)"
    );
    assert!(
        mpi.as_millis_f64() > 5.0 * base.as_millis_f64(),
        "MPI {mpi} should dwarf baseline {base} (paper: 108 vs 3.4 ms)"
    );
}

/// Claim (Table I(b)): when the device is fast (GPU) and the model small,
/// the fixed WiFi cost makes the baseline beat TeamNet.
#[test]
fn gpu_inverts_the_gain_for_small_models() {
    use teamnet_core::build_expert;
    use teamnet_partition::{simulate, ModelCost, Strategy, Workload};
    use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster};

    let full_spec = ModelSpec::mlp(8, 256);
    let expert_spec = ModelSpec::mlp(4, 256);
    let w = Workload {
        full: ModelCost::measure(&build_expert(&full_spec, 0), &full_spec.input_dims()),
        expert: ModelCost::measure(&build_expert(&expert_spec, 0), &expert_spec.input_dims()),
        result_bytes: 20,
    };
    let cluster = SimCluster::homogeneous(DeviceProfile::jetson_tx2_gpu(), 2);
    let base = simulate(Strategy::Baseline, &w, &cluster, ComputeUnit::Gpu)
        .sim
        .makespan;
    let team = simulate(Strategy::TeamNet { k: 2 }, &w, &cluster, ComputeUnit::Gpu)
        .sim
        .makespan;
    assert!(
        base < team,
        "paper Table I(b): baseline 0.3 ms beats TeamNet 1.5 ms on GPU"
    );
}
