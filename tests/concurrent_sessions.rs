//! Regression test for round-stamp misattribution under concurrent
//! sessions (ISSUE 9 satellite 1).
//!
//! Round stamps were made process-unique in PR 2 so a late reply can
//! never alias a later round — but the transport mailbox is keyed
//! `(peer, tag)` only, so when two [`InferenceSession`]s gather over one
//! shared endpoint, session A's blocking recv can consume the frame
//! stamped with session B's round. Before the cross-session round
//! router, A discarded that frame as stale and B starved to a timeout:
//! with `require_all_workers` set, a spurious round failure with every
//! worker alive and answering. The router parks mis-delivered frames for
//! the session that owns the stamp; this test pins the fix by hammering
//! two interleaved strict-mode sessions over a duplicate-heavy
//! `ChaosTransport` and requiring every round to succeed.

use std::time::Duration;
use teamnet_core::build_expert;
use teamnet_core::runtime::{serve_worker, shutdown_workers, InferenceSession, MasterConfig};
use teamnet_net::{ChannelTransport, ChaosConfig, ChaosTransport};
use teamnet_nn::{ModelSpec, Sequential};
use teamnet_tensor::Tensor;

fn expert(seed: u64) -> Sequential {
    build_expert(&ModelSpec::mlp(2, 16), seed)
}

/// Duplicates only: a duplicated broadcast makes workers re-serve old
/// rounds, so extra stale-stamped replies float around the shared
/// mailbox on top of the two sessions' interleaved gathers. No drops or
/// corruption — those would fail strict rounds for unrelated reasons.
fn duplicate_heavy(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        drop_prob: 0.0,
        delay_prob: 0.0,
        corrupt_prob: 0.0,
        duplicate_prob: 0.3,
        max_delay_msgs: 0,
    }
}

#[test]
fn two_concurrent_sessions_share_a_transport_without_starving() {
    const ROUNDS_PER_SESSION: usize = 8;
    let mut nodes = ChannelTransport::mesh(3);
    let worker2_node = nodes.pop().expect("node 2");
    let worker1_node = nodes.pop().expect("node 1");
    let master_node = nodes.pop().expect("node 0");
    let chaos = ChaosTransport::with_config(master_node, duplicate_heavy(0xC0_11_1D_E5));

    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            let mut e = expert(1);
            serve_worker(&worker1_node, 0, &mut e).unwrap();
        });
        scope.spawn(|_| {
            let mut e = expert(2);
            serve_worker(&worker2_node, 0, &mut e).unwrap();
        });

        // Two sessions gather concurrently over the *same* master
        // endpoint. Strict mode: any mis-routed reply that starves its
        // owning session fails the whole test.
        let sessions: Vec<_> = (0..2u64)
            .map(|tenant| {
                let chaos = &chaos;
                scope.spawn(move |_| {
                    let config = MasterConfig {
                        worker_timeout: Duration::from_millis(500),
                        require_all_workers: true,
                        ..MasterConfig::default()
                    };
                    let mut session = InferenceSession::new(chaos, config);
                    let mut master_expert = expert(0);
                    for round in 0..ROUNDS_PER_SESSION {
                        let fill = 0.1 + tenant as f32 * 0.4 + round as f32 * 0.02;
                        let images = Tensor::full([2, 1, 28, 28], fill);
                        let report = session
                            .infer(chaos, &mut master_expert, &images)
                            .unwrap_or_else(|e| {
                                panic!("tenant {tenant} round {round} starved: {e}")
                            });
                        assert_eq!(report.predictions.len(), 2);
                    }
                })
            })
            .collect();
        for s in sessions {
            s.join().unwrap();
        }
        shutdown_workers(chaos.inner()).unwrap();
    })
    .unwrap();
}
