//! Seeded serving soak: the determinism contract extended to the
//! multi-tenant front-end.
//!
//! Two runs with identical seeds — same chaos schedule, same virtual
//! arrival schedule on a [`ManualClock`], same mid-run worker blackhole —
//! must emit **byte-identical** span traces, metrics summaries and
//! per-request prediction transcripts. Every admission decision, dual-
//! trigger flush, quarantine transition and backpressure window change is
//! thereby pinned: a wall-clock read or iteration-order leak anywhere in
//! the serve path would flake this test (and `cargo xtask audit` rejects
//! such reads statically — `crates/serve/src/` is a taint root).

use std::sync::Arc;
use std::time::Duration;
use teamnet_core::build_expert;
use teamnet_core::health::PeerHealth;
use teamnet_core::runtime::{serve_worker, shutdown_workers, MasterConfig, TAG_SHUTDOWN};
use teamnet_core::FailureDetectorConfig;
use teamnet_net::{ChannelTransport, ChaosConfig, ChaosTransport, ManualClock, Transport};
use teamnet_nn::{ModelSpec, Sequential};
use teamnet_obs::{Obs, VecSink};
use teamnet_serve::{BatcherConfig, ServeConfig, ServeEngine, Ticket};
use teamnet_tensor::Tensor;

const SOAK_SEED: u64 = 0x5EA7_1E55;
const QUEUE_CAP_ROWS: usize = 32;

fn expert(seed: u64) -> Sequential {
    build_expert(&ModelSpec::mlp(2, 16), seed)
}

/// A deterministic offered-load schedule: (virtual ms gap before this
/// arrival, rows). Derived from the seed by a fixed congruence so both
/// runs replay it exactly; covers single-row, multi-row and
/// deadline-vs-size trigger interleavings.
fn arrival_schedule(seed: u64, n: usize) -> Vec<(u64, usize)> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let gap_ms = 1 + (state >> 33) % 6; // 1..=6 virtual ms
            let rows = 1 + ((state >> 13) % 3) as usize; // 1..=3 rows
            (gap_ms, rows)
        })
        .collect()
}

/// Runs one seeded serving soak and returns `(trace_jsonl,
/// metrics_summary, prediction_transcript)`.
///
/// Halfway through the arrival schedule worker 2 is shut down
/// (blackholed): the detector quarantines it, rounds degrade to the live
/// subset, and the admission window shrinks — all of which must be
/// byte-identically reproducible.
fn serve_soak() -> (String, String, String) {
    let mut mesh = ChannelTransport::mesh(3);
    let gentle = |node_seed: u64| ChaosConfig {
        seed: SOAK_SEED ^ node_seed,
        drop_prob: 0.05,
        delay_prob: 0.06,
        corrupt_prob: 0.03,
        duplicate_prob: 0.08,
        max_delay_msgs: 3,
    };
    let worker2 = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xE2));
    let worker1 = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xE1));
    let master = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xE0));

    let clock = Arc::new(ManualClock::new());
    let sink = Arc::new(VecSink::new());
    let obs = Obs::new(Arc::clone(&clock) as _, Arc::clone(&sink) as _);

    let config = ServeConfig {
        batch: BatcherConfig {
            max_batch_rows: 8,
            max_delay_ns: 8_000_000,
            queue_cap_rows: QUEUE_CAP_ROWS,
        },
        input_dims: vec![1, 28, 28],
        master: MasterConfig {
            worker_timeout: Duration::from_millis(300),
            require_all_workers: false,
            failure: FailureDetectorConfig {
                suspect_after: 1,
                quarantine_after: 2,
                // No probe rounds inside this short soak: probing the
                // blackholed worker would only add timeout waits.
                probe_interval: 1_000,
            },
            clock: Arc::clone(&clock) as _,
            obs: obs.clone(),
            ..MasterConfig::default()
        },
    };

    let schedule = arrival_schedule(SOAK_SEED, 20);
    let blackhole_at = schedule.len() / 2;
    let mut transcript = String::new();

    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            let mut e = expert(1);
            serve_worker(&worker1, 0, &mut e).unwrap();
        });
        let mut w2 = Some(scope.spawn(|_| {
            let mut e = expert(2);
            serve_worker(&worker2, 0, &mut e).unwrap();
        }));

        let mut engine = ServeEngine::new(&master, expert(0), config);
        let handle = engine.handle();
        assert_eq!(handle.admission_window(), QUEUE_CAP_ROWS);

        let mut tickets: Vec<(usize, Ticket)> = Vec::new();
        for (i, &(gap_ms, rows)) in schedule.iter().enumerate() {
            if i == blackhole_at {
                // Blackhole worker 2: a clean shutdown frame via the
                // unchaosed inner endpoint (the *fault* we are injecting
                // is the silence that follows, not a lost shutdown).
                master.inner().send(2, TAG_SHUTDOWN, &[]).unwrap();
                if let Some(h) = w2.take() {
                    h.join().unwrap();
                }
            }
            clock.advance(Duration::from_millis(gap_ms));
            engine.pump_now(&master);
            let fill = 0.05 + (i % 9) as f32 * 0.1;
            let ticket = handle
                .submit(&Tensor::full(vec![rows, 1, 28, 28], fill))
                .unwrap_or_else(|e| panic!("arrival {i} rejected: {e}"));
            tickets.push((i, ticket));
            engine.pump_now(&master);
        }
        // Drain: let the last deadline fire, then close-flush the rest.
        clock.advance(Duration::from_millis(8));
        engine.pump_now(&master);
        handle.close();
        while engine.pump_now(&master) > 0 {}

        for (i, ticket) in tickets {
            let preds = ticket
                .try_take()
                .unwrap_or_else(|| panic!("request {i} never completed"))
                .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
            for p in preds {
                transcript.push_str(&format!(
                    "req={i} label={} expert={} entropy={:08x}\n",
                    p.label,
                    p.expert,
                    p.entropy.to_bits()
                ));
            }
        }

        // The blackhole must have bitten: worker 2 quarantined, and the
        // admission window narrowed to the live fraction (backpressure).
        assert_eq!(
            engine.session().detector().health(2),
            PeerHealth::Quarantined
        );
        assert!(
            handle.admission_window() < QUEUE_CAP_ROWS,
            "window {} should have shrunk below {QUEUE_CAP_ROWS}",
            handle.admission_window()
        );

        shutdown_workers(master.inner()).unwrap();
    })
    .unwrap();

    (
        sink.to_jsonl(),
        obs.metrics.snapshot().summary(),
        transcript,
    )
}

#[test]
fn identical_seeds_give_byte_identical_serve_transcripts() {
    let (trace_a, metrics_a, preds_a) = serve_soak();
    let (trace_b, metrics_b, preds_b) = serve_soak();

    assert!(!trace_a.is_empty(), "tracer recorded nothing");
    assert_eq!(trace_a, trace_b, "seeded serve trace diverged between runs");
    assert_eq!(metrics_a, metrics_b, "seeded serve metrics diverged");
    assert_eq!(preds_a, preds_b, "prediction transcripts diverged");

    // The serve-specific spans and metrics are actually present.
    for name in ["serve.coalesce", "serve.flush", "round.broadcast"] {
        assert!(
            trace_a.contains(&format!("\"name\":\"{name}\"")),
            "span `{name}` missing from trace"
        );
    }
    for metric in [
        "gauge serve.queue_depth",
        "counter serve.admitted",
        "histogram serve.batch.rows",
        "histogram serve.latency.ns",
    ] {
        assert!(metrics_a.contains(metric), "{metric} missing:\n{metrics_a}");
    }
}
