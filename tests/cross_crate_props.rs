//! Cross-crate property tests: invariants that must hold when the pieces
//! compose (gate × entropy × data × models).

use proptest::prelude::*;
use teamnet_core::{assignment_shares, entropy_matrix, weighted_argmin, DynamicGate, GateConfig};
use teamnet_tensor::Tensor;

fn probability_rows(n: usize, classes: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(0.01f32..1.0, n * classes).prop_map(move |raw| {
        let mut t = Tensor::from_vec(raw, [n, classes]).expect("volume");
        for r in 0..n {
            let row = t.row_mut(r);
            let sum: f32 = row.iter().sum();
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The gate always returns a complete, in-range partition of the batch
    /// whose shares sum to one, no matter what entropy landscape the
    /// experts produce.
    #[test]
    fn gate_assignment_is_a_partition(
        n in 8usize..48,
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let entropy = Tensor::rand_uniform([n, k], 0.01, 2.3, &mut rng);
        let mut gate = DynamicGate::new(k, GateConfig::default(), seed);
        let decision = gate.assign(&entropy);

        prop_assert_eq!(decision.assignment.len(), n);
        prop_assert!(decision.assignment.iter().all(|&a| a < k));
        let share_sum: f32 = decision.gamma_bar.iter().sum();
        prop_assert!((share_sum - 1.0).abs() < 1e-4);
        prop_assert!(decision.delta.iter().all(|&d| d > 0.0 && d.is_finite()));
        // The returned assignment is consistent with the returned δ.
        let recomputed = weighted_argmin(&entropy, &decision.delta);
        prop_assert_eq!(recomputed, decision.assignment.clone());
        let shares = assignment_shares(&decision.assignment, k);
        prop_assert_eq!(shares, decision.gamma_bar.clone());
    }

    /// Entropy matrices built from arbitrary expert probability outputs
    /// are finite, non-negative, and bounded by ln(classes).
    #[test]
    fn entropy_matrix_is_well_formed(
        n in 1usize..20,
        classes in 2usize..11,
        k in 1usize..5,
        seed in 0u64..100,
    ) {
        use proptest::strategy::ValueTree;
        let _ = seed;
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let probs: Vec<Tensor> = (0..k)
            .map(|_| {
                probability_rows(n, classes)
                    .new_tree(&mut runner)
                    .expect("tree")
                    .current()
            })
            .collect();
        let h = match entropy_matrix(&probs) {
            Ok(h) => h,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(e.to_string())),
        };
        prop_assert_eq!(h.dims(), &[n, k]);
        prop_assert!(h.all_finite());
        prop_assert!(h.min() >= 0.0);
        prop_assert!(h.max() <= (classes as f32).ln() + 1e-4);
    }

    /// Handicapping one expert with a larger δ can only reduce the number
    /// of inputs it wins (monotonicity of the weighted arg-min gate).
    #[test]
    fn handicap_is_monotone(
        n in 4usize..40,
        seed in 0u64..500,
        factor in 1.1f32..20.0,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let entropy = Tensor::rand_uniform([n, 3], 0.05, 2.0, &mut rng);
        let base = weighted_argmin(&entropy, &[1.0, 1.0, 1.0]);
        let handicapped = weighted_argmin(&entropy, &[factor, 1.0, 1.0]);
        let wins_before = base.iter().filter(|&&a| a == 0).count();
        let wins_after = handicapped.iter().filter(|&&a| a == 0).count();
        prop_assert!(wins_after <= wins_before);
        // Rows that expert 0 lost stay lost.
        for (b, h) in base.iter().zip(&handicapped) {
            if *b != 0 {
                prop_assert_ne!(*h, 0);
            }
        }
    }
}

/// Models serialized through the workspace wire format survive a full
/// encode/decode round trip with their predictions intact.
#[test]
fn model_state_roundtrips_through_wire_codec() {
    use teamnet_core::build_expert;
    use teamnet_net::codec::{decode_f32s, encode_f32s};
    use teamnet_nn::{load_state, state_vec, Layer, Mode, ModelSpec};

    let spec = ModelSpec::mlp(3, 24);
    let mut original = build_expert(&spec, 9);
    let state = state_vec(&mut original);

    // Encode every tensor as wire bytes and decode back.
    let decoded: Vec<Tensor> = state
        .iter()
        .map(|t| {
            let bytes = encode_f32s(t.dims(), t.data());
            let (dims, data) = decode_f32s(&bytes).expect("decode");
            Tensor::from_vec(data, dims).expect("rebuild")
        })
        .collect();

    let mut restored = build_expert(&spec, 1234);
    load_state(&mut restored, &decoded);
    let x = Tensor::rand_uniform(
        [3, 1, 28, 28],
        0.0,
        1.0,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5),
    );
    let a = original.forward(&x, Mode::Eval);
    let b = restored.forward(&x, Mode::Eval);
    assert_eq!(a, b);
}
