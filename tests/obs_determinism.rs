//! The observability determinism contract, enforced end-to-end: two
//! identical seeded chaos soaks, each with a tracer on the master session,
//! must emit **byte-identical** JSONL span traces and byte-identical
//! metrics summaries.
//!
//! The tracer's clock is a [`ManualClock`] that is never advanced, so
//! every timestamp is a deterministic 0-offset; what the assertion then
//! pins down is the *structure* of the trace — the exact sequence of
//! rounds, broadcasts, per-peer sends, retries, gather awaits and argmin
//! merges the protocol performed — plus every counter the run
//! accumulated (discards, retries, detector transitions). A wall-clock
//! read smuggled anywhere into the traced path would make this test
//! flake; `cargo xtask audit` rejects such reads statically, and this
//! test rejects them dynamically.

use std::sync::Arc;
use std::time::Duration;
use teamnet_core::runtime::{serve_worker, shutdown_workers, InferenceSession, MasterConfig};
use teamnet_core::{build_expert, FailureDetectorConfig};
use teamnet_net::{ChannelTransport, ChaosConfig, ChaosTransport, ManualClock, Transport};
use teamnet_nn::{ModelSpec, Sequential};
use teamnet_obs::{Obs, VecSink};
use teamnet_tensor::Tensor;

/// Same session seed as `tests/chaos_soak.rs`: one knob replays the whole
/// fault schedule.
const SESSION_SEED: u64 = 0x7EA3_0001;

fn expert(seed: u64) -> Sequential {
    build_expert(&ModelSpec::mlp(2, 16), seed)
}

/// Runs a short traced 3-node soak and returns `(jsonl_trace,
/// metrics_summary, report_summaries)`.
///
/// Fault probabilities are low relative to the generous deadline (the
/// `mini_soak` recipe of `tests/chaos_soak.rs`): live in-process workers
/// answer in microseconds, so only seeded chaos decides outcomes — never
/// wall-clock timing.
fn traced_soak(rounds: usize) -> (String, String, String) {
    let mut mesh = ChannelTransport::mesh(3);
    let gentle = |node_seed: u64| ChaosConfig {
        seed: SESSION_SEED ^ node_seed,
        drop_prob: 0.06,
        delay_prob: 0.08,
        corrupt_prob: 0.04,
        duplicate_prob: 0.10,
        max_delay_msgs: 3,
    };
    let worker2 = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xD2));
    let worker1 = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xD1));
    let master = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xD0));

    let sink = Arc::new(VecSink::new());
    let obs = Obs::new(Arc::new(ManualClock::new()), Arc::clone(&sink) as _);

    let config = MasterConfig {
        worker_timeout: Duration::from_millis(800),
        require_all_workers: false,
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 3,
            probe_interval: 2,
        },
        obs: obs.clone(),
        ..MasterConfig::default()
    };

    let mut summaries = String::new();
    crossbeam::thread::scope(|scope| {
        for (i, node) in [&worker1, &worker2].into_iter().enumerate() {
            scope.spawn(move |_| {
                let mut worker_expert = expert(i as u64 + 1);
                serve_worker(node, 0, &mut worker_expert).unwrap();
            });
        }

        let mut session = InferenceSession::new(&master, config);
        let mut master_expert = expert(0);
        for round in 0..rounds {
            let images = Tensor::full([2, 1, 28, 28], (round % 7) as f32 * 0.1);
            let report = session
                .infer(&master, &mut master_expert, &images)
                .unwrap_or_else(|e| panic!("round {round} failed: {e}"));
            summaries.push_str(&report.summary());
            summaries.push('\n');
        }
        shutdown_workers(master.inner()).unwrap();
    })
    .unwrap();

    (sink.to_jsonl(), obs.metrics.snapshot().summary(), summaries)
}

/// The tentpole assertion: identical seeds ⇒ byte-identical traces *and*
/// byte-identical metrics, run-to-run, with fresh threads and transports.
#[test]
fn identical_seeded_soaks_emit_byte_identical_traces_and_metrics() {
    let (trace_a, metrics_a, reports_a) = traced_soak(12);
    let (trace_b, metrics_b, reports_b) = traced_soak(12);

    assert!(!trace_a.is_empty(), "tracer recorded nothing");
    assert_eq!(trace_a, trace_b, "seeded trace diverged between runs");
    assert_eq!(metrics_a, metrics_b, "seeded metrics diverged between runs");
    assert_eq!(reports_a, reports_b, "report summaries diverged");

    // The trace actually covers the protocol: every structural span the
    // runtime emits shows up, 12 rounds' worth.
    assert_eq!(
        trace_a.matches("\"ev\":\"enter\"").count(),
        trace_a.matches("\"ev\":\"exit\"").count(),
        "every span must close"
    );
    // 12 enters + 12 exits of the per-round root span.
    assert_eq!(trace_a.matches("\"name\":\"round\",").count(), 24);
    for name in [
        "round.broadcast",
        "round.send",
        "expert.forward",
        "round.gather",
        "gather.await",
        "entropy.argmin",
    ] {
        assert!(
            trace_a.contains(&format!("\"name\":\"{name}\"")),
            "span `{name}` missing from trace"
        );
    }

    // Metrics cover the session too: the detector counter exists (wired
    // via MasterConfig.obs) and span-duration histograms were fed.
    assert!(
        metrics_a.contains("counter detector.transitions"),
        "{metrics_a}"
    );
    assert!(
        metrics_a.contains("histogram span.round.ns:"),
        "{metrics_a}"
    );
}

/// A traced run and an untraced run of the same seed perform the same
/// protocol work: tracing must observe, never perturb. The report
/// summaries (winners, health walks, discard counts) are the evidence.
#[test]
fn tracing_does_not_perturb_protocol_outcomes() {
    let (_, _, traced) = traced_soak(8);

    // Same soak, disabled obs (the MasterConfig default).
    let mut mesh = ChannelTransport::mesh(3);
    let gentle = |node_seed: u64| ChaosConfig {
        seed: SESSION_SEED ^ node_seed,
        drop_prob: 0.06,
        delay_prob: 0.08,
        corrupt_prob: 0.04,
        duplicate_prob: 0.10,
        max_delay_msgs: 3,
    };
    let worker2 = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xD2));
    let worker1 = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xD1));
    let master = ChaosTransport::with_config(mesh.pop().unwrap(), gentle(0xD0));
    let config = MasterConfig {
        worker_timeout: Duration::from_millis(800),
        require_all_workers: false,
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 3,
            probe_interval: 2,
        },
        ..MasterConfig::default()
    };
    let mut untraced = String::new();
    crossbeam::thread::scope(|scope| {
        for (i, node) in [&worker1, &worker2].into_iter().enumerate() {
            scope.spawn(move |_| {
                let mut worker_expert = expert(i as u64 + 1);
                serve_worker(node, 0, &mut worker_expert).unwrap();
            });
        }
        let mut session = InferenceSession::new(&master, config);
        let mut master_expert = expert(0);
        for round in 0..8 {
            let images = Tensor::full([2, 1, 28, 28], (round % 7) as f32 * 0.1);
            let report = session
                .infer(&master, &mut master_expert, &images)
                .unwrap_or_else(|e| panic!("round {round} failed: {e}"));
            untraced.push_str(&report.summary());
            untraced.push('\n');
        }
        shutdown_workers(master.inner()).unwrap();
    })
    .unwrap();

    assert_eq!(traced, untraced, "tracing changed protocol behaviour");
}

/// Bucket-boundary spot checks at the integration level, mirroring the
/// exhaustive unit tests in `teamnet_obs::metrics`: 0, 1, u64::MAX and
/// exact powers of two land where the log2 scheme says they must.
#[test]
fn histogram_bucket_boundaries_hold() {
    use teamnet_obs::Histogram;
    let h = Histogram::new();
    for v in [0u64, 1, 2, 4, 1 << 32, u64::MAX] {
        h.observe(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 6);
    let exps: Vec<u32> = snap.buckets.iter().map(|b| b.exp).collect();
    // 0 -> bucket 0; 1 -> bucket 1; 2 -> bucket 2; 4 -> bucket 3;
    // 2^32 -> bucket 33; u64::MAX -> bucket 64.
    assert_eq!(exps, vec![0, 1, 2, 3, 33, 64]);
    assert_eq!(snap.quantile(0), 0);
    assert_eq!(snap.p50(), 3, "p50 reports the bucket upper bound");
    assert_eq!(snap.p99(), u64::MAX);
}
