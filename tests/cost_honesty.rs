//! Runtime honesty check for the static resource certification.
//!
//! `cargo xtask cost` certifies, for every model configuration in the
//! paper's grid, a peak-live-activation bound computed by the liveness
//! analysis in `teamnet_nn::cost` (DESIGN.md §13). This test runs a real
//! instrumented eval forward for each of those models and asserts the
//! certificate from both directions:
//!
//! * **soundness** — the static peak upper-bounds the measured peak
//!   (an under-estimate would admit experts onto devices they cannot
//!   fit on);
//! * **tightness** — the static peak is at most [`SLACK`] × the measured
//!   peak (a certificate with unlimited headroom is trivially sound and
//!   practically useless).
//!
//! It also closes the wire-model loop from the nn side: the framed byte
//! counts the certificate prices must equal what `teamnet-net`'s real
//! codec actually puts on the wire.

use teamnet_net::codec::{encode_f32s, encode_frame};
use teamnet_net::{Envelope, PayloadKind, Tag};
use teamnet_nn::{expert_cost, ExpertCost, Layer, Mode, ModelSpec, WireModel};
use teamnet_tensor::{force_sequential_scope, MemScope, Tensor};

/// Documented over-approximation budget of the certificate: static peak
/// may exceed the measured peak by at most this factor. Sources of slack
/// (DESIGN.md §13): leaves price `workspace + output` coexisting even for
/// ops that free scratch earlier, and small non-tensor scratch (`Vec<f32>`
/// per-channel buffers) is excluded from measurement, shrinking the
/// observed side.
const SLACK: f64 = 2.0;

/// The paper grid, mirroring `cargo xtask cost` / `xtask::shapes`.
fn paper_grid() -> Vec<(String, ModelSpec)> {
    let mut specs = Vec::new();
    for layers in [2usize, 4, 8] {
        specs.push((format!("MLP-{layers}"), ModelSpec::mlp(layers, 128)));
    }
    for depth in [8usize, 14, 26] {
        specs.push((format!("SS-{depth}"), ModelSpec::shake_shake(depth, 16)));
    }
    specs
}

/// Peak tensor bytes measured over one sequential eval forward, with the
/// input tensor allocated inside the scope (the certificate includes the
/// caller-held input). Sequential execution matches the certificate's
/// model; the parallel backend adds per-worker scratch that is priced as
/// deployment overhead, not model liveness.
fn observed_eval_peak(spec: &ModelSpec) -> (ExpertCost, u64) {
    let mut net = spec.build_checked(0).expect("paper grid builds");
    let mut dims = vec![1];
    dims.extend(spec.input_dims());
    let cert = expert_cost(&net, &dims, &WireModel::default());
    let peak = force_sequential_scope(|| {
        let scope = MemScope::begin();
        let x = Tensor::zeros(dims.clone());
        let y = net.forward(&x, Mode::Eval);
        let stats = scope.stats();
        drop((x, y));
        stats.peak_bytes
    });
    (cert, peak)
}

#[test]
fn static_peak_bounds_and_stays_near_the_measured_peak_across_the_grid() {
    for (name, spec) in paper_grid() {
        let (cert, observed) = observed_eval_peak(&spec);
        assert!(
            cert.peak_activation_bytes >= observed,
            "{name}: certified peak {} under-counts measured {}",
            cert.peak_activation_bytes,
            observed
        );
        assert!(
            (cert.peak_activation_bytes as f64) <= SLACK * observed as f64,
            "{name}: certified peak {} exceeds {SLACK}x measured {}",
            cert.peak_activation_bytes,
            observed
        );
    }
}

#[test]
fn certificates_are_byte_stable_across_recomputation() {
    let render = |grid: &[(String, ModelSpec)]| -> String {
        grid.iter()
            .map(|(name, spec)| {
                let net = spec.build_checked(0).expect("paper grid builds");
                let mut dims = vec![1];
                dims.extend(spec.input_dims());
                let cert = expert_cost(&net, &dims, &WireModel::default());
                format!(
                    "{name}:{}\n",
                    serde_json::to_string(&cert).expect("certificate renders")
                )
            })
            .collect()
    };
    let first = render(&paper_grid());
    let second = render(&paper_grid());
    assert!(!first.is_empty());
    assert_eq!(first, second);
}

#[test]
fn wire_model_matches_the_real_codec_byte_for_byte() {
    for (name, spec) in paper_grid() {
        let net = spec.build_checked(0).expect("paper grid builds");
        let mut dims = vec![1];
        dims.extend(spec.input_dims());
        let cert = expert_cost(&net, &dims, &WireModel::default());

        // Frame the input tensor exactly as the inference runtime does:
        // f32s payload, wrapped in an envelope, wrapped in a frame.
        let volume: usize = dims.iter().product();
        let input_frame = encode_frame(
            0,
            Tag(1),
            &Envelope::new(
                7,
                PayloadKind::Input,
                encode_f32s(&dims, &vec![0.0; volume]),
            )
            .encode(),
        );
        assert_eq!(
            cert.wire_input_bytes,
            input_frame.len() as u64,
            "{name}: certified input framing disagrees with the codec"
        );

        // Results travel as a `[batch, 2]` matrix (argmax, confidence).
        let result_frame = encode_frame(
            1,
            Tag(2),
            &Envelope::new(
                7,
                PayloadKind::Result,
                encode_f32s(&[cert.batch, 2], &vec![0.0; cert.batch * 2]),
            )
            .encode(),
        );
        assert_eq!(
            cert.wire_result_bytes,
            result_frame.len() as u64,
            "{name}: certified result framing disagrees with the codec"
        );
    }
}

#[test]
fn checked_in_certificate_carries_the_freshly_computed_numbers() {
    // `cargo xtask cost --check` diffs the whole file; this guards the
    // same invariant from the test suite for the models it measures, so a
    // stale COST.json fails `cargo test` too, not only the xtask stage.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/COST.json");
    let text = std::fs::read_to_string(path).expect("COST.json is checked in");
    for (name, spec) in paper_grid() {
        assert!(text.contains(&format!("\"{name}\"")), "{name} missing");
        let net = spec.build_checked(0).expect("paper grid builds");
        let mut dims = vec![1];
        dims.extend(spec.input_dims());
        let cert = expert_cost(&net, &dims, &WireModel::default());
        for (field, value) in [
            ("param_bytes", cert.param_bytes),
            ("peak_activation_bytes", cert.peak_activation_bytes),
            ("flops", cert.flops),
        ] {
            assert!(
                text.contains(&format!("\"{field}\": {value}")),
                "{name}: checked-in COST.json lacks {field} = {value}"
            );
        }
    }
}
