//! End-to-end integration: train → deploy over real TCP → collaborative
//! inference, spanning `teamnet-core`, `teamnet-nn`, `teamnet-data` and
//! `teamnet-net`.

use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;
use teamnet_core::runtime::{master_infer, serve_worker, shutdown_workers, MasterConfig};
use teamnet_core::{build_expert, TrainConfig, Trainer};
use teamnet_data::synth_digits;
use teamnet_net::{LossyTransport, TcpTransport, Transport};
use teamnet_nn::{load_state, state_vec, ModelSpec};

fn quick_train(k: usize) -> (teamnet_core::TeamNet, teamnet_data::Dataset) {
    let mut rng = StdRng::seed_from_u64(42);
    let data = synth_digits(700, &mut rng);
    let (train, test) = data.split(560);
    let config = TrainConfig {
        epochs: 3,
        batch_size: 32,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(ModelSpec::mlp(2, 48), k, config);
    trainer.train(&train);
    (trainer.into_team(), test)
}

#[test]
fn train_deploy_infer_over_tcp_matches_local() {
    let (mut team, test) = quick_train(2);
    let local_eval = team.evaluate(&test);
    assert!(
        local_eval.accuracy > 0.5,
        "undertrained team: {}",
        local_eval.accuracy
    );

    // Ship each expert's weights to its node, exactly as a deployment
    // would.
    let spec = team.spec().clone();
    let states: Vec<_> = (0..2).map(|i| state_vec(team.expert_mut(i))).collect();
    let nodes = TcpTransport::mesh_localhost(2).expect("mesh");

    let sample = test.subset(&(0..40).collect::<Vec<_>>());
    let distributed_preds = crossbeam::thread::scope(|scope| {
        let node1 = &nodes[1];
        let spec_w = spec.clone();
        let state_w = states[1].clone();
        scope.spawn(move |_| {
            let mut expert = build_expert(&spec_w, 0);
            load_state(&mut expert, &state_w);
            serve_worker(node1, 0, &mut expert).unwrap();
        });
        let mut master = build_expert(&spec, 0);
        load_state(&mut master, &states[0]);
        let preds = master_infer(
            &nodes[0],
            &mut master,
            sample.images(),
            &MasterConfig::default(),
        )
        .unwrap();
        shutdown_workers(&nodes[0]).unwrap();
        preds
    })
    .unwrap();

    // Distributed predictions must equal the in-process team's.
    let local_preds = team.predict(sample.images());
    assert_eq!(distributed_preds.len(), local_preds.len());
    for (d, l) in distributed_preds.iter().zip(&local_preds) {
        assert_eq!(d.label, l.label);
        assert_eq!(d.expert, l.expert);
        assert!((d.entropy - l.entropy).abs() < 1e-4);
    }
}

#[test]
fn inference_survives_a_blackholed_worker() {
    let (mut team, test) = quick_train(2);
    let spec = team.spec().clone();
    let state0 = state_vec(team.expert_mut(0));

    // A 2-node in-process cluster where the master's traffic to the worker
    // is black-holed mid-service: degraded mode must still answer.
    let mut mesh = teamnet_net::ChannelTransport::mesh(2);
    let _worker_side = mesh.pop().unwrap(); // worker never runs: dead node
    let lossy = LossyTransport::new(mesh.pop().unwrap());
    lossy.blackhole(1);

    let mut master = build_expert(&spec, 0);
    load_state(&mut master, &state0);
    let config = MasterConfig {
        worker_timeout: Duration::from_millis(100),
        require_all_workers: false,
        ..MasterConfig::default()
    };
    let sample = test.subset(&[0, 1, 2]);
    let preds = master_infer(&lossy, &mut master, sample.images(), &config).unwrap();
    assert_eq!(preds.len(), 3);
    assert!(preds.iter().all(|p| p.expert == lossy.node_id()));
}

#[test]
fn strict_mode_reports_timeout_for_dead_worker() {
    let (mut team, test) = quick_train(2);
    let spec = team.spec().clone();
    let state0 = state_vec(team.expert_mut(0));
    let nodes = teamnet_net::ChannelTransport::mesh(2);
    let mut master = build_expert(&spec, 0);
    load_state(&mut master, &state0);
    let config = MasterConfig {
        worker_timeout: Duration::from_millis(50),
        require_all_workers: true,
        ..MasterConfig::default()
    };
    let sample = test.subset(&[0]);
    let res = master_infer(&nodes[0], &mut master, sample.images(), &config);
    assert!(
        matches!(res, Err(teamnet_net::NetError::Timeout { .. })),
        "{res:?}"
    );
}
