//! Property tests for the determinism contract of the parallel compute
//! backend: every kernel in `teamnet_tensor::pool`'s orbit must produce
//! **bit-identical** results at every thread count, because workers write
//! disjoint output blocks with an unchanged per-element reduction order.
//!
//! Shapes are drawn adversarially small (including zero-sized axes) so
//! the partitioner's edge cases — fewer units than threads, empty
//! batches, degenerate tiles — are all exercised with real threads.

use proptest::prelude::*;
use teamnet_core::{build_expert, TeamNet};
use teamnet_nn::ModelSpec;
use teamnet_tensor::conv::{conv2d_backward_with, conv2d_with, Conv2dSpec};
use teamnet_tensor::{ParallelConfig, Tensor};

const THREAD_COUNTS: [usize; 3] = [2, 3, 4];

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

/// A seeded matrix of mostly finite values with zeros and the IEEE
/// specials sprinkled in at deterministic positions, so the matmul
/// sparsity skip sees the operands it must not silently absorb.
fn adversarial_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tensor::rand_uniform([rows, cols], -4.0, 4.0, &mut rng);
    for (i, v) in t.data_mut().iter_mut().enumerate() {
        match (i + seed as usize) % 11 {
            0 | 4 => *v = 0.0,
            6 => *v = f32::NAN,
            8 => *v = f32::INFINITY,
            9 => *v = f32::NEG_INFINITY,
            _ => {}
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel matmul is bit-identical to the sequential kernel for
    /// arbitrary shapes — including m=0, n=0, k=0 — and arbitrary data,
    /// NaN and infinities included.
    #[test]
    fn matmul_is_bit_identical_across_thread_counts(
        m in 0usize..9,
        k in 0usize..9,
        n in 0usize..9,
        seed in 0u64..10_000,
    ) {
        let a = adversarial_matrix(m, k, seed);
        let b = adversarial_matrix(k, n, seed.wrapping_add(1));

        let reference = a
            .try_matmul_with(&b, ParallelConfig::sequential())
            .expect("shapes agree");
        for threads in THREAD_COUNTS {
            let out = a
                .try_matmul_with(&b, ParallelConfig::with_threads(threads))
                .expect("shapes agree");
            prop_assert_eq!(out.dims(), &[m, n]);
            prop_assert_eq!(bits(&out), bits(&reference));
        }
    }

    /// Parallel conv2d forward and backward are bit-identical to the
    /// sequential kernels, empty batches included.
    #[test]
    fn conv2d_is_bit_identical_across_thread_counts(
        n in 0usize..4,
        ic in 1usize..4,
        oc in 1usize..5,
        hw in 3usize..8,
        seed in 0u64..1_000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::randn([n, ic, hw, hw], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn([oc, ic, 3, 3], 0.0, 0.3, &mut rng);
        let bias = Tensor::randn([oc], 0.0, 0.3, &mut rng);

        let seq = ParallelConfig::sequential();
        let fwd_ref = conv2d_with(&input, &weight, &bias, spec, seq);
        let grad_out = Tensor::randn(fwd_ref.dims().to_vec(), 0.0, 1.0, &mut rng);
        let bwd_ref = conv2d_backward_with(&input, &weight, &grad_out, spec, seq);

        for threads in THREAD_COUNTS {
            let cfg = ParallelConfig::with_threads(threads);
            let fwd = conv2d_with(&input, &weight, &bias, spec, cfg);
            prop_assert_eq!(bits(&fwd), bits(&fwd_ref));
            let bwd = conv2d_backward_with(&input, &weight, &grad_out, spec, cfg);
            prop_assert_eq!(bits(&bwd.0), bits(&bwd_ref.0));
            prop_assert_eq!(bits(&bwd.1), bits(&bwd_ref.1));
            prop_assert_eq!(bits(&bwd.2), bits(&bwd_ref.2));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The per-expert inference fan-out returns the same predictions —
    /// labels, winning experts, and bit-level entropies — at every
    /// thread count.
    #[test]
    fn team_predictions_are_bit_identical_across_thread_counts(
        k in 2usize..5,
        batch in 1usize..9,
        seed in 0u64..100,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let spec = ModelSpec::mlp(2, 16);
        let experts = (0..k).map(|i| build_expert(&spec, seed.wrapping_add(i as u64))).collect();
        let mut team = TeamNet::from_experts(spec, experts);
        let mut rng = StdRng::seed_from_u64(seed);
        let images = Tensor::rand_uniform([batch, 1, 28, 28], 0.0, 1.0, &mut rng);

        team.set_parallelism(ParallelConfig::sequential());
        let reference = team.predict(&images);
        for threads in THREAD_COUNTS {
            team.set_parallelism(ParallelConfig::with_threads(threads));
            let out = team.predict(&images);
            prop_assert_eq!(out.len(), reference.len());
            for (a, b) in reference.iter().zip(&out) {
                prop_assert_eq!(a.label, b.label);
                prop_assert_eq!(a.expert, b.expert);
                prop_assert_eq!(a.entropy.to_bits(), b.entropy.to_bits());
            }
        }
    }
}

/// The NaN-propagation contract of the matmul sparsity skip, pinned
/// outside proptest so the exact adversarial case is always exercised:
/// a zero in the left operand multiplying a NaN/∞ on the right must
/// poison the accumulator, at every thread count.
#[test]
fn zero_times_nan_poisons_output_at_every_thread_count() {
    let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], [2, 2]).expect("volume");
    let b = Tensor::from_vec(vec![f32::NAN, 1.0, f32::INFINITY, 3.0], [2, 2]).expect("volume");
    for threads in [1, 2, 3, 4] {
        let c = a
            .try_matmul_with(&b, ParallelConfig::with_threads(threads))
            .expect("shapes agree");
        assert!(c.at(&[0, 0]).is_nan(), "0*NaN + 0*inf must be NaN");
        assert_eq!(c.at(&[0, 1]), 0.0, "0*1 + 0*3 stays an ordinary zero");
        assert!(c.at(&[1, 0]).is_nan(), "1*NaN + 2*inf must be NaN");
        assert_eq!(c.at(&[1, 1]), 7.0, "finite column is unaffected");
    }
}
