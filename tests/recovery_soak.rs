//! Recovery soak: a 4-node cluster under seeded chaos where one worker is
//! *permanently* black-holed mid-session (it walks out of WiFi range and
//! never returns). The failure detector must quarantine it, the recovery
//! subsystem must re-place its expert onto a surviving node with certified
//! spare memory, and every later round must answer with the *full* team —
//! the surviving host serves both its own expert and the orphan, so
//! arg-min entropy selection sees exactly what it saw before the failure.
//!
//! All faults are drawn from per-node seeded PRNGs and every recovery
//! deadline runs on a [`ManualClock`], so the whole session — including
//! the migration — replays byte-for-byte from the session seed.

use std::sync::Arc;
use std::time::Duration;
use teamnet_core::health::InferenceReport;
use teamnet_core::runtime::{
    serve_worker, serve_worker_with_config, shutdown_workers, InferenceSession, MasterConfig,
    WorkerConfig,
};
use teamnet_core::{
    build_expert, FailureDetectorConfig, HostBudget, RecoveryConfig, RecoveryManager,
};
use teamnet_net::{ChannelTransport, ChaosConfig, ChaosTransport, ManualClock};
use teamnet_nn::{state_vec, ModelSpec, Sequential};
use teamnet_tensor::Tensor;

const ROUNDS: usize = 14;
/// Worker 1 goes dark for good before this round's broadcast.
const BLACKHOLE_AT: usize = 5;
/// `quarantine_after = 2` misses → quarantined (and re-placed by the same
/// round's recovery pass) at the end of round `BLACKHOLE_AT + 1`; from
/// this round on, coverage must be full again.
const RECOVERED_FROM: usize = BLACKHOLE_AT + 2;

/// One knob replays the whole soak, failure schedule and all.
const SESSION_SEED: u64 = 0x7EA4_0001;

fn expert(seed: u64) -> Sequential {
    build_expert(&ModelSpec::mlp(2, 16), seed)
}

fn chaos(node_seed: u64) -> ChaosConfig {
    // No reorder-delays: with drops, corruption and duplicates the retry
    // and staleness paths are all exercised while outcomes stay purely
    // message-driven (a live in-process reply always beats the generous
    // deadlines, so timing never decides anything).
    ChaosConfig {
        seed: SESSION_SEED ^ node_seed,
        drop_prob: 0.05,
        delay_prob: 0.0,
        corrupt_prob: 0.03,
        duplicate_prob: 0.08,
        max_delay_msgs: 2,
    }
}

fn recovery_manager() -> RecoveryManager {
    let mut mgr = RecoveryManager::new(RecoveryConfig {
        chunk_bytes: 16 * 1024,
        ack_timeout: Duration::from_millis(400),
        transfer_timeout: Duration::from_secs(30),
        clock: Arc::new(ManualClock::new()),
        ..RecoveryConfig::default()
    });
    for e in 1..4usize {
        let mut model = expert(e as u64);
        let state = state_vec(&mut model);
        mgr.register_expert(e, e, ModelSpec::mlp(2, 16), &state, 60_000);
        mgr.register_budget(e, HostBudget::new(1 << 30, 1 << 20));
    }
    mgr
}

/// Runs the full black-hole scenario and returns every round's report
/// plus a byte-comparable transcript (round-free summaries + the final
/// recovery counters).
fn run_soak() -> (Vec<InferenceReport>, String) {
    let mut mesh = ChannelTransport::mesh(4);
    let worker3 = ChaosTransport::with_config(mesh.pop().unwrap(), chaos(0xE3));
    let worker2 = ChaosTransport::with_config(mesh.pop().unwrap(), chaos(0xE2));
    let worker1 = ChaosTransport::with_config(mesh.pop().unwrap(), chaos(0xE1));
    let master = ChaosTransport::with_config(mesh.pop().unwrap(), chaos(0xE0));

    let config = MasterConfig {
        worker_timeout: Duration::from_millis(800),
        require_all_workers: false,
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 2,
            probe_interval: 3,
        },
        ..MasterConfig::default()
    };

    let mut reports = Vec::new();
    let mut transcript = String::new();
    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            let mut e = expert(1);
            serve_worker(&worker1, 0, &mut e).unwrap();
        });
        for (node, seed) in [(&worker2, 2u64), (&worker3, 3u64)] {
            scope.spawn(move |_| {
                let mut e = expert(seed);
                serve_worker_with_config(
                    node,
                    0,
                    &mut e,
                    WorkerConfig {
                        budget: HostBudget::new(1 << 30, 1 << 20),
                        ..WorkerConfig::default()
                    },
                )
                .unwrap();
            });
        }

        let mut session = InferenceSession::new(&master, config);
        session.set_recovery(recovery_manager());
        let mut master_expert = expert(0);
        for round in 0..ROUNDS {
            if round == BLACKHOLE_AT {
                // Out of range in both directions, permanently.
                master.blackhole(1);
                worker1.blackhole(0);
            }
            let images = Tensor::full([2, 1, 28, 28], (round % 7) as f32 * 0.1);
            let report = session
                .infer(&master, &mut master_expert, &images)
                .unwrap_or_else(|e| panic!("round {round} failed: {e}"));
            transcript.push_str(&report.summary());
            transcript.push('\n');
            reports.push(report);
        }
        let recovery = session.recovery().unwrap();
        transcript.push_str(&format!(
            "final: migrations={} backtracks={} handbacks={}\n",
            recovery.migrations(),
            recovery.backtracks(),
            recovery.handbacks()
        ));

        // Shutdown travels the fault-free inner path so it reaches even
        // the black-holed worker.
        shutdown_workers(master.inner()).unwrap();
    })
    .unwrap();
    (reports, transcript)
}

#[test]
fn blackholed_workers_expert_is_replaced_and_coverage_restored() {
    let (reports, _) = run_soak();
    assert_eq!(reports.len(), ROUNDS);

    // Before the failure, every expert lives at home.
    for report in &reports[..BLACKHOLE_AT] {
        assert_eq!(report.expert_hosts[&1], 1, "{report:?}");
    }

    // After the grace window the orphan is re-placed on a survivor, for
    // good (the home never comes back), and the full team answers: every
    // round's predictions are exactly what an in-process 4-expert team
    // computes, whenever all surviving nodes got their results through.
    let mut local_team = teamnet_core::TeamNet::from_experts(
        ModelSpec::mlp(2, 16),
        vec![expert(0), expert(1), expert(2), expert(3)],
    );
    let mut full_rounds = 0usize;
    for (round, report) in reports.iter().enumerate().skip(RECOVERED_FROM) {
        let host = report.expert_hosts[&1];
        assert_ne!(host, 1, "round {round}: orphan still on the dead node");
        assert!(
            report.peers[&host].hosted_experts.contains(&1),
            "round {round}: {report:?}"
        );
        let responsive = report.responsive_peers();
        if !responsive.contains(&host) || !responsive.contains(&2) || !responsive.contains(&3) {
            continue; // a chaos-dropped reply legitimately degrades a round
        }
        let images = Tensor::full([2, 1, 28, 28], (round % 7) as f32 * 0.1);
        let expected = local_team.predict(&images);
        assert_eq!(report.predictions.len(), expected.len());
        for (g, e) in report.predictions.iter().zip(&expected) {
            assert_eq!(g.label, e.label, "round {round}");
            assert_eq!(g.expert, e.expert, "round {round}");
            assert!((g.entropy - e.entropy).abs() < 1e-5, "round {round}");
        }
        full_rounds += 1;
    }
    assert!(
        full_rounds >= (ROUNDS - RECOVERED_FROM) / 2,
        "only {full_rounds} fully-covered rounds after recovery"
    );
    let last = reports.last().unwrap();
    assert!(last.migrations >= 1, "{last:?}");
}

/// The replayability claim for recovery: two soaks from the same session
/// seed — including quarantine, candidate ranking, the chunked transfer
/// with its retries, and the re-homed gather — must report byte-identical
/// transcripts.
#[test]
fn identical_seeds_replay_the_migration_byte_for_byte() {
    let (_, first) = run_soak();
    let (_, second) = run_soak();
    assert!(first.contains("recovery: migrations=1"), "{first}");
    assert!(first.contains("final:"), "{first}");
    assert_eq!(first, second, "seeded recovery soak diverged between runs");
}
