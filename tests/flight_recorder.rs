//! The dump-on-failure flight recorder, end to end: a worker that never
//! answers drives the failure detector to quarantine, and the runtime
//! auto-dumps the fixed-capacity ring — whose **last line** must be the
//! `flight.quarantine` mark naming the triggering peer (DESIGN.md §17).

use std::sync::Arc;
use std::time::Duration;
use teamnet_core::runtime::{InferenceSession, MasterConfig};
use teamnet_core::{build_expert, FailureDetectorConfig};
use teamnet_net::{ChannelTransport, SystemClock};
use teamnet_nn::ModelSpec;
use teamnet_obs::{NullSink, Obs};
use teamnet_tensor::Tensor;

#[test]
fn quarantine_transition_dumps_ring_ending_with_the_trigger() {
    let dir = std::path::Path::new("target/test-flight/quarantine");
    let _ = std::fs::remove_dir_all(dir);

    // 2-node cluster; worker 1 simply never runs, so every gather leg
    // records a miss until the detector quarantines it.
    let mesh = ChannelTransport::mesh(2);
    let master = &mesh[0];

    let obs = Obs::with_flight_recorder(Arc::new(SystemClock), Arc::new(NullSink), 64, dir);
    let config = MasterConfig {
        worker_timeout: Duration::from_millis(20),
        require_all_workers: false,
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 2,
            probe_interval: 1000,
        },
        obs: obs.clone(),
        trace_seed: 7,
        ..MasterConfig::default()
    };

    let mut session = InferenceSession::new(master, config);
    let mut expert = build_expert(&ModelSpec::mlp(2, 16), 0);
    let images = Tensor::full([1, 1, 28, 28], 0.5);
    for _ in 0..3 {
        session.infer(master, &mut expert, &images).unwrap();
    }

    let recorder = obs.flight.as_ref().expect("recorder armed");
    assert_eq!(recorder.dump_count(), 1, "exactly one quarantine dump");
    let dump = dir.join("flight-0.jsonl");
    let text = std::fs::read_to_string(&dump).expect("dump written");
    let last = text.lines().last().expect("non-empty dump");
    assert!(
        last.contains("\"name\":\"flight.quarantine\""),
        "dump must end with the triggering transition, got: {last}"
    );
    assert!(last.contains("\"peer\":1"), "{last}");
    // The ring held the session history leading up to the trigger.
    assert!(text.contains("\"name\":\"round\""), "{text}");
}
