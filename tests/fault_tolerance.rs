//! Fault-tolerance integration tests for the collaborative inference
//! protocol: stale-reply discarding, failure-detector quarantine and
//! readmission, over both in-process channels and real TCP.
//!
//! Everything here is deterministic: faults are seeded or explicit
//! (blackholes), and every ordering constraint is enforced by blocking
//! message receives — never by sleeping and hoping.

use std::time::Duration;
use teamnet_core::runtime::{
    encode_results, serve_worker, InferenceSession, MasterConfig, TAG_INPUT, TAG_RESULT,
};
use teamnet_core::{build_expert, ContactPlan, FailureDetectorConfig, PeerHealth};
use teamnet_net::{
    ChannelTransport, ChaosTransport, Envelope, ManualClock, PayloadKind, TcpTransport, Transport,
};
use teamnet_nn::{ModelSpec, Sequential};
use teamnet_tensor::Tensor;

fn expert(seed: u64) -> Sequential {
    build_expert(&ModelSpec::mlp(2, 16), seed)
}

/// A reply from round N that arrives during round N+1 must be discarded,
/// not scored. The fake worker here withholds its round-1 reply, then —
/// once round 2's input proves the master has moved on — sends a poisoned
/// round-1 result (entropy 0.0: it would win every row if consumed)
/// followed by an honest round-2 result.
#[test]
fn stale_reply_from_previous_round_is_never_consumed() {
    let nodes = ChannelTransport::mesh(2);
    let images = Tensor::full([2, 1, 28, 28], 0.4);
    let poisoned_label = 9usize;

    crossbeam::thread::scope(|scope| {
        let worker_node = &nodes[1];
        scope.spawn(move |_| {
            // Round 1: take the input, never answer (the master times out).
            let bytes = worker_node
                .recv(0, TAG_INPUT, Duration::from_secs(10))
                .unwrap();
            let round1 = Envelope::decode(&bytes).unwrap().round;

            // Round 2's input arriving proves the master gave up on round 1.
            let bytes = worker_node
                .recv(0, TAG_INPUT, Duration::from_secs(10))
                .unwrap();
            let round2 = Envelope::decode(&bytes).unwrap().round;
            assert_ne!(round1, round2);

            // The late round-1 reply lands first, then the honest one.
            let poisoned = encode_results(&[(poisoned_label, 0.0), (poisoned_label, 0.0)]);
            let stale = Envelope::new(round1, PayloadKind::Result, poisoned);
            worker_node.send(0, TAG_RESULT, &stale.encode()).unwrap();
            let honest = encode_results(&[(3, 10.0), (3, 10.0)]);
            let fresh = Envelope::new(round2, PayloadKind::Result, honest);
            worker_node.send(0, TAG_RESULT, &fresh.encode()).unwrap();
        });

        let config = MasterConfig {
            worker_timeout: Duration::from_millis(200),
            require_all_workers: false,
            ..MasterConfig::default()
        };
        let mut session = InferenceSession::new(&nodes[0], config);
        let mut master_expert = expert(0);

        // Round 1: the worker stays silent, degraded mode answers locally.
        let r1 = session
            .infer(&nodes[0], &mut master_expert, &images)
            .unwrap();
        assert!(!r1.peers[&1].responded);
        assert!(r1.predictions.iter().all(|p| p.expert == 0));

        // Round 2: the stale reply arrives first and must be discarded;
        // the honest reply (entropy 10.0, losing) must be the one scored.
        let r2 = session
            .infer(&nodes[0], &mut master_expert, &images)
            .unwrap();
        assert_eq!(r2.stale_discarded, 1, "{r2:?}");
        assert!(r2.peers[&1].responded);
        for p in &r2.predictions {
            assert_eq!(p.expert, 0, "stale reply was consumed: {p:?}");
            assert_ne!(p.label, poisoned_label);
            assert_ne!(p.entropy, 0.0);
        }
    })
    .unwrap();
}

/// Detector policy used by the quarantine tests: quarantine after 2
/// consecutive misses, probe every 3rd round thereafter.
fn quarantine_config() -> MasterConfig {
    MasterConfig {
        worker_timeout: Duration::from_millis(100),
        require_all_workers: false,
        // The worker's entropy is scaled way down, the master's way up:
        // whenever the worker answers, it wins every row.
        calibration: Some(vec![1e3, 1e-3]),
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 2,
            probe_interval: 3,
        },
        ..MasterConfig::default()
    }
}

/// Drives a full outage/recovery cycle against a live `serve_worker` on
/// node 1, with the master's outbound traffic chaos-wrapped so the worker
/// can be black-holed and healed on demand.
fn quarantine_readmission_cycle<T: Transport>(master_node: T, worker_node: &T) {
    let chaos = ChaosTransport::new(master_node);
    let images = Tensor::full([2, 1, 28, 28], 0.6);

    crossbeam::thread::scope(|scope| {
        scope.spawn(move |_| {
            let mut worker_expert = expert(1);
            serve_worker(worker_node, 0, &mut worker_expert).unwrap();
        });

        let mut session = InferenceSession::new(&chaos, quarantine_config());
        let mut master_expert = expert(0);
        let mut round = |session: &mut InferenceSession| {
            session.infer(&chaos, &mut master_expert, &images).unwrap()
        };

        // Healthy rounds: the worker wins every row.
        for _ in 0..2 {
            let r = round(&mut session);
            assert_eq!(r.peers[&1].health, PeerHealth::Live);
            assert!(r.predictions.iter().all(|p| p.expert == 1));
        }

        // Outage: two missed rounds walk the worker into quarantine.
        chaos.blackhole(1);
        let r = round(&mut session);
        assert_eq!(r.peers[&1].health, PeerHealth::Suspect);
        let r = round(&mut session);
        assert_eq!(r.peers[&1].health, PeerHealth::Quarantined);

        // Quarantined: skipped outright (no contact, no gather wait).
        for _ in 0..2 {
            let r = round(&mut session);
            assert!(!r.peers[&1].contacted, "{r:?}");
            assert_eq!(r.peers[&1].health, PeerHealth::Quarantined);
            assert!(r.predictions.iter().all(|p| p.expert == 0));
        }

        // Probe due on the 3rd skipped round — still black-holed, so the
        // probe misses and the quarantine clock restarts.
        let r = round(&mut session);
        assert!(r.peers[&1].probed, "{r:?}");
        assert!(!r.peers[&1].responded);
        assert_eq!(r.peers[&1].health, PeerHealth::Quarantined);

        // Recovery: heal the link, wait out the probe interval, and the
        // next probe readmits the worker.
        chaos.heal(1);
        for _ in 0..2 {
            let r = round(&mut session);
            assert!(!r.peers[&1].contacted);
        }
        let r = round(&mut session);
        assert!(r.peers[&1].probed, "{r:?}");
        assert!(r.peers[&1].responded);
        assert_eq!(r.peers[&1].health, PeerHealth::Live);
        // A probe round proves liveness but carries no rows.
        assert!(r.predictions.iter().all(|p| p.expert == 0));

        // Readmitted: full contact, worker wins rows again.
        let r = round(&mut session);
        assert!(!r.peers[&1].probed);
        assert!(r.peers[&1].responded);
        assert!(r.predictions.iter().all(|p| p.expert == 1), "{r:?}");

        assert_eq!(session.detector().health(1), PeerHealth::Live);
        teamnet_core::runtime::shutdown_workers(chaos.inner()).unwrap();
    })
    .unwrap();
}

#[test]
fn quarantine_and_readmission_over_channels() {
    let mut nodes = ChannelTransport::mesh(2);
    let worker = nodes.pop().unwrap();
    let master = nodes.pop().unwrap();
    quarantine_readmission_cycle(master, &worker);
}

#[test]
fn quarantine_and_readmission_over_tcp() {
    let mut nodes = TcpTransport::mesh_localhost(2).unwrap();
    let worker = nodes.pop().unwrap();
    let master = nodes.pop().unwrap();
    quarantine_readmission_cycle(master, &worker);
}

/// The failure detector's contact plan is what keeps a dead peer from
/// taxing every round: once quarantined, `plan` must return `Skip` (not
/// `Full`) so the master never waits on the timeout again.
///
/// Time is observed through an injected [`ManualClock`] instead of racing
/// a wall-clock budget: every deadline the session computes comes from the
/// manual clock, which never moves, so `sleeps()` counts exactly the
/// timed waits the protocol *asked for* — immune to scheduler stalls.
#[test]
fn quarantined_rounds_skip_the_gather_wait() {
    let clock = std::sync::Arc::new(ManualClock::new());
    let nodes = ChannelTransport::mesh(2);
    let config = MasterConfig {
        worker_timeout: Duration::from_millis(80),
        require_all_workers: false,
        failure: FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 1,
            probe_interval: 100,
        },
        clock: clock.clone(),
        ..MasterConfig::default()
    };
    let mut session = InferenceSession::new(&nodes[0], config);
    let mut master_expert = expert(0);
    let images = Tensor::full([1, 1, 28, 28], 0.2);

    // One miss quarantines the (nonexistent) worker.
    session
        .infer(&nodes[0], &mut master_expert, &images)
        .unwrap();
    assert_eq!(session.detector().health(1), PeerHealth::Quarantined);

    // Subsequent rounds skip the worker entirely: no contact, no retry
    // backoff sleeps, and no clock motion the session itself initiated.
    let sleeps_before = clock.sleeps();
    for _ in 0..5 {
        let r = session
            .infer(&nodes[0], &mut master_expert, &images)
            .unwrap();
        assert!(!r.peers[&1].contacted, "{r:?}");
        assert!(!r.peers[&1].probed, "{r:?}");
    }
    assert_eq!(
        clock.sleeps(),
        sleeps_before,
        "quarantined rounds performed backoff sleeps"
    );
    assert_eq!(clock.elapsed(), Duration::ZERO);
}

/// `ContactPlan` is part of the public API surface; make sure the plan for
/// an unknown peer is conservative.
#[test]
fn plan_for_unknown_peer_is_skip() {
    let mut detector = teamnet_core::FailureDetector::new(1, FailureDetectorConfig::default());
    assert_eq!(detector.plan(5), ContactPlan::Skip);
}
