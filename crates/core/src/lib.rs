//! # teamnet-core
//!
//! The primary contribution of *TeamNet: A Collaborative Inference
//! Framework on the Edge* (Fang, Jin & Zheng, ICDCS 2019), reproduced in
//! Rust: training K small expert networks that competitively partition a
//! dataset, and running them collaboratively on connected edge devices
//! with least-uncertainty selection.
//!
//! The module map follows the paper:
//!
//! * [`entropy`](fn@crate::entropy::entropy) — predictive entropy, the
//!   uncertainty measure (Section IV-A);
//! * [`DynamicGate`] — Algorithm 2: the data-assignment gate with soft
//!   arg-min, meta-estimated temperature, differentiable Kronecker delta
//!   and proportional bias correction;
//! * [`ExpertEnsemble`] — Algorithm 3: per-expert cross-entropy SGD on
//!   gate-assigned sub-batches;
//! * [`Trainer`] — Algorithm 1: the epoch/batch loop, recording the
//!   assignment-share trajectories of Figures 6 and 8;
//! * [`TeamNet`] — Section V: arg-min-entropy collaborative inference and
//!   the specialization analysis of Figure 9;
//! * [`runtime`] — Figure 1(d): the master/worker broadcast–compute–gather
//!   protocol over in-process channels or real TCP, hardened with
//!   round-stamped envelopes and bounded retries;
//! * [`health`] — the heartbeat failure detector that quarantines
//!   unresponsive peers and probes them for readmission;
//! * [`recover`] — failure-backtracking expert re-placement: quarantined
//!   nodes' experts migrate to surviving hosts with certified spare
//!   memory and are handed back on readmission;
//! * [`convergence`] — Appendix A: the γ → 1/K contraction theory.
//!
//! # Examples
//!
//! ```no_run
//! use rand::{rngs::StdRng, SeedableRng};
//! use teamnet_core::{TrainConfig, Trainer};
//! use teamnet_data::synth_digits;
//! use teamnet_nn::ModelSpec;
//!
//! // Train two 4-layer experts on digits, then collaborate at inference.
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = synth_digits(2_000, &mut rng);
//! let (train, test) = data.split(1_600);
//! let mut trainer = Trainer::new(ModelSpec::mlp(4, 64), 2, TrainConfig::default());
//! trainer.train(&train);
//! let mut team = trainer.into_team();
//! println!("accuracy: {:.3}", team.evaluate(&test).accuracy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
mod entropy;
mod expert;
pub mod fsm;
mod gate;
pub mod health;
pub mod persist;
pub mod recover;
pub mod runtime;
mod team;
mod train;

pub use entropy::{
    entropy, entropy_matrix, entropy_rows, normalized_deviation, EntropyError, PROB_SUM_TOLERANCE,
};
pub use expert::{build_expert, expert_rng, ExpertEnsemble};
pub use gate::{
    assignment_shares, weighted_argmin, DynamicGate, GateConfig, GateConfigError, GateDecision,
};
pub use health::{
    ContactPlan, FailureDetector, FailureDetectorConfig, InferenceReport, PeerHealth, PeerReport,
};
pub use persist::{load_expert, load_team, save_team, PersistError};
pub use recover::{
    AckStatus, ChunkOutcome, HostBudget, LoadAckMsg, LoadChunkMsg, LoadExpertMsg, PartialLoad,
    RecoveryConfig, RecoveryManager, TransferManifest,
};
pub use team::{TeamEvaluation, TeamNet, TeamPrediction};
pub use train::{IterationRecord, TrainConfig, Trainer, TrainingHistory};
