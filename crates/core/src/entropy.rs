//! Predictive entropy — TeamNet's uncertainty measure (Section IV-A).
//!
//! For a C-class predictive distribution p, the predictive entropy is
//! `H(ŷ|x,θ) = −Σ_c p_c log p_c`. An expert that "knows" an input emits a
//! peaked distribution (low entropy); an unfamiliar input yields a flat
//! one (entropy approaching `ln C`).

use teamnet_tensor::Tensor;

/// Entropy of one probability row (natural log).
///
/// Zero-probability entries contribute zero (the `p log p → 0` limit).
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn entropy(probs: &[f32]) -> f32 {
    assert!(!probs.is_empty(), "entropy of an empty distribution");
    probs
        .iter()
        .map(|&p| if p > 0.0 { -p * p.ln() } else { 0.0 })
        .sum()
}

/// Row-wise entropy of a `[n, classes]` probability matrix, as `[n]`.
///
/// # Panics
///
/// Panics if `probs` is not rank-2.
pub fn entropy_rows(probs: &Tensor) -> Tensor {
    assert_eq!(probs.rank(), 2, "entropy_rows() requires [n, classes]");
    (0..probs.dims()[0]).map(|r| entropy(probs.row(r))).collect()
}

/// Stacks per-expert entropy columns into the `[n, K]` matrix `H` that
/// Algorithms 1 and 2 consume: `H[x][i] = H(ŷ|x, θᵢ)`.
///
/// # Panics
///
/// Panics if `expert_probs` is empty or the experts' batch sizes disagree.
pub fn entropy_matrix(expert_probs: &[Tensor]) -> Tensor {
    assert!(!expert_probs.is_empty(), "need at least one expert");
    let n = expert_probs[0].dims()[0];
    let k = expert_probs.len();
    let mut out = Tensor::zeros([n, k]);
    for (i, probs) in expert_probs.iter().enumerate() {
        assert_eq!(probs.dims()[0], n, "expert {i} batch size mismatch");
        let h = entropy_rows(probs);
        for r in 0..n {
            out.set(&[r, i], h.data()[r]);
        }
    }
    out
}

/// The batch statistic Δ of Algorithm 2: the average over the batch of
/// `D(x)/E(x)`, where `E(x)` is the mean and `D(x)` the mean absolute
/// deviation of the K experts' entropies on x. Δ measures how much the
/// experts currently *disagree* in confidence — the lever arm available to
/// the gate.
///
/// Rows whose mean entropy is (numerically) zero contribute zero.
///
/// # Panics
///
/// Panics if `entropy` is not rank-2 or is empty.
pub fn normalized_deviation(entropy: &Tensor) -> f32 {
    assert_eq!(entropy.rank(), 2, "normalized_deviation() requires [n, K]");
    let (n, k) = (entropy.dims()[0], entropy.dims()[1]);
    assert!(n > 0, "empty batch");
    let mut total = 0.0f32;
    for r in 0..n {
        let row = entropy.row(r);
        let mean: f32 = row.iter().sum::<f32>() / k as f32;
        if mean <= 1e-12 {
            continue;
        }
        let dev: f32 = row.iter().map(|&h| (h - mean).abs()).sum::<f32>() / k as f32;
        total += dev / mean;
    }
    total / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_has_max_entropy() {
        let h = entropy(&[0.25; 4]);
        assert!((h - 4.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn deterministic_distribution_has_zero_entropy() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn peakier_is_lower() {
        let sharp = entropy(&[0.9, 0.05, 0.05]);
        let flat = entropy(&[0.4, 0.3, 0.3]);
        assert!(sharp < flat);
    }

    #[test]
    fn entropy_rows_matches_scalar() {
        let probs = Tensor::from_vec(vec![0.5, 0.5, 1.0, 0.0], [2, 2]).unwrap();
        let h = entropy_rows(&probs);
        assert!((h.data()[0] - 2.0f32.ln()).abs() < 1e-6);
        assert_eq!(h.data()[1], 0.0);
    }

    #[test]
    fn entropy_matrix_layout() {
        // Expert 0 is certain, expert 1 is uncertain, on both inputs.
        let e0 = Tensor::from_vec(vec![1.0, 0.0, 0.99, 0.01], [2, 2]).unwrap();
        let e1 = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], [2, 2]).unwrap();
        let h = entropy_matrix(&[e0, e1]);
        assert_eq!(h.dims(), &[2, 2]);
        for r in 0..2 {
            assert!(h.at(&[r, 0]) < h.at(&[r, 1]), "row {r}");
        }
        assert_eq!(h.argmin_rows(), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn entropy_matrix_rejects_ragged_experts() {
        let e0 = Tensor::zeros([2, 3]);
        let e1 = Tensor::zeros([1, 3]);
        entropy_matrix(&[e0, e1]);
    }

    #[test]
    fn deviation_zero_when_experts_agree() {
        let h = Tensor::from_vec(vec![1.0, 1.0, 0.5, 0.5], [2, 2]).unwrap();
        assert!(normalized_deviation(&h) < 1e-7);
    }

    #[test]
    fn deviation_grows_with_disagreement() {
        let mild = Tensor::from_vec(vec![1.0, 1.2], [1, 2]).unwrap();
        let wild = Tensor::from_vec(vec![0.1, 2.0], [1, 2]).unwrap();
        assert!(normalized_deviation(&wild) > normalized_deviation(&mild));
    }

    #[test]
    fn deviation_handles_zero_entropy_rows() {
        let h = Tensor::zeros([3, 2]);
        assert_eq!(normalized_deviation(&h), 0.0);
    }

    #[test]
    fn deviation_hand_computed() {
        // Row [1, 3]: mean 2, dev (1+1)/2 = 1, ratio 0.5.
        let h = Tensor::from_vec(vec![1.0, 3.0], [1, 2]).unwrap();
        assert!((normalized_deviation(&h) - 0.5).abs() < 1e-6);
    }
}
