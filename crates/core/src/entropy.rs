//! Predictive entropy — TeamNet's uncertainty measure (Section IV-A).
//!
//! For a C-class predictive distribution p, the predictive entropy is
//! `H(ŷ|x,θ) = −Σ_c p_c log p_c`. An expert that "knows" an input emits a
//! peaked distribution (low entropy); an unfamiliar input yields a flat
//! one (entropy approaching `ln C`).
//!
//! [`entropy`] validates its input: the gate's correctness depends on every
//! expert handing it a genuine probability distribution, so a NaN, negative
//! or non-normalized vector is rejected with a typed [`EntropyError`]
//! instead of silently propagating NaN into the arg-min selection.

use teamnet_tensor::Tensor;

/// How far a probability vector's sum may stray from 1 before
/// [`entropy`] rejects it as non-normalized.
pub const PROB_SUM_TOLERANCE: f32 = 1e-3;

/// Why a probability vector was rejected by [`entropy`].
#[derive(Debug, Clone, PartialEq)]
pub enum EntropyError {
    /// The distribution has no entries.
    Empty,
    /// An entry is NaN or infinite.
    NonFinite {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f32,
    },
    /// An entry is negative.
    Negative {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f32,
    },
    /// The entries do not sum to 1 within [`PROB_SUM_TOLERANCE`].
    NotNormalized {
        /// The actual sum of the entries.
        sum: f32,
    },
}

impl std::fmt::Display for EntropyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntropyError::Empty => write!(f, "entropy of an empty distribution"),
            EntropyError::NonFinite { index, value } => {
                write!(f, "probability {value} at index {index} is not finite")
            }
            EntropyError::Negative { index, value } => {
                write!(f, "probability {value} at index {index} is negative")
            }
            EntropyError::NotNormalized { sum } => {
                write!(f, "probabilities sum to {sum}, expected 1")
            }
        }
    }
}

impl std::error::Error for EntropyError {}

/// Entropy of one probability row (natural log).
///
/// Zero-probability entries contribute zero (the `p log p → 0` limit).
///
/// # Errors
///
/// Returns an [`EntropyError`] if the slice is empty, contains a
/// non-finite or negative entry, or does not sum to 1 within
/// [`PROB_SUM_TOLERANCE`] — never NaN.
pub fn entropy(probs: &[f32]) -> Result<f32, EntropyError> {
    if probs.is_empty() {
        return Err(EntropyError::Empty);
    }
    let mut sum = 0.0f32;
    let mut h = 0.0f32;
    for (index, &p) in probs.iter().enumerate() {
        if !p.is_finite() {
            return Err(EntropyError::NonFinite { index, value: p });
        }
        if p < 0.0 {
            return Err(EntropyError::Negative { index, value: p });
        }
        sum += p;
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    if (sum - 1.0).abs() > PROB_SUM_TOLERANCE {
        return Err(EntropyError::NotNormalized { sum });
    }
    Ok(h.max(0.0))
}

/// Row-wise entropy of a `[n, classes]` probability matrix, as `[n]`.
///
/// # Errors
///
/// Returns the first row's [`EntropyError`] if any row is not a valid
/// probability distribution.
///
/// # Panics
///
/// Panics if `probs` is not rank-2.
pub fn entropy_rows(probs: &Tensor) -> Result<Tensor, EntropyError> {
    assert_eq!(probs.rank(), 2, "entropy_rows() requires [n, classes]");
    let n = probs.dims().first().copied().unwrap_or(0);
    let values = (0..n)
        .map(|r| entropy(probs.row(r)))
        .collect::<Result<Vec<f32>, _>>()?;
    Ok(values.into_iter().collect())
}

/// Stacks per-expert entropy columns into the `[n, K]` matrix `H` that
/// Algorithms 1 and 2 consume: `H[x][i] = H(ŷ|x, θᵢ)`.
///
/// # Errors
///
/// Returns an [`EntropyError`] if any expert emits an invalid probability
/// row.
///
/// # Panics
///
/// Panics if `expert_probs` is empty or the experts' batch sizes disagree.
pub fn entropy_matrix(expert_probs: &[Tensor]) -> Result<Tensor, EntropyError> {
    assert!(!expert_probs.is_empty(), "need at least one expert");
    let n = expert_probs
        .first()
        .and_then(|p| p.dims().first())
        .copied()
        .unwrap_or(0);
    let k = expert_probs.len();
    let mut out = Tensor::zeros([n, k]);
    for (i, probs) in expert_probs.iter().enumerate() {
        let batch = probs.dims().first().copied().unwrap_or(0);
        assert_eq!(batch, n, "expert {i} batch size mismatch");
        let h = entropy_rows(probs)?;
        for (r, &v) in h.data().iter().enumerate() {
            out.set(&[r, i], v);
        }
    }
    Ok(out)
}

/// The batch statistic Δ of Algorithm 2: the average over the batch of
/// `D(x)/E(x)`, where `E(x)` is the mean and `D(x)` the mean absolute
/// deviation of the K experts' entropies on x. Δ measures how much the
/// experts currently *disagree* in confidence — the lever arm available to
/// the gate.
///
/// Rows whose mean entropy is (numerically) zero contribute zero.
///
/// # Panics
///
/// Panics if `entropy` is not rank-2 or is empty.
pub fn normalized_deviation(entropy: &Tensor) -> f32 {
    assert_eq!(entropy.rank(), 2, "normalized_deviation() requires [n, K]");
    let n = entropy.dims().first().copied().unwrap_or(0);
    let k = entropy.dims().get(1).copied().unwrap_or(0);
    assert!(n > 0, "empty batch");
    let mut total = 0.0f32;
    for r in 0..n {
        let row = entropy.row(r);
        let mean: f32 = row.iter().sum::<f32>() / k as f32;
        if mean <= 1e-12 {
            continue;
        }
        let dev: f32 = row.iter().map(|&h| (h - mean).abs()).sum::<f32>() / k as f32;
        total += dev / mean;
    }
    total / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_distribution_has_max_entropy() {
        let h = entropy(&[0.25; 4]).unwrap();
        assert!((h - 4.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn deterministic_distribution_has_zero_entropy() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn peakier_is_lower() {
        let sharp = entropy(&[0.9, 0.05, 0.05]).unwrap();
        let flat = entropy(&[0.4, 0.3, 0.3]).unwrap();
        assert!(sharp < flat);
    }

    #[test]
    fn empty_distribution_is_rejected() {
        assert_eq!(entropy(&[]), Err(EntropyError::Empty));
    }

    #[test]
    fn nan_and_infinity_are_rejected() {
        assert!(matches!(
            entropy(&[0.5, f32::NAN, 0.5]),
            Err(EntropyError::NonFinite { index: 1, .. })
        ));
        assert!(matches!(
            entropy(&[f32::INFINITY, 0.0]),
            Err(EntropyError::NonFinite { index: 0, .. })
        ));
    }

    #[test]
    fn negative_probability_is_rejected() {
        assert!(matches!(
            entropy(&[1.2, -0.2]),
            Err(EntropyError::Negative { index: 1, .. })
        ));
    }

    #[test]
    fn unnormalized_sum_is_rejected() {
        assert!(matches!(
            entropy(&[0.5, 0.1]),
            Err(EntropyError::NotNormalized { .. })
        ));
        assert!(matches!(
            entropy(&[0.9, 0.9]),
            Err(EntropyError::NotNormalized { .. })
        ));
    }

    #[test]
    fn errors_display_their_cause() {
        let msg = entropy(&[2.0]).unwrap_err().to_string();
        assert!(msg.contains("sum to 2"), "{msg}");
    }

    #[test]
    fn entropy_rows_matches_scalar() {
        let probs = Tensor::from_vec(vec![0.5, 0.5, 1.0, 0.0], [2, 2]).unwrap();
        let h = entropy_rows(&probs).unwrap();
        assert!((h.data()[0] - 2.0f32.ln()).abs() < 1e-6);
        assert_eq!(h.data()[1], 0.0);
    }

    #[test]
    fn entropy_rows_surfaces_bad_rows() {
        let probs = Tensor::from_vec(vec![0.5, 0.5, 0.9, 0.9], [2, 2]).unwrap();
        assert!(matches!(
            entropy_rows(&probs),
            Err(EntropyError::NotNormalized { .. })
        ));
    }

    #[test]
    fn entropy_matrix_layout() {
        // Expert 0 is certain, expert 1 is uncertain, on both inputs.
        let e0 = Tensor::from_vec(vec![1.0, 0.0, 0.99, 0.01], [2, 2]).unwrap();
        let e1 = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], [2, 2]).unwrap();
        let h = entropy_matrix(&[e0, e1]).unwrap();
        assert_eq!(h.dims(), &[2, 2]);
        for r in 0..2 {
            assert!(h.at(&[r, 0]) < h.at(&[r, 1]), "row {r}");
        }
        assert_eq!(h.argmin_rows(), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn entropy_matrix_rejects_ragged_experts() {
        let e0 = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0], [2, 3]).unwrap();
        let e1 = Tensor::from_vec(vec![1.0, 0.0, 0.0], [1, 3]).unwrap();
        let _ = entropy_matrix(&[e0, e1]);
    }

    #[test]
    fn deviation_zero_when_experts_agree() {
        let h = Tensor::from_vec(vec![1.0, 1.0, 0.5, 0.5], [2, 2]).unwrap();
        assert!(normalized_deviation(&h) < 1e-7);
    }

    #[test]
    fn deviation_grows_with_disagreement() {
        let mild = Tensor::from_vec(vec![1.0, 1.2], [1, 2]).unwrap();
        let wild = Tensor::from_vec(vec![0.1, 2.0], [1, 2]).unwrap();
        assert!(normalized_deviation(&wild) > normalized_deviation(&mild));
    }

    #[test]
    fn deviation_handles_zero_entropy_rows() {
        let h = Tensor::zeros([3, 2]);
        assert_eq!(normalized_deviation(&h), 0.0);
    }

    #[test]
    fn deviation_hand_computed() {
        // Row [1, 3]: mean 2, dev (1+1)/2 = 1, ratio 0.5.
        let h = Tensor::from_vec(vec![1.0, 3.0], [1, 2]).unwrap();
        assert!((normalized_deviation(&h) - 0.5).abs() < 1e-6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Any softmax-normalized vector is accepted with a finite,
        /// non-negative entropy bounded by ln(C).
        #[test]
        fn normalized_inputs_give_finite_entropy(
            logits in prop::collection::vec(-8.0f32..8.0, 1..12)
        ) {
            let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
            let z: f32 = exps.iter().sum();
            let probs: Vec<f32> = exps.iter().map(|&e| e / z).collect();
            let h = entropy(&probs).expect("softmax output must be accepted");
            prop_assert!(h.is_finite() && h >= 0.0, "entropy {h} of {probs:?}");
            prop_assert!(h <= (probs.len() as f32).ln() + 1e-4, "{h} exceeds ln C");
        }

        /// Any vector whose sum is visibly off 1 is rejected with a typed
        /// error — never a NaN result.
        #[test]
        fn unnormalized_inputs_are_rejected_not_nan(
            raw in prop::collection::vec(0.0f32..2.0, 1..12),
            scale in 1.5f32..20.0
        ) {
            let sum: f32 = raw.iter().sum();
            // Scale so the sum lands well outside the tolerance band.
            let bad: Vec<f32> = if sum > 1e-3 {
                raw.iter().map(|&p| p * scale / sum).collect()
            } else {
                vec![scale; raw.len()]
            };
            match entropy(&bad) {
                Err(EntropyError::NotNormalized { sum }) => {
                    prop_assert!(!sum.is_nan(), "error must carry the real sum")
                }
                other => prop_assert!(false, "expected NotNormalized, got {other:?}"),
            }
        }

        /// NaN anywhere in the vector is reported as NonFinite, with the
        /// offending index, rather than poisoning the result.
        #[test]
        fn nan_entries_are_pinpointed(
            probs in prop::collection::vec(0.0f32..1.0, 1..8),
            at in 0usize..8
        ) {
            let mut poisoned = probs.clone();
            let at = at % poisoned.len();
            poisoned[at] = f32::NAN;
            match entropy(&poisoned) {
                Err(EntropyError::NonFinite { index, .. }) => prop_assert_eq!(index, at),
                other => prop_assert!(false, "expected NonFinite, got {other:?}"),
            }
        }
    }
}
