//! Saving and loading trained teams.
//!
//! A team file is a small JSON header (architecture spec, expert count,
//! format version) followed by each expert's parameters in the workspace
//! wire format — the same bytes a network deployment ships, so a file
//! written here can be streamed to an edge node unchanged.

use crate::team::TeamNet;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use teamnet_net::codec::{decode_f32s, encode_f32s};
use teamnet_nn::ModelSpec;
use teamnet_tensor::Tensor;

/// Magic bytes opening a team file.
const MAGIC: &[u8; 8] = b"TEAMNET1";

/// Error reading or writing a team file.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid team file.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o failure: {e}"),
            PersistError::Format(msg) => write!(f, "malformed team file: {msg}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Header {
    spec: ModelSpec,
    experts: usize,
    tensors_per_expert: usize,
    #[serde(default)]
    calibration: Vec<f32>,
}

fn write_chunk(w: &mut impl Write, bytes: &[u8]) -> Result<(), PersistError> {
    w.write_all(&(bytes.len() as u64).to_le_bytes())?;
    w.write_all(bytes)?;
    Ok(())
}

fn read_chunk(r: &mut impl Read) -> Result<Vec<u8>, PersistError> {
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes) as usize;
    if len > 1 << 32 {
        return Err(PersistError::Format(format!(
            "implausible chunk length {len}"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Writes a trained team to `path`.
///
/// # Errors
///
/// Returns I/O failures.
pub fn save_team(team: &mut TeamNet, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let mut w = BufWriter::new(File::create(path)?);
    let states = team.expert_states();
    let header = Header {
        spec: team.spec().clone(),
        experts: states.len(),
        tensors_per_expert: states.first().map_or(0, Vec::len),
        calibration: team.calibration().to_vec(),
    };
    w.write_all(MAGIC)?;
    let header_json = serde_json::to_vec(&header)
        .map_err(|e| PersistError::Format(format!("header serialization: {e}")))?;
    write_chunk(&mut w, &header_json)?;
    for state in &states {
        for tensor in state {
            write_chunk(&mut w, &encode_f32s(tensor.dims(), tensor.data()))?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads a team previously written by [`save_team`].
///
/// # Errors
///
/// Returns [`PersistError::Format`] for wrong magic, truncated chunks or
/// state/spec mismatches, and I/O failures otherwise.
pub fn load_team(path: impl AsRef<Path>) -> Result<TeamNet, PersistError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format("bad magic bytes".to_string()));
    }
    let header: Header = serde_json::from_slice(&read_chunk(&mut r)?)
        .map_err(|e| PersistError::Format(format!("header: {e}")))?;
    if header.experts == 0 {
        return Err(PersistError::Format(
            "team file holds no experts".to_string(),
        ));
    }
    let mut states = Vec::with_capacity(header.experts);
    for _ in 0..header.experts {
        let mut state = Vec::with_capacity(header.tensors_per_expert);
        for _ in 0..header.tensors_per_expert {
            let bytes = read_chunk(&mut r)?;
            let (dims, data) =
                decode_f32s(&bytes).map_err(|e| PersistError::Format(e.to_string()))?;
            let tensor =
                Tensor::from_vec(data, dims).map_err(|e| PersistError::Format(e.to_string()))?;
            state.push(tensor);
        }
        states.push(state);
    }
    let mut team = TeamNet::from_states(header.spec, &states);
    if header.calibration.len() == team.k() {
        team.set_calibration(header.calibration);
    }
    Ok(team)
}

/// Extracts a single expert's `(spec, state)` from a team file — what a
/// worker node loads when each device holds only its own expert.
///
/// # Errors
///
/// Same as [`load_team`], plus a format error for an out-of-range index.
pub fn load_expert(
    path: impl AsRef<Path>,
    expert: usize,
) -> Result<(ModelSpec, Vec<Tensor>), PersistError> {
    let mut team = load_team(&path)?;
    if expert >= team.k() {
        return Err(PersistError::Format(format!(
            "expert {expert} out of range for a {}-expert team",
            team.k()
        )));
    }
    let state = teamnet_nn::state_vec(team.expert_mut(expert));
    Ok((team.spec().clone(), state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::build_expert;
    use teamnet_tensor::Tensor as T;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("teamnet-persist-{}-{name}", std::process::id()))
    }

    fn small_team() -> TeamNet {
        let spec = ModelSpec::mlp(2, 12);
        let experts = (0..3).map(|i| build_expert(&spec, i)).collect();
        TeamNet::from_experts(spec, experts)
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let path = tmp("roundtrip.team");
        let mut team = small_team();
        let x = T::rand_uniform(
            [2, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0),
        );
        team.set_calibration(vec![1.2, 0.9, 0.9]);
        let before = team.predict(&x);
        save_team(&mut team, &path).unwrap();
        let mut loaded = load_team(&path).unwrap();
        assert_eq!(loaded.k(), 3);
        assert_eq!(loaded.calibration(), &[1.2, 0.9, 0.9]);
        assert_eq!(loaded.predict(&x), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_expert_extracts_one() {
        let path = tmp("expert.team");
        let mut team = small_team();
        save_team(&mut team, &path).unwrap();
        let (spec, state) = load_expert(&path, 1).unwrap();
        assert_eq!(&spec, team.spec());
        let mut rebuilt = build_expert(&spec, 99);
        teamnet_nn::load_state(&mut rebuilt, &state);
        let x = T::ones([1, 1, 28, 28]);
        use teamnet_nn::{Layer, Mode};
        let a = rebuilt.forward(&x, Mode::Eval);
        let b = team.expert_mut(1).forward(&x, Mode::Eval);
        assert_eq!(a, b);
        assert!(load_expert(&path, 9).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let path = tmp("bad.team");
        std::fs::write(&path, b"NOTATEAM").unwrap();
        assert!(matches!(load_team(&path), Err(PersistError::Format(_))));

        let mut team = small_team();
        save_team(&mut team, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(load_team(&path), Err(PersistError::Io(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_team("/definitely/not/here.team"),
            Err(PersistError::Io(_))
        ));
    }
}
