//! The deployed team and its arg-min-entropy inference (Section V).
//!
//! Once trained, inference is deliberately simple: every expert predicts,
//! and the prediction with the least predictive entropy wins. The paper
//! argues (and demonstrates against SG-MoE) that this trivially cheap gate
//! is an advantage at the edge — no gating network has to run anywhere.
//!
//! The per-expert forward passes are independent, so they fan out across
//! scoped threads ([`teamnet_tensor::pool::map_mut`]) under the team's
//! [`ParallelConfig`]. Each expert's pass is deterministic on its own, so
//! predictions are bit-identical at every thread count.

use crate::entropy::entropy;
use serde::{Deserialize, Serialize};
use teamnet_data::Dataset;
use teamnet_nn::{load_state, state_vec, Layer, Mode, ModelSpec, Sequential};
use teamnet_tensor::{pool, ParallelConfig, Tensor};

/// One collaborative prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TeamPrediction {
    /// The winning class label.
    pub label: usize,
    /// Which expert supplied the winning prediction.
    pub expert: usize,
    /// The winning expert's predictive entropy (the uncertainty that won).
    pub entropy: f32,
}

/// Aggregate evaluation of a team on a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TeamEvaluation {
    /// Overall accuracy.
    pub accuracy: f64,
    /// How many test examples each expert won.
    pub expert_wins: Vec<u64>,
    /// `per_class_wins[class][expert]`: how often each expert won examples
    /// of each true class — the data behind the paper's Figure 9
    /// specialization heat maps.
    pub per_class_wins: Vec<Vec<u64>>,
}

impl TeamEvaluation {
    /// Row-normalized specialization matrix: the fraction of each class
    /// won by each expert (rows sum to 1 for non-empty classes).
    pub fn specialization(&self) -> Vec<Vec<f64>> {
        self.per_class_wins
            .iter()
            .map(|row| {
                let total: u64 = row.iter().sum();
                row.iter()
                    .map(|&w| {
                        if total == 0 {
                            0.0
                        } else {
                            w as f64 / total as f64
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// A trained TeamNet: K expert networks collaborating by least-uncertainty
/// selection.
pub struct TeamNet {
    spec: ModelSpec,
    experts: Vec<Sequential>,
    /// Per-expert entropy weights δ* for the inference gate (Eq. 1 of the
    /// paper with converged control variables). `1.0` everywhere means the
    /// plain arg-min of Figure 4.
    calibration: Vec<f32>,
    /// Thread configuration for the per-expert inference fan-out.
    parallelism: ParallelConfig,
}

impl TeamNet {
    /// Assembles a team from trained expert networks.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty.
    pub fn from_experts(spec: ModelSpec, experts: Vec<Sequential>) -> Self {
        assert!(!experts.is_empty(), "a team needs at least one expert");
        let calibration = vec![1.0; experts.len()];
        TeamNet {
            spec,
            experts,
            calibration,
            parallelism: ParallelConfig::default(),
        }
    }

    /// Sets the thread configuration for the per-expert inference
    /// fan-out. Predictions are bit-identical at every thread count; this
    /// only changes wall-clock behavior.
    pub fn set_parallelism(&mut self, parallelism: ParallelConfig) {
        self.parallelism = parallelism;
    }

    /// The thread configuration used for the per-expert fan-out.
    pub fn parallelism(&self) -> ParallelConfig {
        self.parallelism
    }

    /// Every expert's softmax output on `images`, computed with one
    /// scoped worker per expert block. Expert i's distribution is at
    /// index i regardless of thread count.
    fn expert_probs(&mut self, images: &Tensor) -> Vec<Tensor> {
        let threads = self.parallelism.threads();
        pool::map_mut(&mut self.experts, threads, |_, e| {
            e.forward(images, Mode::Eval).softmax_rows()
        })
    }

    /// The per-expert entropy weights used by the inference gate.
    pub fn calibration(&self) -> &[f32] {
        &self.calibration
    }

    /// Sets the inference gate's entropy weights δ* (Eq. 1). Experts whose
    /// entropies run systematically low (overconfident, e.g. from
    /// batch-norm statistics fit to their own partition) get weights above
    /// one so the comparison across experts stays fair.
    ///
    /// # Panics
    ///
    /// Panics unless `calibration` has one positive weight per expert.
    pub fn set_calibration(&mut self, calibration: Vec<f32>) {
        assert_eq!(
            calibration.len(),
            self.experts.len(),
            "one weight per expert"
        );
        assert!(
            calibration.iter().all(|&c| c > 0.0 && c.is_finite()),
            "weights must be positive"
        );
        self.calibration = calibration;
    }

    /// Derives δ* from a reference dataset: each expert's weight is the
    /// reciprocal of its mean predictive entropy over the examples the
    /// *current* gate routes to it, normalized to mean 1. Call with (a
    /// sample of) the training set after training.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty.
    pub fn calibrate(&mut self, images: &Tensor) {
        let n = images.dims().first().copied().unwrap_or(0);
        assert!(n > 0, "calibration needs at least one example");
        let k = self.k();
        let probs = self.expert_probs(images);
        // Raw arg-min assignment, then per-expert mean entropy over its
        // own territory. Experts that win nothing fall back to their mean
        // entropy over everything. An expert whose distribution fails
        // validation reports infinite uncertainty and so wins nothing.
        let mut own_sum = vec![0.0f64; k];
        let mut own_count = vec![0usize; k];
        let mut all_sum = vec![0.0f64; k];
        for r in 0..n {
            let hs: Vec<f32> = probs
                .iter()
                .map(|p| entropy(p.row(r)).unwrap_or(f32::INFINITY))
                .collect();
            let mut winner = 0usize;
            let mut winner_h = f32::INFINITY;
            for (i, (&h, sum)) in hs.iter().zip(all_sum.iter_mut()).enumerate() {
                if h < winner_h {
                    winner = i;
                    winner_h = h;
                }
                *sum += f64::from(h);
            }
            if let (Some(sum), Some(count)) = (own_sum.get_mut(winner), own_count.get_mut(winner)) {
                *sum += f64::from(winner_h);
                *count += 1;
            }
        }
        let mut weights: Vec<f32> = own_sum
            .iter()
            .zip(&own_count)
            .zip(&all_sum)
            .map(|((&own, &count), &all)| {
                let reference = if count > 0 {
                    own / count as f64
                } else {
                    all / n as f64
                };
                (1.0 / reference.max(1e-6)) as f32
            })
            .collect();
        let mean: f32 = weights.iter().sum::<f32>() / k as f32;
        for w in &mut weights {
            *w /= mean;
        }
        self.set_calibration(weights);
    }

    /// Number of experts.
    pub fn k(&self) -> usize {
        self.experts.len()
    }

    /// The experts' architecture.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Mutable access to one expert (e.g. to deploy it to a device).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.k()`.
    pub fn expert_mut(&mut self, i: usize) -> &mut Sequential {
        // Documented `# Panics` contract for the indexed accessor.
        // lint: allow(no-index)
        &mut self.experts[i]
    }

    /// Snapshots every expert's parameters (for serialization/deployment).
    pub fn expert_states(&mut self) -> Vec<Vec<Tensor>> {
        self.experts.iter_mut().map(|e| state_vec(e)).collect()
    }

    /// Rebuilds a team from an architecture spec and per-expert parameter
    /// snapshots (the receiving side of deployment).
    ///
    /// # Panics
    ///
    /// Panics if any state vector does not match the architecture.
    pub fn from_states(spec: ModelSpec, states: &[Vec<Tensor>]) -> Self {
        assert!(!states.is_empty(), "a team needs at least one expert");
        let experts = states
            .iter()
            .map(|state| {
                let mut net = crate::expert::build_expert(&spec, 0);
                load_state(&mut net, state);
                net
            })
            .collect();
        TeamNet::from_experts(spec, experts)
    }

    /// Collaborative inference on a batch: every expert predicts, the
    /// least-uncertain wins per example.
    pub fn predict(&mut self, images: &Tensor) -> Vec<TeamPrediction> {
        let n = images.dims().first().copied().unwrap_or(0);
        let calibration = self.calibration.clone();
        let probs = self.expert_probs(images);
        (0..n)
            .map(|r| {
                let mut best = TeamPrediction {
                    label: 0,
                    expert: 0,
                    entropy: f32::INFINITY,
                };
                let mut best_weighted = f32::INFINITY;
                for (i, (p, &weight)) in probs.iter().zip(&calibration).enumerate() {
                    let row = p.row(r);
                    // An invalid distribution (diverged expert) counts as
                    // infinitely uncertain: the expert never wins a row.
                    let h = entropy(row).unwrap_or(f32::INFINITY);
                    let weighted = h * weight;
                    if weighted < best_weighted {
                        best_weighted = weighted;
                        best = TeamPrediction {
                            label: teamnet_tensor::argmax_slice(row),
                            expert: i,
                            entropy: h,
                        };
                    }
                }
                best
            })
            .collect()
    }

    /// The ensemble-style alternative the paper rejects in Section V:
    /// (entropy-weighted) majority vote over all experts. Provided for the
    /// ablation comparing it against the arg-min gate — since experts are
    /// trained to specialize, "considering the prediction of 'non-expert'
    /// can be detrimental".
    pub fn predict_majority(&mut self, images: &Tensor) -> Vec<TeamPrediction> {
        let n = images.dims().first().copied().unwrap_or(0);
        let probs = self.expert_probs(images);
        let classes = probs
            .first()
            .and_then(|p| p.dims().get(1))
            .copied()
            .unwrap_or(0);
        (0..n)
            .map(|r| {
                // Each expert votes with weight 1/(ε + H): confident experts
                // count more, but nobody is excluded. An invalid distribution
                // votes with infinite entropy, i.e. weight zero.
                let mut tally = vec![0.0f32; classes];
                let mut per_expert: Vec<(usize, f32)> = Vec::with_capacity(self.experts.len());
                for p in &probs {
                    let row = p.row(r);
                    let h = entropy(row).unwrap_or(f32::INFINITY);
                    let label = teamnet_tensor::argmax_slice(row);
                    if let Some(votes) = tally.get_mut(label) {
                        *votes += 1.0 / (0.1 + h);
                    }
                    per_expert.push((label, h));
                }
                let winner = teamnet_tensor::argmax_slice(&tally);
                // Report the most confident expert that voted for the winner.
                let (expert, entropy) = per_expert
                    .iter()
                    .enumerate()
                    .filter(|(_, (l, _))| *l == winner)
                    .map(|(i, (_, h))| (i, *h))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .unwrap_or((0, f32::INFINITY));
                TeamPrediction {
                    label: winner,
                    expert,
                    entropy,
                }
            })
            .collect()
    }

    /// Accuracy of the majority-vote combiner over a dataset (ablation
    /// counterpart of [`TeamNet::evaluate`]).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn evaluate_majority(&mut self, data: &Dataset) -> f64 {
        assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
        let mut correct = 0u64;
        for batch in data.batches(256) {
            for (pred, &truth) in self
                .predict_majority(&batch.images)
                .iter()
                .zip(&batch.labels)
            {
                if pred.label == truth {
                    correct += 1;
                }
            }
        }
        correct as f64 / data.len() as f64
    }

    /// Evaluates accuracy and specialization over a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn evaluate(&mut self, data: &Dataset) -> TeamEvaluation {
        assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
        let k = self.k();
        let classes = data.num_classes();
        let mut correct = 0u64;
        let mut expert_wins = vec![0u64; k];
        let mut per_class_wins = vec![vec![0u64; k]; classes];
        for batch in data.batches(256) {
            for (pred, &truth) in self.predict(&batch.images).iter().zip(&batch.labels) {
                if pred.label == truth {
                    correct += 1;
                }
                if let Some(wins) = expert_wins.get_mut(pred.expert) {
                    *wins += 1;
                }
                if let Some(cell) = per_class_wins
                    .get_mut(truth)
                    .and_then(|row| row.get_mut(pred.expert))
                {
                    *cell += 1;
                }
            }
        }
        TeamEvaluation {
            accuracy: correct as f64 / data.len() as f64,
            expert_wins,
            per_class_wins,
        }
    }
}

impl std::fmt::Debug for TeamNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TeamNet(k={}, spec={:?})", self.k(), self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::build_expert;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use teamnet_data::synth_digits;

    fn untrained_team(k: usize) -> TeamNet {
        let spec = ModelSpec::mlp(2, 16);
        let experts = (0..k).map(|i| build_expert(&spec, i as u64)).collect();
        TeamNet::from_experts(spec, experts)
    }

    #[test]
    fn predict_returns_one_result_per_row() {
        let mut team = untrained_team(3);
        let x = Tensor::zeros([5, 1, 28, 28]);
        let preds = team.predict(&x);
        assert_eq!(preds.len(), 5);
        for p in &preds {
            assert!(p.label < 10);
            assert!(p.expert < 3);
            assert!(p.entropy.is_finite());
        }
    }

    #[test]
    fn winner_has_least_entropy() {
        let mut team = untrained_team(2);
        let x = Tensor::ones([1, 1, 28, 28]);
        // Recompute per-expert entropies manually and compare to winner.
        let mut entropies = Vec::new();
        for i in 0..2 {
            let probs = team.expert_mut(i).forward(&x, Mode::Eval).softmax_rows();
            entropies.push(entropy(probs.row(0)).unwrap());
        }
        let pred = &team.predict(&x)[0];
        let min = entropies.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!((pred.entropy - min).abs() < 1e-6);
        assert_eq!(
            pred.expert,
            if entropies[0] <= entropies[1] { 0 } else { 1 }
        );
    }

    #[test]
    fn evaluation_counts_are_consistent() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = synth_digits(50, &mut rng);
        let mut team = untrained_team(2);
        let eval = team.evaluate(&data);
        assert_eq!(eval.expert_wins.iter().sum::<u64>(), 50);
        let per_class_total: u64 = eval.per_class_wins.iter().flatten().sum();
        assert_eq!(per_class_total, 50);
        assert!((0.0..=1.0).contains(&eval.accuracy));
    }

    #[test]
    fn specialization_rows_are_distributions() {
        let eval = TeamEvaluation {
            accuracy: 1.0,
            expert_wins: vec![3, 1],
            per_class_wins: vec![vec![3, 1], vec![0, 0]],
        };
        let spec = eval.specialization();
        assert!((spec[0][0] - 0.75).abs() < 1e-9);
        assert_eq!(spec[1], vec![0.0, 0.0]); // empty class stays zero
    }

    #[test]
    fn calibration_reroutes_overconfident_expert() {
        // Expert 0 systematically lower entropy: without calibration it
        // wins everything; weighting it up hands rows back to expert 1.
        let mut team = untrained_team(2);
        let x = Tensor::rand_uniform(
            [8, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3),
        );
        let plain: Vec<usize> = team.predict(&x).iter().map(|p| p.expert).collect();
        // Heavily handicap whichever expert wins the most.
        let winner = if plain.iter().filter(|&&e| e == 0).count() >= 4 {
            0
        } else {
            1
        };
        let mut weights = vec![1.0f32; 2];
        weights[winner] = 100.0;
        team.set_calibration(weights);
        let adjusted: Vec<usize> = team.predict(&x).iter().map(|p| p.expert).collect();
        assert!(adjusted.iter().all(|&e| e != winner), "{adjusted:?}");
    }

    #[test]
    fn calibrate_produces_mean_one_weights() {
        let mut team = untrained_team(3);
        let x = Tensor::rand_uniform(
            [16, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4),
        );
        team.calibrate(&x);
        let mean: f32 = team.calibration().iter().sum::<f32>() / 3.0;
        assert!((mean - 1.0).abs() < 1e-5);
        assert!(team.calibration().iter().all(|&c| c > 0.0));
    }

    #[test]
    #[should_panic(expected = "one weight per expert")]
    fn set_calibration_checks_length() {
        let mut team = untrained_team(2);
        team.set_calibration(vec![1.0]);
    }

    #[test]
    fn majority_vote_returns_valid_predictions() {
        let mut team = untrained_team(3);
        let x = Tensor::rand_uniform(
            [4, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1),
        );
        let preds = team.predict_majority(&x);
        assert_eq!(preds.len(), 4);
        for p in &preds {
            assert!(p.label < 10);
            assert!(p.expert < 3);
            assert!(p.entropy.is_finite());
        }
    }

    #[test]
    fn majority_vote_with_unanimous_experts_matches_argmin() {
        // All experts identical → both combiners must agree.
        let spec = ModelSpec::mlp(2, 16);
        let experts = (0..3).map(|_| build_expert(&spec, 7)).collect();
        let mut team = TeamNet::from_experts(spec, experts);
        let x = Tensor::rand_uniform(
            [3, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2),
        );
        let argmin: Vec<usize> = team.predict(&x).iter().map(|p| p.label).collect();
        let vote: Vec<usize> = team.predict_majority(&x).iter().map(|p| p.label).collect();
        assert_eq!(argmin, vote);
    }

    #[test]
    fn state_roundtrip_preserves_predictions() {
        let mut team = untrained_team(2);
        let x = Tensor::ones([2, 1, 28, 28]);
        let before = team.predict(&x);
        let states = team.expert_states();
        let mut restored = TeamNet::from_states(team.spec().clone(), &states);
        let after = restored.predict(&x);
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn rejects_empty_team() {
        TeamNet::from_experts(ModelSpec::mlp(2, 8), Vec::new());
    }

    #[test]
    fn predictions_are_identical_at_every_thread_count() {
        use teamnet_tensor::ParallelConfig;
        let x = Tensor::rand_uniform(
            [6, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9),
        );
        let mut reference = untrained_team(4);
        reference.set_parallelism(ParallelConfig::sequential());
        let want = reference.predict(&x);
        let want_vote = reference.predict_majority(&x);
        for threads in [2, 4, 8] {
            let mut team = untrained_team(4);
            team.set_parallelism(ParallelConfig::with_threads(threads));
            assert_eq!(team.parallelism().threads(), threads);
            assert_eq!(team.predict(&x), want, "threads={threads}");
            assert_eq!(team.predict_majority(&x), want_vote, "threads={threads}");
        }
    }
}
