//! The expert ensemble and its trainer — Algorithm 3 of the paper.
//!
//! Each of the K experts is an independent downsized copy of the target
//! architecture. After the gate splits a mini-batch `β` into
//! `β₁, …, β_K`, Expert i takes one cross-entropy SGD step on its own
//! `βᵢ` and *never* sees the other experts' examples — that is what makes
//! TeamNet's partition *implicit* and keeps experts specialized.

use crate::entropy::{entropy_matrix, EntropyError};
use rand::Rng;
use rand::SeedableRng as _;
use teamnet_data::Batch;
use teamnet_nn::{softmax_cross_entropy, with_flatten, Layer, Mode, ModelSpec, Sequential, Sgd};
use teamnet_tensor::Tensor;

/// Builds one expert network for `spec`, inserting a flattening front end
/// for MLPs so every expert consumes `[n, c, h, w]` image batches.
pub fn build_expert(spec: &ModelSpec, seed: u64) -> Sequential {
    match spec {
        ModelSpec::Mlp { .. } => with_flatten(spec, seed),
        ModelSpec::ShakeShake { .. } => spec.build(seed),
    }
}

/// K expert networks of identical architecture plus their optimizers.
pub struct ExpertEnsemble {
    spec: ModelSpec,
    experts: Vec<Sequential>,
    optimizers: Vec<Sgd>,
}

impl ExpertEnsemble {
    /// Creates `k` experts with independent random initializations derived
    /// from `base_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `lr <= 0`, or `momentum ∉ [0, 1)`.
    pub fn new(spec: ModelSpec, k: usize, lr: f32, momentum: f32, base_seed: u64) -> Self {
        assert!(k > 0, "need at least one expert");
        let experts: Vec<Sequential> = (0..k)
            .map(|i| build_expert(&spec, base_seed.wrapping_add(i as u64 * 0x9E37_79B9)))
            .collect();
        let optimizers = (0..k).map(|_| Sgd::with_momentum(lr, momentum)).collect();
        ExpertEnsemble {
            spec,
            experts,
            optimizers,
        }
    }

    /// Number of experts.
    pub fn k(&self) -> usize {
        self.experts.len()
    }

    /// The experts' shared architecture.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Immutable access to expert `i`'s network.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.k()`.
    pub fn expert(&self, i: usize) -> &Sequential {
        // Documented `# Panics` contract for the indexed accessor.
        // lint: allow(no-index)
        &self.experts[i]
    }

    /// Mutable access to expert `i`'s network.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.k()`.
    pub fn expert_mut(&mut self, i: usize) -> &mut Sequential {
        // Documented `# Panics` contract for the indexed accessor.
        // lint: allow(no-index)
        &mut self.experts[i]
    }

    /// Consumes the ensemble, returning the expert networks.
    pub fn into_experts(self) -> Vec<Sequential> {
        self.experts
    }

    /// Every expert's predictive distribution on `images` (evaluation
    /// mode), `[n, classes]` each.
    pub fn predict_proba(&mut self, images: &Tensor) -> Vec<Tensor> {
        self.experts
            .iter_mut()
            .map(|e| e.forward(images, Mode::Eval).softmax_rows())
            .collect()
    }

    /// The `[n, K]` predictive-entropy matrix on `images` (Algorithm 1
    /// line 6).
    ///
    /// # Errors
    ///
    /// Returns an [`EntropyError`] if any expert emits an invalid
    /// probability distribution (e.g. NaNs after divergence).
    pub fn entropy_matrix(&mut self, images: &Tensor) -> Result<Tensor, EntropyError> {
        let probs = self.predict_proba(images);
        entropy_matrix(&probs)
    }

    /// Algorithm 3: one SGD step per expert on its assigned sub-batch.
    ///
    /// Returns each expert's mean cross-entropy on its own sub-batch
    /// (`NaN`-free: experts with no assigned data report 0 and take no
    /// step).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` length differs from the batch size or names
    /// an expert out of range.
    pub fn train_assigned(&mut self, batch: &Batch, assignment: &[usize]) -> Vec<f32> {
        assert_eq!(
            assignment.len(),
            batch.len(),
            "assignment/batch size mismatch"
        );
        let k = self.k();
        let mut losses = vec![0.0f32; k];
        for (i, (expert, optimizer)) in self
            .experts
            .iter_mut()
            .zip(&mut self.optimizers)
            .enumerate()
        {
            let rows: Vec<usize> = assignment
                .iter()
                .enumerate()
                .filter(|(_, &a)| {
                    assert!(a < k, "assignment names expert {a} of {k}");
                    a == i
                })
                .map(|(r, _)| r)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let sub_images = batch.images.select_rows(&rows);
            let sub_labels: Vec<usize> = rows
                .iter()
                .filter_map(|&r| batch.labels.get(r).copied())
                .collect();
            let logits = expert.forward(&sub_images, Mode::Train);
            let out = softmax_cross_entropy(&logits, &sub_labels);
            expert.zero_grad();
            expert.backward(&out.grad);
            optimizer.step(expert);
            if let Some(loss) = losses.get_mut(i) {
                *loss = out.loss;
            }
        }
        losses
    }

    /// Randomly assigns a batch across experts — the ablation baseline
    /// that removes competitive selection (what SG-MoE's noisy gating
    /// effectively does early in training).
    pub fn train_random(&mut self, batch: &Batch, rng: &mut impl Rng) -> Vec<f32> {
        let assignment: Vec<usize> = (0..batch.len())
            .map(|_| rng.gen_range(0..self.k()))
            .collect();
        self.train_assigned(batch, &assignment)
    }
}

impl std::fmt::Debug for ExpertEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExpertEnsemble(k={}, spec={:?})", self.k(), self.spec)
    }
}

/// Deterministic per-expert RNG for reproducible random baselines.
pub fn expert_rng(base_seed: u64, expert: usize) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(
        base_seed ^ (expert as u64).wrapping_mul(0xA076_1D64_78BD_642F),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use teamnet_data::synth_digits;

    fn digit_batch(n: usize) -> Batch {
        let mut rng = StdRng::seed_from_u64(1);
        let data = synth_digits(n, &mut rng);
        data.batches(n).next().expect("one batch")
    }

    #[test]
    fn ensemble_builds_independent_experts() {
        let mut ens = ExpertEnsemble::new(ModelSpec::mlp(2, 16), 3, 0.1, 0.0, 42);
        assert_eq!(ens.k(), 3);
        let batch = digit_batch(4);
        let probs = ens.predict_proba(&batch.images);
        assert_eq!(probs.len(), 3);
        // Different inits → different outputs.
        assert!(probs[0].max_abs_diff(&probs[1]) > 1e-6);
        // Rows are distributions.
        for p in &probs {
            assert!((p.sum_rows().data()[0] - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn entropy_matrix_shape() {
        let mut ens = ExpertEnsemble::new(ModelSpec::mlp(2, 16), 2, 0.1, 0.0, 1);
        let batch = digit_batch(6);
        let h = ens.entropy_matrix(&batch.images).unwrap();
        assert_eq!(h.dims(), &[6, 2]);
        assert!(h.all_finite());
        assert!(h.min() >= 0.0);
    }

    #[test]
    fn assigned_training_only_updates_assigned_expert() {
        let mut ens = ExpertEnsemble::new(ModelSpec::mlp(2, 16), 2, 0.5, 0.0, 7);
        let batch = digit_batch(8);
        let before: Vec<Tensor> = (0..2)
            .map(|i| teamnet_nn::state_vec(ens.expert_mut(i)).remove(0))
            .collect();
        // Everything to expert 0.
        let losses = ens.train_assigned(&batch, &[0; 8]);
        assert!(losses[0] > 0.0);
        assert_eq!(losses[1], 0.0);
        let after: Vec<Tensor> = (0..2)
            .map(|i| teamnet_nn::state_vec(ens.expert_mut(i)).remove(0))
            .collect();
        assert!(
            before[0].max_abs_diff(&after[0]) > 0.0,
            "expert 0 should move"
        );
        assert_eq!(before[1], after[1], "expert 1 must be untouched");
    }

    #[test]
    fn training_reduces_own_loss() {
        let mut ens = ExpertEnsemble::new(ModelSpec::mlp(2, 32), 2, 0.2, 0.9, 3);
        let batch = digit_batch(32);
        let assignment: Vec<usize> = (0..32).map(|i| i % 2).collect();
        let first = ens.train_assigned(&batch, &assignment);
        let mut last = first.clone();
        for _ in 0..30 {
            last = ens.train_assigned(&batch, &assignment);
        }
        assert!(last[0] < first[0] * 0.5, "{first:?} -> {last:?}");
        assert!(last[1] < first[1] * 0.5, "{first:?} -> {last:?}");
    }

    #[test]
    #[should_panic(expected = "assignment/batch size mismatch")]
    fn rejects_misaligned_assignment() {
        let mut ens = ExpertEnsemble::new(ModelSpec::mlp(2, 8), 2, 0.1, 0.0, 0);
        let batch = digit_batch(4);
        ens.train_assigned(&batch, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "names expert")]
    fn rejects_out_of_range_expert() {
        let mut ens = ExpertEnsemble::new(ModelSpec::mlp(2, 8), 2, 0.1, 0.0, 0);
        let batch = digit_batch(2);
        ens.train_assigned(&batch, &[0, 5]);
    }

    #[test]
    fn random_baseline_touches_all_experts_eventually() {
        let mut ens = ExpertEnsemble::new(ModelSpec::mlp(2, 8), 2, 0.1, 0.0, 0);
        let batch = digit_batch(16);
        let mut rng = expert_rng(9, 0);
        let mut touched = [false; 2];
        for _ in 0..5 {
            let losses = ens.train_random(&batch, &mut rng);
            for (i, &l) in losses.iter().enumerate() {
                if l > 0.0 {
                    touched[i] = true;
                }
            }
        }
        assert!(touched[0] && touched[1]);
    }

    #[test]
    fn build_expert_handles_both_families() {
        let mlp = build_expert(&ModelSpec::mlp(2, 8), 0);
        assert_eq!(mlp.out_dims(&[1, 1, 28, 28]), vec![1, 10]);
        let spec = ModelSpec::ShakeShake {
            blocks_per_stage: 1,
            base_channels: 4,
            in_channels: 3,
            image_hw: 16,
            classes: 10,
        };
        let cnn = build_expert(&spec, 0);
        assert_eq!(cnn.out_dims(&[1, 3, 16, 16]), vec![1, 10]);
    }
}
