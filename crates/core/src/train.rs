//! The TeamNet training loop — Algorithm 1 of the paper.
//!
//! Per epoch: reshuffle, walk the mini-batches; per batch: evaluate every
//! expert's predictive entropy, run GATE_TRAIN (Algorithm 2) to decide who
//! learns what, then EXPERT_TRAIN (Algorithm 3) to update the winners.
//! The recorded per-iteration assignment proportions are the data behind
//! the paper's Figures 6 and 8 (convergence of γ to the 1/K set point).

use crate::expert::ExpertEnsemble;
use crate::gate::{DynamicGate, GateConfig, GateConfigError};
use crate::team::TeamNet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use teamnet_data::Dataset;
use teamnet_nn::ModelSpec;
use teamnet_obs::{Counter, Gauge, Obs};

/// Hyperparameters of a TeamNet training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training data (`r` in Algorithm 1).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Expert learning rate.
    pub learning_rate: f32,
    /// Expert SGD momentum.
    pub momentum: f32,
    /// Gate hyperparameters.
    pub gate: GateConfig,
    /// Master seed for initialization, shuffling and the gate's latent
    /// draws.
    pub seed: u64,
    /// Optional non-uniform per-expert share targets (the paper's
    /// future-work extension for imbalanced data); `None` means the
    /// uniform `1/K` set point.
    pub target_shares: Option<Vec<f32>>,
    /// Pixels of random translation (plus horizontal flip) applied to each
    /// training batch; 0 disables augmentation. CNN experts want 2–3.
    pub augment_shift: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 64,
            learning_rate: 0.1,
            momentum: 0.9,
            gate: GateConfig::default(),
            seed: 0,
            target_shares: None,
            augment_shift: 0,
        }
    }
}

/// Per-iteration record of one gate decision during training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Global iteration index.
    pub iteration: usize,
    /// Share of this batch each expert received (γ̄ of the batch).
    pub batch_shares: Vec<f32>,
    /// Cumulative share of all training data each expert has received so
    /// far — the curve plotted in Figures 6 and 8.
    pub cumulative_shares: Vec<f32>,
    /// Final gate objective J for the batch.
    pub gate_objective: f32,
    /// Mean expert loss over experts that received data this iteration.
    pub mean_expert_loss: f32,
}

/// The full trace of a training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// One record per gate invocation (per mini-batch).
    pub records: Vec<IterationRecord>,
}

impl TrainingHistory {
    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no iterations were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Largest deviation of any expert's cumulative share from `1/K` over
    /// the final `tail` iterations — the convergence criterion of
    /// Figures 6 and 8.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty or `tail == 0`.
    pub fn final_imbalance(&self, tail: usize) -> f32 {
        assert!(!self.records.is_empty(), "empty history");
        assert!(tail > 0, "tail must be positive");
        let k = self
            .records
            .first()
            .map_or(0, |r| r.cumulative_shares.len()) as f32;
        let start = self.records.len().saturating_sub(tail);
        self.records
            .iter()
            .skip(start)
            .flat_map(|r| {
                r.cumulative_shares
                    .iter()
                    .map(move |&s| (s - 1.0 / k).abs())
            })
            .fold(0.0, f32::max)
    }
}

/// Trains K experts with the competitive/selective scheme.
pub struct Trainer {
    ensemble: ExpertEnsemble,
    gate: DynamicGate,
    config: TrainConfig,
    rng: StdRng,
    assigned_counts: Vec<u64>,
    iteration: usize,
    history: TrainingHistory,
    obs: Obs,
    epochs_run: u64,
    c_gate_invocations: Counter,
    c_controller_iters: Counter,
    share_gauges: Vec<Gauge>,
}

impl Trainer {
    /// Creates a trainer for `k` experts of architecture `spec`.
    ///
    /// # Errors
    ///
    /// Returns a [`GateConfigError`] if `k < 2` (TeamNet is a
    /// collaboration; use plain training for a single model), the gate
    /// config is invalid, or `target_shares` does not match `k`.
    pub fn try_new(
        spec: ModelSpec,
        k: usize,
        config: TrainConfig,
    ) -> Result<Self, GateConfigError> {
        if k < 2 {
            return Err(GateConfigError::TooFewExperts(k));
        }
        let gate = match &config.target_shares {
            Some(shares) => {
                if shares.len() != k {
                    return Err(GateConfigError::TargetSharesLength {
                        expected: k,
                        got: shares.len(),
                    });
                }
                DynamicGate::try_with_set_point(
                    shares.clone(),
                    config.gate.clone(),
                    config.seed.wrapping_add(1),
                )?
            }
            None => DynamicGate::try_new(k, config.gate.clone(), config.seed.wrapping_add(1))?,
        };
        let ensemble =
            ExpertEnsemble::new(spec, k, config.learning_rate, config.momentum, config.seed);
        let rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));
        let mut trainer = Trainer {
            ensemble,
            gate,
            config,
            rng,
            assigned_counts: vec![0; k],
            iteration: 0,
            history: TrainingHistory::default(),
            obs: Obs::disabled(),
            epochs_run: 0,
            c_gate_invocations: Counter::default(),
            c_controller_iters: Counter::default(),
            share_gauges: Vec::new(),
        };
        trainer.rebuild_metric_handles();
        Ok(trainer)
    }

    /// Replaces the observability handle. Spans (`train.epoch`) and
    /// metrics (`gate.invocations`, `gate.controller.iterations`,
    /// `train.share.expert<i>.bp` gauges — DESIGN.md §12) flow into the
    /// new handle from the next batch onward.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
        self.rebuild_metric_handles();
    }

    /// The observability handle metrics are flowing into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    fn rebuild_metric_handles(&mut self) {
        self.c_gate_invocations = self.obs.metrics.counter("gate.invocations");
        self.c_controller_iters = self.obs.metrics.counter("gate.controller.iterations");
        self.share_gauges = (0..self.k())
            .map(|i| self.obs.metrics.gauge(&format!("train.share.expert{i}.bp")))
            .collect();
    }

    /// Creates a trainer for `k` experts of architecture `spec`.
    ///
    /// # Panics
    ///
    /// Panics under the conditions [`Trainer::try_new`] reports as
    /// errors.
    pub fn new(spec: ModelSpec, k: usize, config: TrainConfig) -> Self {
        match Trainer::try_new(spec, k, config) {
            Ok(trainer) => trainer,
            Err(e) => {
                assert!(false, "{e}");
                unreachable!()
            }
        }
    }

    /// Number of experts.
    pub fn k(&self) -> usize {
        self.ensemble.k()
    }

    /// The training trace so far.
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// Runs Algorithm 1 for `config.epochs` epochs over `data`, extending
    /// the history.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn train(&mut self, data: &Dataset) -> &TrainingHistory {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        for _ in 0..self.config.epochs {
            self.train_epoch(data);
        }
        &self.history
    }

    /// Runs a single epoch (one shuffled pass) over `data`.
    pub fn train_epoch(&mut self, data: &Dataset) {
        let obs = self.obs.clone();
        let _epoch_span = obs.span(
            "train.epoch",
            &[("epoch", self.epochs_run), ("rows", data.len() as u64)],
        );
        self.epochs_run += 1;
        let shuffled = data.shuffled(&mut self.rng);
        for mut batch in shuffled.batches(self.config.batch_size) {
            if self.config.augment_shift > 0 {
                batch.images = teamnet_data::augment_batch(
                    &batch.images,
                    self.config.augment_shift,
                    &mut self.rng,
                );
            }
            // Algorithm 1 line 6: entropy of every expert on the batch. A
            // diverged expert (NaN probabilities) would poison the gate's
            // arg-min; skip the batch instead of crashing the whole run.
            let entropy = match self.ensemble.entropy_matrix(&batch.images) {
                Ok(h) => h,
                Err(_) => continue,
            };
            // Line 7: GATE_TRAIN.
            let decision = self.gate.assign(&entropy);
            self.c_gate_invocations.inc();
            self.c_controller_iters.add(decision.iterations as u64);
            // Line 8: EXPERT_TRAIN.
            let losses = self.ensemble.train_assigned(&batch, &decision.assignment);

            for &a in &decision.assignment {
                if let Some(count) = self.assigned_counts.get_mut(a) {
                    *count += 1;
                }
            }
            let total: u64 = self.assigned_counts.iter().sum();
            for (gauge, &count) in self.share_gauges.iter().zip(&self.assigned_counts) {
                let bp = if total == 0 {
                    0
                } else {
                    (u128::from(count) * 10_000 / u128::from(total)) as i64
                };
                gauge.set(bp);
            }
            let cumulative_shares = self
                .assigned_counts
                .iter()
                .map(|&c| c as f32 / total as f32)
                .collect();
            let active: Vec<f32> = losses.iter().copied().filter(|&l| l > 0.0).collect();
            let mean_expert_loss = if active.is_empty() {
                0.0
            } else {
                active.iter().sum::<f32>() / active.len() as f32
            };
            self.history.records.push(IterationRecord {
                iteration: self.iteration,
                batch_shares: decision.gamma_bar,
                cumulative_shares,
                gate_objective: decision.objective,
                mean_expert_loss,
            });
            self.iteration += 1;
        }
    }

    /// Finishes training, producing the deployable team.
    pub fn into_team(self) -> TeamNet {
        let spec = self.ensemble.spec().clone();
        TeamNet::from_experts(spec, self.ensemble.into_experts())
    }

    /// Finishes training and calibrates the inference gate's entropy
    /// weights (Eq. 1's δ*) on a sample of up to 512 training examples —
    /// recommended for CNN experts, whose batch-norm statistics make raw
    /// entropies incomparable across experts.
    pub fn into_calibrated_team(self, data: &Dataset) -> TeamNet {
        let mut team = self.into_team();
        let sample_size = data.len().min(512);
        let indices: Vec<usize> = (0..sample_size).collect();
        let sample = data.subset(&indices);
        team.calibrate(sample.images());
        team
    }

    /// Borrow of the underlying ensemble (e.g. for mid-training probes).
    pub fn ensemble_mut(&mut self) -> &mut ExpertEnsemble {
        &mut self.ensemble
    }
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Trainer(k={}, iteration={})", self.k(), self.iteration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use teamnet_data::synth_digits;

    fn small_config() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 32,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn training_records_history() {
        let mut rng = StdRng::seed_from_u64(100);
        let data = synth_digits(256, &mut rng);
        let mut trainer = Trainer::new(ModelSpec::mlp(2, 24), 2, small_config());
        let history = trainer.train(&data).clone();
        // 2 epochs × 8 batches.
        assert_eq!(history.len(), 16);
        for rec in &history.records {
            assert_eq!(rec.batch_shares.len(), 2);
            assert!((rec.cumulative_shares.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn proportions_converge_towards_half() {
        let mut rng = StdRng::seed_from_u64(101);
        let data = synth_digits(600, &mut rng);
        let config = TrainConfig {
            epochs: 4,
            batch_size: 50,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(ModelSpec::mlp(2, 32), 2, config);
        let history = trainer.train(&data);
        // Figures 6a: cumulative shares end near the 0.5 set point.
        let imbalance = history.final_imbalance(5);
        assert!(imbalance < 0.15, "final imbalance {imbalance}");
    }

    #[test]
    fn four_expert_training_runs_and_balances() {
        let mut rng = StdRng::seed_from_u64(102);
        let data = synth_digits(600, &mut rng);
        let config = TrainConfig {
            epochs: 4,
            batch_size: 60,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(ModelSpec::mlp(2, 24), 4, config);
        let history = trainer.train(&data);
        let imbalance = history.final_imbalance(5);
        // Set point is 0.25; allow a loose band (short run).
        assert!(imbalance < 0.2, "final imbalance {imbalance}");
    }

    #[test]
    fn trained_team_beats_chance_substantially() {
        let mut rng = StdRng::seed_from_u64(103);
        let data = synth_digits(1_500, &mut rng);
        let (train, test) = data.split(1_200);
        let config = TrainConfig {
            epochs: 5,
            batch_size: 32,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(ModelSpec::mlp(2, 32), 2, config);
        trainer.train(&train);
        let mut team = trainer.into_team();
        let eval = team.evaluate(&test);
        assert!(eval.accuracy > 0.8, "accuracy {}", eval.accuracy);
    }

    #[test]
    fn expert_losses_fall_over_training() {
        let mut rng = StdRng::seed_from_u64(104);
        let data = synth_digits(400, &mut rng);
        let config = TrainConfig {
            epochs: 4,
            batch_size: 40,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(ModelSpec::mlp(2, 32), 2, config);
        let history = trainer.train(&data);
        let early: f32 = history.records[..3]
            .iter()
            .map(|r| r.mean_expert_loss)
            .sum::<f32>()
            / 3.0;
        let n = history.len();
        let late: f32 = history.records[n - 3..]
            .iter()
            .map(|r| r.mean_expert_loss)
            .sum::<f32>()
            / 3.0;
        assert!(late < early * 0.7, "loss {early} -> {late}");
    }

    #[test]
    #[should_panic(expected = "at least two experts")]
    fn rejects_k1() {
        Trainer::new(ModelSpec::mlp(2, 8), 1, small_config());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = synth_digits(10, &mut rng).subset(&[]);
        Trainer::new(ModelSpec::mlp(2, 8), 2, small_config()).train(&data);
    }

    #[test]
    fn non_uniform_targets_shift_cumulative_shares() {
        let mut rng = StdRng::seed_from_u64(110);
        let data = synth_digits(600, &mut rng);
        let config = TrainConfig {
            epochs: 4,
            batch_size: 50,
            target_shares: Some(vec![0.7, 0.3]),
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(ModelSpec::mlp(2, 24), 2, config);
        let history = trainer.train(&data);
        let last = &history.records.last().unwrap().cumulative_shares;
        assert!(
            (last[0] - 0.7).abs() < 0.15,
            "cumulative shares {last:?} should approach the 0.7/0.3 targets"
        );
    }

    #[test]
    fn calibrated_team_has_non_default_weights() {
        let mut rng = StdRng::seed_from_u64(120);
        let data = synth_digits(300, &mut rng);
        let mut trainer = Trainer::new(ModelSpec::mlp(2, 16), 2, small_config());
        trainer.train(&data);
        let team = trainer.into_calibrated_team(&data);
        let weights = team.calibration();
        assert_eq!(weights.len(), 2);
        let mean: f32 = weights.iter().sum::<f32>() / 2.0;
        assert!((mean - 1.0).abs() < 1e-5);
    }

    #[test]
    fn training_metrics_flow_into_obs_registry() {
        use std::sync::Arc;
        use teamnet_net::ManualClock;
        use teamnet_obs::VecSink;

        let mut rng = StdRng::seed_from_u64(130);
        let data = synth_digits(128, &mut rng);
        let sink = Arc::new(VecSink::default());
        let obs = Obs::new(Arc::new(ManualClock::new()), Arc::clone(&sink) as _);
        let mut trainer = Trainer::new(ModelSpec::mlp(2, 16), 2, small_config());
        trainer.set_obs(obs);
        trainer.train(&data);

        let snap = trainer.obs().metrics.snapshot();
        // 2 epochs × 4 batches of 32 over 128 rows.
        assert_eq!(snap.counters.get("gate.invocations"), Some(&8));
        assert!(snap.counters.get("gate.controller.iterations").is_some());
        let bp0 = snap.gauges.get("train.share.expert0.bp").copied();
        let bp1 = snap.gauges.get("train.share.expert1.bp").copied();
        let total = bp0.unwrap_or(0) + bp1.unwrap_or(0);
        assert!(
            (9_999..=10_000).contains(&total),
            "share gauges should sum to ~10000 bp, got {bp0:?} + {bp1:?}"
        );
        // Two epochs => two enter/exit pairs of the train.epoch span.
        let trace = sink.to_jsonl();
        assert_eq!(trace.matches("\"name\":\"train.epoch\"").count(), 4);
    }

    #[test]
    fn history_final_imbalance_math() {
        let history = TrainingHistory {
            records: vec![IterationRecord {
                iteration: 0,
                batch_shares: vec![0.5, 0.5],
                cumulative_shares: vec![0.6, 0.4],
                gate_objective: 0.0,
                mean_expert_loss: 0.0,
            }],
        };
        assert!((history.final_imbalance(1) - 0.1).abs() < 1e-6);
    }
}
