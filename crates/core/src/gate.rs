//! The dynamic gate `Ḡ` — Algorithm 2 of the paper.
//!
//! Given the batch entropy matrix `H`, the gate finds control variables
//! `δ = 1 + Δ·W(z, Θ)` such that the weighted-arg-min assignment
//! `Ḡ(x, δ) = argminᵢ δᵢ·H(ŷ|x, θᵢ)` splits the batch according to the
//! proportional-controller target `1/K − a·(γᵢ − 1/K)`, where `γᵢ` is the
//! share the *raw* arg-min gate would give Expert i. The correction term
//! counteracts the "richer gets richer" bias: experts that currently
//! hoard data get a handicap, starved experts get a boost.
//!
//! `Θ` is estimated by gradient descent through three smoothings:
//!
//! * **soft arg-min** (Eq. 5) with temperature `b` tuned per batch by the
//!   meta-estimator objective (Eq. 6);
//! * a **differentiable Kronecker delta** (Eq. 7),
//!   `tanh(c·relu(0.5 − |Ḡ(x,δ) − i|))` with `c = 10`;
//! * the L1 objective (Eq. 4) averaged per expert.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use teamnet_tensor::{Tape, Tensor, TensorError};

use crate::entropy::normalized_deviation;

/// Hyperparameters of the dynamic gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateConfig {
    /// Proportional-controller gain `a ∈ (0, 1)` (Eq. 4 / Fig. 3).
    pub gain: f32,
    /// Convergence threshold `ε` on the objective J, also the target
    /// softness in the meta-estimator (Eq. 6).
    pub epsilon: f32,
    /// Gradient-descent learning rate `η` for Θ.
    pub learning_rate: f32,
    /// Iteration cap for the inner descent loop.
    pub max_iterations: usize,
    /// Length N of the latent vector `z ~ U(−1, 1)ᴺ`.
    pub latent_dim: usize,
    /// Hidden width of the MLP `W(z, Θ)`.
    pub hidden_dim: usize,
    /// Discretization constant `c` in the Kronecker approximation (the
    /// paper uses 10).
    pub kron_scale: f32,
    /// Target mean distance of soft assignments from their nearest integer
    /// when selecting the temperature b (Eq. 6's ε): large enough that
    /// gradients flow, small enough that the soft gate tracks the hard one.
    pub softness: f32,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            gain: 0.5,
            epsilon: 0.02,
            learning_rate: 0.3,
            max_iterations: 60,
            latent_dim: 8,
            hidden_dim: 16,
            kron_scale: 10.0,
            softness: 0.12,
        }
    }
}

/// A gate configuration or set point outside its documented range.
///
/// Returned by [`GateConfig::validate`] and the `try_*` gate
/// constructors so a bad config degrades gracefully at the runtime
/// layer (one rejected request) instead of killing a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum GateConfigError {
    /// `gain` outside the proportional-controller range `(0, 1)`.
    Gain(f32),
    /// Non-positive convergence threshold `ε`.
    Epsilon(f32),
    /// Non-positive gate learning rate `η`.
    LearningRate(f32),
    /// Zero-sized latent or hidden dimension for the MLP `W(z, Θ)`.
    MlpDims {
        /// Configured latent dimension N.
        latent_dim: usize,
        /// Configured hidden width.
        hidden_dim: usize,
    },
    /// Non-positive Kronecker discretization constant `c`.
    KronScale(f32),
    /// `softness` outside `(0, 0.5)` — beyond ½ the soft assignment is
    /// closer to a *different* integer than its own.
    Softness(f32),
    /// Fewer than two experts requested.
    TooFewExperts(usize),
    /// A per-expert share target that is zero or negative.
    SetPointNotPositive(f32),
    /// Share targets that do not sum to 1 (the reported value).
    SetPointSum(f32),
    /// A `target_shares` vector whose length differs from the expert
    /// count it is meant to steer.
    TargetSharesLength {
        /// The expert count K.
        expected: usize,
        /// The supplied vector's length.
        got: usize,
    },
}

impl fmt::Display for GateConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateConfigError::Gain(g) => write!(f, "gain must be in (0, 1), got {g}"),
            GateConfigError::Epsilon(e) => write!(f, "epsilon must be positive, got {e}"),
            GateConfigError::LearningRate(lr) => {
                write!(f, "learning rate must be positive, got {lr}")
            }
            GateConfigError::MlpDims {
                latent_dim,
                hidden_dim,
            } => write!(
                f,
                "MLP dims must be positive, got latent {latent_dim} × hidden {hidden_dim}"
            ),
            GateConfigError::KronScale(c) => write!(f, "kron scale must be positive, got {c}"),
            GateConfigError::Softness(s) => write!(f, "softness must be in (0, 0.5), got {s}"),
            GateConfigError::TooFewExperts(k) => {
                write!(f, "a gate needs at least two experts, got {k}")
            }
            GateConfigError::SetPointNotPositive(v) => {
                write!(f, "set points must be positive, got {v}")
            }
            GateConfigError::SetPointSum(sum) => write!(f, "set points must sum to 1, got {sum}"),
            GateConfigError::TargetSharesLength { expected, got } => write!(
                f,
                "target_shares length must equal k: expected {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for GateConfigError {}

impl GateConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`GateConfigError`] describing a field outside
    /// its documented range.
    pub fn validate(&self) -> Result<(), GateConfigError> {
        if !(self.gain > 0.0 && self.gain < 1.0) {
            return Err(GateConfigError::Gain(self.gain));
        }
        if !(self.epsilon > 0.0) {
            return Err(GateConfigError::Epsilon(self.epsilon));
        }
        if !(self.learning_rate > 0.0) {
            return Err(GateConfigError::LearningRate(self.learning_rate));
        }
        if self.latent_dim == 0 || self.hidden_dim == 0 {
            return Err(GateConfigError::MlpDims {
                latent_dim: self.latent_dim,
                hidden_dim: self.hidden_dim,
            });
        }
        if !(self.kron_scale > 0.0) {
            return Err(GateConfigError::KronScale(self.kron_scale));
        }
        if !(self.softness > 0.0 && self.softness < 0.5) {
            return Err(GateConfigError::Softness(self.softness));
        }
        Ok(())
    }
}

/// The outcome of one gate invocation on a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct GateDecision {
    /// `Ḡ(x, δ)` for every batch example: which expert learns it.
    pub assignment: Vec<usize>,
    /// The final control variables δ.
    pub delta: Vec<f32>,
    /// Raw arg-min shares γᵢ (the bias being corrected).
    pub gamma: Vec<f32>,
    /// Achieved shares γ̄ᵢ under the returned assignment.
    pub gamma_bar: Vec<f32>,
    /// Final value of the objective J.
    pub objective: f32,
    /// Inner-loop iterations used.
    pub iterations: usize,
    /// Soft-arg-min temperature b selected by the meta-estimator.
    pub temperature: f32,
}

/// The trainable dynamic gate (Algorithm 2).
#[derive(Debug, Clone)]
pub struct DynamicGate {
    k: usize,
    config: GateConfig,
    set_point: Vec<f32>,
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    rng: StdRng,
}

impl DynamicGate {
    /// Creates a gate for `k` experts.
    ///
    /// # Errors
    ///
    /// Returns a [`GateConfigError`] if `k < 2` or the config is invalid.
    pub fn try_new(k: usize, config: GateConfig, seed: u64) -> Result<Self, GateConfigError> {
        if k < 2 {
            return Err(GateConfigError::TooFewExperts(k));
        }
        DynamicGate::try_with_set_point(vec![1.0 / k as f32; k], config, seed)
    }

    /// Creates a gate for `k` experts.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or the config is invalid. Use
    /// [`DynamicGate::try_new`] to validate instead.
    pub fn new(k: usize, config: GateConfig, seed: u64) -> Self {
        expect_valid(DynamicGate::try_new(k, config, seed))
    }

    /// Creates a gate steering towards arbitrary per-expert data shares
    /// instead of the uniform `1/K` — the paper's stated future-work
    /// extension for class-imbalanced data ("objective functions ... that
    /// can adapt to the imbalances among different classes").
    ///
    /// # Errors
    ///
    /// Returns a [`GateConfigError`] unless `set_point` has at least two
    /// positive entries summing to 1 and the config is valid.
    pub fn try_with_set_point(
        set_point: Vec<f32>,
        config: GateConfig,
        seed: u64,
    ) -> Result<Self, GateConfigError> {
        let k = set_point.len();
        if k < 2 {
            return Err(GateConfigError::TooFewExperts(k));
        }
        if let Some(&bad) = set_point.iter().find(|&&s| !(s > 0.0)) {
            return Err(GateConfigError::SetPointNotPositive(bad));
        }
        let sum: f32 = set_point.iter().sum();
        if !((sum - 1.0).abs() < 1e-4) {
            return Err(GateConfigError::SetPointSum(sum));
        }
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let (n, h) = (config.latent_dim, config.hidden_dim);
        Ok(DynamicGate {
            k,
            set_point,
            w1: Tensor::xavier_uniform([n, h], n, h, &mut rng),
            b1: Tensor::zeros([h]),
            w2: Tensor::xavier_uniform([h, k], h, k, &mut rng),
            b2: Tensor::zeros([k]),
            config,
            rng,
        })
    }

    /// Creates a gate steering towards arbitrary per-expert data shares.
    ///
    /// # Panics
    ///
    /// Panics unless `set_point` has at least two positive entries summing
    /// to 1 and the config is valid. Use
    /// [`DynamicGate::try_with_set_point`] to validate instead.
    pub fn with_set_point(set_point: Vec<f32>, config: GateConfig, seed: u64) -> Self {
        expect_valid(DynamicGate::try_with_set_point(set_point, config, seed))
    }

    /// The per-expert share targets the controller steers towards.
    pub fn set_point(&self) -> &[f32] {
        &self.set_point
    }

    /// Number of experts.
    pub fn num_experts(&self) -> usize {
        self.k
    }

    /// The gate's configuration.
    pub fn config(&self) -> &GateConfig {
        &self.config
    }

    /// The proportional-controller target `sᵢ − a·(γᵢ − sᵢ)` (with `sᵢ`
    /// the set point, `1/K` by default), clamped to the simplex.
    pub fn controller_target(&self, gamma: &[f32]) -> Vec<f32> {
        let mut target: Vec<f32> = gamma
            .iter()
            .zip(&self.set_point)
            .map(|(&g, &s)| (s - self.config.gain * (g - s)).max(0.0))
            .collect();
        let sum: f32 = target.iter().sum();
        if sum > 0.0 {
            for t in &mut target {
                *t /= sum;
            }
        }
        target
    }

    /// Eq. 6: finds the soft-arg-min temperature b whose expected distance
    /// from hard assignments is closest to the softness target ε (too-small
    /// b ⇒ mushy, gradient flows but means nothing; too-large b ⇒ a step
    /// function, no gradient). Re-run on the *current* weighted entropies
    /// each descent iteration so the slope stays usable as δ moves.
    fn select_temperature(&self, weighted: &Tensor) -> f32 {
        const CANDIDATES: [f32; 12] = [
            0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
        ];
        let mut best = (f32::INFINITY, 0.25);
        for &b in &CANDIDATES {
            let softness = mean_soft_distance(weighted, b);
            let score = (softness - self.config.softness).abs();
            if score < best.0 {
                best = (score, b);
            }
        }
        best.1
    }

    /// Row-normalizes an entropy matrix (divide each row by its mean).
    /// Arg-min within a row is invariant to positive row scaling, so this
    /// changes nothing semantically while making temperatures comparable
    /// across examples.
    fn row_normalized(entropy: &Tensor) -> Tensor {
        let mut out = entropy.clone();
        for r in 0..out.dims().first().copied().unwrap_or(0) {
            let row = out.row_mut(r);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            if mean > 1e-12 {
                for v in row.iter_mut() {
                    *v /= mean;
                }
            }
        }
        out
    }

    /// Forward pass of `W(z, Θ)` without the tape:
    /// `Φ = tanh(z·W₁ + b₁)·W₂ + b₂` (linear output, so δ can reach any
    /// handicap the controller demands).
    fn phi(&self, z: &Tensor) -> Tensor {
        let h = z.matmul(&self.w1).add_row_broadcast(&self.b1).tanh();
        h.matmul(&self.w2).add_row_broadcast(&self.b2)
    }

    /// Runs Algorithm 2 on the entropy matrix `H` (`[n, K]`), training Θ
    /// and returning the batch assignment.
    ///
    /// # Panics
    ///
    /// Panics unless `entropy` is `[n, K]` with `n > 0`.
    pub fn assign(&mut self, entropy: &Tensor) -> GateDecision {
        assert_eq!(entropy.rank(), 2, "entropy matrix must be [n, K]");
        assert_eq!(
            entropy.dims().get(1).copied(),
            Some(self.k),
            "entropy matrix K mismatch"
        );
        let n = entropy.dims().first().copied().unwrap_or(0);
        assert!(n > 0, "empty batch");

        // γ under the raw arg-min gate, and the controller target.
        let gamma = assignment_shares(&entropy.argmin_rows(), self.k);
        let target_vec = self.controller_target(&gamma);
        let delta_stat = normalized_deviation(entropy);
        // Row-normalized entropies: identical arg-min semantics, but the
        // soft machinery sees a well-conditioned scale.
        let normalized = Self::row_normalized(entropy);

        // z is drawn once per batch (Algorithm 2 line 3).
        let z = Tensor::rand_uniform([1, self.config.latent_dim], -1.0, 1.0, &mut self.rng);

        let mut objective = f32::INFINITY;
        let mut iterations = 0;
        let mut temperature = 1.0;
        for _ in 0..self.config.max_iterations {
            // Meta-estimator (Eq. 6) on the *current* weighted entropies.
            let delta_now = self.current_delta(&z, delta_stat);
            let weighted = weight_columns(&normalized, &delta_now);
            temperature = self.select_temperature(&weighted);

            let (j, [gw1, gb1, gw2, gb2]) =
                self.gate_loss_and_grads(&normalized, &z, delta_stat, &target_vec, temperature);
            objective = j;
            iterations += 1;
            if j <= self.config.epsilon {
                break;
            }
            let eta = self.config.learning_rate;
            self.w1.axpy(-eta, &gw1);
            self.b1.axpy(-eta, &gb1);
            self.w2.axpy(-eta, &gw2);
            self.b2.axpy(-eta, &gb2);
        }

        // The soft surrogate can satisfy J while the *hard* arg-min stays
        // one-sided (all the soft mass hovers on one side of a decision
        // boundary). Calibrate δ against the hard assignment itself: a
        // multiplicative coordinate descent on the same Eq. 4 objective,
        // warm-started from the Θ-descent solution. This is the
        // proportional controller actually biting.
        let mut delta = self.current_delta(&z, delta_stat);
        let mut best_delta = delta.clone();
        let mut best_j = hard_objective(entropy, &delta, &target_vec, self.k);
        for round in 0..self.config.max_iterations {
            if best_j <= self.config.epsilon {
                break;
            }
            let shares = assignment_shares(&weighted_argmin(entropy, &delta), self.k);
            // Experts holding more than their target get their entropies
            // inflated (handicapped); starved experts get discounted.
            let step = 0.8 / (1.0 + round as f32 * 0.15);
            for (d, (&s, &t)) in delta.iter_mut().zip(shares.iter().zip(&target_vec)) {
                *d = (*d * ((s + 0.02) / (t + 0.02)).powf(step)).max(1e-3);
            }
            let j = hard_objective(entropy, &delta, &target_vec, self.k);
            iterations += 1;
            if j < best_j {
                best_j = j;
                best_delta = delta.clone();
            }
        }
        let delta = best_delta;
        objective = best_j.min(objective);

        let assignment = weighted_argmin(entropy, &delta);
        let gamma_bar = assignment_shares(&assignment, self.k);

        GateDecision {
            assignment,
            delta,
            gamma,
            gamma_bar,
            objective,
            iterations,
            temperature,
        }
    }

    /// δᵢ = max(1 + Δ·Φᵢ, 0.05): tanh bounds Φ to (−1, 1) and the floor
    /// keeps the weighted entropies positive even when Δ ≥ 1.
    fn current_delta(&self, z: &Tensor, delta_stat: f32) -> Vec<f32> {
        self.phi(z)
            .data()
            .iter()
            .map(|&p| (1.0 + delta_stat * p).max(0.05))
            .collect()
    }

    /// One tape evaluation of J(Θ) with gradients for the four MLP
    /// parameters, in declaration order.
    fn gate_loss_and_grads(
        &self,
        entropy: &Tensor,
        z: &Tensor,
        delta_stat: f32,
        target: &[f32],
        b: f32,
    ) -> (f32, [Tensor; 4]) {
        let k = self.k;
        let mut tape = Tape::new();
        let w1 = tape.param(self.w1.clone());
        let b1 = tape.param(self.b1.clone());
        let w2 = tape.param(self.w2.clone());
        let b2 = tape.param(self.b2.clone());
        let zc = tape.constant(z.clone());

        // Φ = tanh(tanh(z·W₁+b₁)·W₂+b₂), as a rank-1 vector of length K.
        let h0 = tape.matmul(zc, w1);
        let h1 = tape.add_row_broadcast(h0, b1);
        let h = tape.tanh(h1);
        let o0 = tape.matmul(h, w2);
        let o1 = tape.add_row_broadcast(o0, b2);
        let phi_row = tape.tanh(o1);
        let phi = tape_ok(tape.reshape(phi_row, &[k]));

        // δ = 1 + Δ·Φ.
        let scaled = tape.scale(phi, delta_stat);
        let delta = tape.add_scalar(scaled, 1.0);

        // Soft arg-min of δ⊙H at temperature b → ḡ(x) ∈ [0, K−1].
        let hm = tape.constant(entropy.clone());
        let weighted = tape_ok(tape.mul_row_broadcast(hm, delta));
        let neg = tape.scale(weighted, -b);
        let soft = tape.softmax_rows(neg);
        // arange(k) has exactly k elements, matching [k, 1]. lint: allow(no-expect)
        let idx = tape.constant(Tensor::arange(k).into_reshaped([k, 1]).expect("column"));
        let gbar = tape.matmul(soft, idx);

        // Kronecker approximation (Eq. 7) per expert.
        let rep = tape_ok(tape.broadcast_cols(gbar, k));
        let neg_ids = tape.constant(Tensor::arange(k).scale(-1.0));
        let shifted = tape.add_row_broadcast(rep, neg_ids);
        let dist = tape.abs(shifted);
        let ndist = tape.neg(dist);
        let ramp = tape.add_scalar(ndist, 0.5);
        let relu = tape.relu(ramp);
        let sharp = tape.scale(relu, self.config.kron_scale);
        let kron = tape.tanh(sharp);

        // γ̄ᵢ(δ), then J = (1/K)·Σᵢ |γ̄ᵢ − targetᵢ| (Eq. 4).
        let gamma_bar = tape_ok(tape.mean_axis0(kron));
        let tv = tape.constant(target.iter().copied().collect());
        let diff = tape.sub(gamma_bar, tv);
        let adiff = tape.abs(diff);
        let total = tape.sum(adiff);
        let loss = tape.scale(total, 1.0 / k as f32);

        let j = tape.value(loss).item();
        let grads = tape_ok(tape.backward(loss));
        let zeros_like = |v: &Tensor| Tensor::zeros(v.shape().clone());
        let g = [
            grads
                .of(w1)
                .cloned()
                .unwrap_or_else(|| zeros_like(&self.w1)),
            grads
                .of(b1)
                .cloned()
                .unwrap_or_else(|| zeros_like(&self.b1)),
            grads
                .of(w2)
                .cloned()
                .unwrap_or_else(|| zeros_like(&self.w2)),
            grads
                .of(b2)
                .cloned()
                .unwrap_or_else(|| zeros_like(&self.b2)),
        ];
        (j, g)
    }
}

/// Unwraps a tape operation inside `gate_loss_and_grads`, where every
/// shape is fixed by construction (`z` is `[1, N]`, the entropy matrix is
/// validated `[n, K]` before the tape is built). The tape ops return
/// typed errors for the sake of untrusted callers; here a failure can
/// only mean a programming bug, so it fails as loudly as the old asserts.
fn tape_ok<T>(result: Result<T, TensorError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            assert!(false, "gate tape shape bug: {e}");
            unreachable!()
        }
    }
}

/// Unwraps a gate-construction result for the panicking convenience
/// constructors, failing as loudly as the pre-typed-error API did.
fn expect_valid(result: Result<DynamicGate, GateConfigError>) -> DynamicGate {
    match result {
        Ok(gate) => gate,
        Err(e) => {
            assert!(false, "{e}");
            unreachable!()
        }
    }
}

/// Fraction of examples assigned to each expert.
pub fn assignment_shares(assignment: &[usize], k: usize) -> Vec<f32> {
    let mut shares = vec![0.0f32; k];
    for &i in assignment {
        if let Some(share) = shares.get_mut(i) {
            *share += 1.0;
        }
    }
    let n = assignment.len().max(1) as f32;
    for s in &mut shares {
        *s /= n;
    }
    shares
}

/// Hard `Ḡ(x, δ) = argminᵢ δᵢ·H_i(x)` for every row.
pub fn weighted_argmin(entropy: &Tensor, delta: &[f32]) -> Vec<usize> {
    assert_eq!(
        entropy.dims().get(1).copied(),
        Some(delta.len()),
        "delta length mismatch"
    );
    (0..entropy.dims().first().copied().unwrap_or(0))
        .map(|r| {
            let row = entropy.row(r);
            let mut best = (f32::INFINITY, 0usize);
            for (i, (&h, &d)) in row.iter().zip(delta).enumerate() {
                let w = d * h;
                if w < best.0 {
                    best = (w, i);
                }
            }
            best.1
        })
        .collect()
}

/// The Eq. 4 objective evaluated on *hard* assignments:
/// `(1/K)·Σᵢ |γ̄ᵢ(δ) − targetᵢ|`.
fn hard_objective(entropy: &Tensor, delta: &[f32], target: &[f32], k: usize) -> f32 {
    let shares = assignment_shares(&weighted_argmin(entropy, delta), k);
    shares
        .iter()
        .zip(target)
        .map(|(&s, &t)| (s - t).abs())
        .sum::<f32>()
        / k as f32
}

/// Multiplies column i of `entropy` by `delta[i]` — the δ⊙H weighting.
fn weight_columns(entropy: &Tensor, delta: &[f32]) -> Tensor {
    let mut out = entropy.clone();
    for r in 0..out.dims().first().copied().unwrap_or(0) {
        for (v, &d) in out.row_mut(r).iter_mut().zip(delta) {
            *v *= d;
        }
    }
    out
}

/// Mean over the batch of `minᵢ |ḡ(x) − i|` for a given temperature — the
/// quantity the meta-estimator drives towards ε.
fn mean_soft_distance(entropy: &Tensor, b: f32) -> f32 {
    let n = entropy.dims().first().copied().unwrap_or(0);
    let k = entropy.dims().get(1).copied().unwrap_or(0);
    let soft = entropy.scale(-b).softmax_rows();
    let mut total = 0.0f32;
    for r in 0..n {
        let g: f32 = soft
            .row(r)
            .iter()
            .enumerate()
            .map(|(i, &p)| p * i as f32)
            .sum();
        let dist = (0..k)
            .map(|i| (g - i as f32).abs())
            .fold(f32::INFINITY, f32::min);
        total += dist;
    }
    total / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A batch whose raw arg-min is biased: expert 0 is more confident on
    /// `biased_n` of the `n` rows.
    fn biased_entropy(n: usize, biased_n: usize, k: usize, rng: &mut StdRng) -> Tensor {
        let mut h = Tensor::rand_uniform([n, k], 0.8, 1.2, rng);
        for r in 0..biased_n {
            h.set(&[r, 0], rng.gen_range(0.05..0.3));
        }
        h
    }

    #[test]
    fn controller_target_counteracts_bias() {
        let gate = DynamicGate::new(2, GateConfig::default(), 0);
        // Expert 0 hoards 80% → its target drops below ½, expert 1 rises.
        let target = gate.controller_target(&[0.8, 0.2]);
        assert!(target[0] < 0.5, "{target:?}");
        assert!(target[1] > 0.5, "{target:?}");
        assert!((target.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        // Balanced input → balanced target.
        let balanced = gate.controller_target(&[0.5, 0.5]);
        assert!((balanced[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn controller_target_clamps_to_simplex() {
        let gate = DynamicGate::new(
            4,
            GateConfig {
                gain: 0.9,
                ..GateConfig::default()
            },
            0,
        );
        let target = gate.controller_target(&[1.0, 0.0, 0.0, 0.0]);
        assert!(
            target.iter().all(|&t| (0.0..=1.0).contains(&t)),
            "{target:?}"
        );
        assert!((target.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn shares_and_weighted_argmin() {
        assert_eq!(assignment_shares(&[0, 1, 1, 1], 2), vec![0.25, 0.75]);
        let h = Tensor::from_vec(vec![1.0, 2.0, 2.0, 1.0], [2, 2]).unwrap();
        assert_eq!(weighted_argmin(&h, &[1.0, 1.0]), vec![0, 1]);
        // Handicapping expert 0 by 3× flips the first row.
        assert_eq!(weighted_argmin(&h, &[3.0, 1.0]), vec![1, 1]);
    }

    #[test]
    fn gate_corrects_a_biased_batch() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gate = DynamicGate::new(2, GateConfig::default(), 7);
        // 75% of rows favour expert 0.
        let h = biased_entropy(64, 48, 2, &mut rng);
        let decision = gate.assign(&h);
        assert!(decision.gamma[0] > 0.65, "raw bias {:?}", decision.gamma);
        // The corrected assignment must hand expert 0 *less* than its raw
        // share, pushing towards the controller target.
        assert!(
            decision.gamma_bar[0] < decision.gamma[0] - 0.05,
            "gamma_bar {:?} should undercut gamma {:?}",
            decision.gamma_bar,
            decision.gamma
        );
        assert_eq!(decision.assignment.len(), 64);
        assert!(decision.iterations >= 1);
        assert!(decision.delta.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn balanced_batch_stays_balanced() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut gate = DynamicGate::new(2, GateConfig::default(), 8);
        // Unbiased noise: raw shares near 50/50 already.
        let h = Tensor::rand_uniform([200, 2], 0.5, 1.5, &mut rng);
        let decision = gate.assign(&h);
        assert!(
            (decision.gamma_bar[0] - 0.5).abs() < 0.15,
            "{:?}",
            decision.gamma_bar
        );
    }

    #[test]
    fn four_expert_gate_runs() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut gate = DynamicGate::new(4, GateConfig::default(), 10);
        let h = biased_entropy(80, 50, 4, &mut rng);
        let decision = gate.assign(&h);
        assert_eq!(decision.delta.len(), 4);
        assert_eq!(decision.gamma_bar.len(), 4);
        assert!((decision.gamma_bar.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        // Correction must pull expert 0 down from its hoard.
        assert!(decision.gamma_bar[0] < decision.gamma[0]);
    }

    #[test]
    fn temperature_selection_prefers_moderate_b() {
        let mut rng = StdRng::seed_from_u64(11);
        let gate = DynamicGate::new(2, GateConfig::default(), 12);
        let h = Tensor::rand_uniform([50, 2], 0.2, 1.8, &mut rng);
        let b = gate.select_temperature(&h);
        assert!((0.5..=128.0).contains(&b));
        // The chosen temperature's softness should be closest to ε among
        // the candidates by construction; sanity-check it is finite.
        assert!(mean_soft_distance(&h, b).is_finite());
    }

    #[test]
    fn soft_distance_decreases_with_temperature() {
        let mut rng = StdRng::seed_from_u64(13);
        let h = Tensor::rand_uniform([50, 3], 0.2, 1.8, &mut rng);
        let soft = mean_soft_distance(&h, 0.5);
        let hard = mean_soft_distance(&h, 64.0);
        assert!(hard < soft, "b=64 gives {hard}, b=0.5 gives {soft}");
    }

    #[test]
    #[should_panic(expected = "at least two experts")]
    fn rejects_single_expert() {
        DynamicGate::new(1, GateConfig::default(), 0);
    }

    #[test]
    #[should_panic(expected = "gain must be in")]
    fn rejects_bad_gain() {
        DynamicGate::new(
            2,
            GateConfig {
                gain: 1.5,
                ..GateConfig::default()
            },
            0,
        );
    }

    #[test]
    fn custom_set_point_steers_shares() {
        let mut rng = StdRng::seed_from_u64(30);
        let mut gate = DynamicGate::with_set_point(vec![0.75, 0.25], GateConfig::default(), 31);
        assert_eq!(gate.set_point(), &[0.75, 0.25]);
        // Unbiased noise input: raw shares ~0.5, so the proportional
        // controller demands a single-batch share *above* the set point
        // (it corrects the cumulative deficit). Check against the actual
        // controller target.
        let h = Tensor::rand_uniform([200, 2], 0.5, 1.5, &mut rng);
        let decision = gate.assign(&h);
        let target = gate.controller_target(&decision.gamma);
        assert!(
            (decision.gamma_bar[0] - target[0]).abs() < 0.1,
            "gamma_bar {:?} should approach target {target:?}",
            decision.gamma_bar
        );
        assert!(
            decision.gamma_bar[0] > 0.6,
            "expert 0 must be favoured: {:?}",
            decision.gamma_bar
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_non_simplex_set_point() {
        DynamicGate::with_set_point(vec![0.9, 0.9], GateConfig::default(), 0);
    }

    #[test]
    fn validate_reports_the_offending_field() {
        assert_eq!(GateConfig::default().validate(), Ok(()));
        let bad = |c: GateConfig| c.validate().expect_err("must be rejected");
        assert_eq!(
            bad(GateConfig {
                gain: 1.5,
                ..GateConfig::default()
            }),
            GateConfigError::Gain(1.5)
        );
        assert_eq!(
            bad(GateConfig {
                epsilon: 0.0,
                ..GateConfig::default()
            }),
            GateConfigError::Epsilon(0.0)
        );
        assert_eq!(
            bad(GateConfig {
                learning_rate: -1.0,
                ..GateConfig::default()
            }),
            GateConfigError::LearningRate(-1.0)
        );
        assert_eq!(
            bad(GateConfig {
                latent_dim: 0,
                ..GateConfig::default()
            }),
            GateConfigError::MlpDims {
                latent_dim: 0,
                hidden_dim: 16
            }
        );
        assert_eq!(
            bad(GateConfig {
                kron_scale: 0.0,
                ..GateConfig::default()
            }),
            GateConfigError::KronScale(0.0)
        );
        assert_eq!(
            bad(GateConfig {
                softness: 0.5,
                ..GateConfig::default()
            }),
            GateConfigError::Softness(0.5)
        );
        // NaN fields must be rejected, not silently accepted.
        assert!(matches!(
            bad(GateConfig {
                gain: f32::NAN,
                ..GateConfig::default()
            }),
            GateConfigError::Gain(g) if g.is_nan()
        ));
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert_eq!(
            DynamicGate::try_new(1, GateConfig::default(), 0).err(),
            Some(GateConfigError::TooFewExperts(1))
        );
        assert_eq!(
            DynamicGate::try_with_set_point(vec![0.9, 0.9], GateConfig::default(), 0).err(),
            Some(GateConfigError::SetPointSum(1.8))
        );
        assert_eq!(
            DynamicGate::try_with_set_point(vec![1.5, -0.5], GateConfig::default(), 0).err(),
            Some(GateConfigError::SetPointNotPositive(-0.5))
        );
        let ok = DynamicGate::try_new(2, GateConfig::default(), 0);
        assert!(ok.is_ok());
    }

    #[test]
    fn config_error_display_is_stable() {
        // The panicking wrappers surface these strings; downstream
        // should_panic tests match on their prefixes.
        assert!(GateConfigError::Gain(1.5)
            .to_string()
            .starts_with("gain must be in (0, 1)"));
        assert!(GateConfigError::TooFewExperts(1)
            .to_string()
            .contains("at least two experts"));
        assert!(GateConfigError::SetPointSum(1.8)
            .to_string()
            .contains("sum to 1, got 1.8"));
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(20);
        let h = biased_entropy(32, 20, 2, &mut rng);
        let d1 = DynamicGate::new(2, GateConfig::default(), 3).assign(&h);
        let d2 = DynamicGate::new(2, GateConfig::default(), 3).assign(&h);
        assert_eq!(d1, d2);
    }
}
