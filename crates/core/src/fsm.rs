//! Pure protocol transition functions (DESIGN.md §15).
//!
//! Every message handler of the TeamNet wire protocol lives here as a
//! **pure transition function**: `step(state, event) -> (state',
//! outbound messages)`, with clocks, RNG and IO injected by the caller.
//! The production shells — [`serve_worker_with_config`], the gather leg
//! of [`InferenceSession::infer`], and
//! [`RecoveryManager`]'s transfer driver — own the transports, deadlines
//! and backoff; the *decisions* (what a frame means, what state changes,
//! what goes back on the wire) are all made by the types in this module.
//!
//! That split is what makes the protocol model-checkable: `cargo xtask mc`
//! drives these exact transition functions — not a parallel spec that can
//! drift — through an exhaustive bounded search over message
//! interleavings with a fault adversary, checking memory-stranding,
//! budget-soundness, idempotence and termination invariants. The
//! `fsm-conformance` audit pass closes the loop statically: any
//! [`PayloadKind`] dispatch added to core *outside* this module is an
//! audit failure, so new protocol surface cannot bypass the checked
//! state machines.
//!
//! [`serve_worker_with_config`]: crate::runtime::serve_worker_with_config
//! [`InferenceSession::infer`]: crate::runtime::InferenceSession::infer
//! [`RecoveryManager`]: crate::recover::RecoveryManager

use crate::recover::{
    AckStatus, ChunkOutcome, HostBudget, LoadAckMsg, LoadChunkMsg, LoadExpertMsg, PartialLoad,
    TransferManifest,
};
use crate::runtime::{decode_result_set, WorkerStats, TAG_INPUT, TAG_RESULT};
use crate::team::TeamPrediction;
use std::collections::BTreeMap;
use teamnet_net::{Envelope, NetError, PayloadKind, Tag};

/// A message a transition function wants sent. The shell owns the actual
/// transport (and its retries/backoff); a model checker just moves the
/// frame into its simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutboundMsg {
    /// Destination node id.
    pub to: usize,
    /// Transport tag the frame travels under.
    pub tag: Tag,
    /// The envelope to encode onto the wire.
    pub env: Envelope,
}

impl OutboundMsg {
    /// Encodes the envelope for the wire.
    pub fn encode(&self) -> Vec<u8> {
        self.env.encode()
    }

    /// Encodes the envelope stamped with a trace context. The FSM itself
    /// stays trace-free (pure protocol state); the IO shell attaches
    /// causality at the send site, which `cargo xtask audit`'s
    /// `trace-propagation` rule enforces.
    pub fn encode_traced(&self, ctx: teamnet_net::TraceContext) -> Vec<u8> {
        self.env.clone().with_trace(ctx).encode()
    }
}

/// Side effects a [`WorkerFsm`] needs performed but must not perform
/// itself: running the expert forward pass and materializing /
/// dematerializing hosted expert models. The production implementation
/// decodes tensors and builds real [`Sequential`] models; the model
/// checker substitutes canned results so exploration stays cheap and
/// deterministic.
///
/// Everything *protocol-visible* — budget admission, reassembly cursors,
/// CRC verification, ack selection — happens inside the FSM, so a mocked
/// hook cannot change protocol behavior.
///
/// [`Sequential`]: teamnet_nn::Sequential
pub trait WorkerHooks {
    /// Runs the input batch through the local expert (and every hosted
    /// expert) and returns the encoded result payload for the reply.
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] when the input payload does not decode into
    /// a tensor; the FSM counts it as malformed and sends no reply.
    fn forward(&mut self, input_payload: &[u8]) -> Result<Vec<u8>, NetError>;

    /// Builds and retains the hosted expert from its verified serialized
    /// state. Called only after the FSM has verified length and CRC
    /// against the manifest.
    ///
    /// # Errors
    ///
    /// Any error makes the FSM answer [`AckStatus::Failed`]; the partial
    /// state has already been freed either way.
    fn install(
        &mut self,
        expert: u32,
        manifest: &TransferManifest,
        state: &[u8],
    ) -> Result<(), NetError>;

    /// Drops a previously installed hosted expert (release or abort).
    fn evict(&mut self, expert: u32);
}

/// A migrated expert resident on a worker, as the protocol sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostedExpert {
    /// Certified bytes charged against the [`HostBudget`] while resident.
    pub resident_bytes: u64,
    /// Round stamp of the transfer frame that (most recently) confirmed
    /// residency; a round-matching [`LoadExpertMsg::Abort`] evicts.
    pub round: u64,
}

/// An in-flight transfer reassembly, tagged with the round of the
/// transfer driving it so a stale abort from an older attempt cannot
/// clear a newer transfer's progress.
#[derive(Debug, Clone)]
struct PendingTransfer {
    load: PartialLoad,
    round: u64,
}

/// Deliberate protocol defects, kept compiled-in as the model checker's
/// negative control: `cargo xtask mc` re-runs its exploration against a
/// mutated [`WorkerFsm`] every invocation and fails if the mutant does
/// *not* produce an invariant violation — proving the checker can still
/// see the class of bug it exists to prevent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsmMutation {
    /// The production transition function.
    #[default]
    None,
    /// Reverts the pre-§15 handler behavior: a chunk or offer for an
    /// already-resident expert answers [`AckStatus::Failed`] / restarts
    /// the transfer instead of re-acking [`AckStatus::Done`], and aborts
    /// ignore round stamps and never evict residents. Under a dropped
    /// final Done ack the master retries, reads `Failed`, backtracks
    /// without an effective abort — and the receiver's memory is
    /// stranded (hosted and budget-charged with no placement pointing at
    /// it).
    StrandOnLostFinalAck,
}

/// The worker side of the protocol as one pure state machine: answers
/// probes and input broadcasts, admits / reassembles / releases migrated
/// experts, and re-acknowledges duplicates idempotently. Extracted from
/// (and driven by) [`serve_worker_with_config`]; also driven exhaustively
/// by `cargo xtask mc`.
///
/// [`serve_worker_with_config`]: crate::runtime::serve_worker_with_config
#[derive(Debug, Clone)]
pub struct WorkerFsm {
    master: usize,
    budget: HostBudget,
    hosted: BTreeMap<u32, HostedExpert>,
    partial: Option<PendingTransfer>,
    /// Abort tombstones: per expert, the highest round an abort has been
    /// processed for. An `Offer` or chunk stamped at or below the
    /// tombstone belongs to an attempt the master already gave up on and
    /// is answered `Failed` without touching state — otherwise an abort
    /// that overtakes its own delayed offer (both are in flight when a
    /// master deadline expires) would let the late offer open a partial
    /// that nothing ever closes. Found by `cargo xtask mc` during
    /// bring-up; see DESIGN.md §15.
    aborted: BTreeMap<u32, u64>,
    stats: WorkerStats,
    mutation: FsmMutation,
}

impl WorkerFsm {
    /// A worker state machine answering to `master`, admitting transfers
    /// against `budget`.
    pub fn new(master: usize, budget: HostBudget) -> Self {
        WorkerFsm::with_mutation(master, budget, FsmMutation::None)
    }

    /// [`WorkerFsm::new`] with a deliberate defect armed (model-checker
    /// negative control only).
    pub fn with_mutation(master: usize, budget: HostBudget, mutation: FsmMutation) -> Self {
        WorkerFsm {
            master,
            budget,
            hosted: BTreeMap::new(),
            partial: None,
            aborted: BTreeMap::new(),
            stats: WorkerStats::default(),
            mutation,
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> WorkerStats {
        self.stats
    }

    /// The admission budget (capacity, runtime and hosted charges).
    pub fn budget(&self) -> &HostBudget {
        &self.budget
    }

    /// Migrated experts currently resident.
    pub fn hosted(&self) -> &BTreeMap<u32, HostedExpert> {
        &self.hosted
    }

    /// The in-flight reassembly, if any: `(expert, next_expected_chunk,
    /// transfer_round)`.
    pub fn partial(&self) -> Option<(u32, u32, u64)> {
        self.partial
            .as_ref()
            .map(|p| (p.load.expert(), p.load.next_expected(), p.round))
    }

    /// Canonical byte encoding of the *protocol* state — everything that
    /// determines future transitions, deliberately excluding the
    /// [`WorkerStats`] counters (duplicates bump counters; a model
    /// checker's dedup and idempotence checks must not see that as a new
    /// state).
    pub fn canonical_protocol_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.master as u64).to_le_bytes());
        out.extend_from_slice(&self.budget.capacity_bytes().to_le_bytes());
        out.extend_from_slice(&self.budget.runtime_bytes().to_le_bytes());
        out.extend_from_slice(&self.budget.hosted_bytes().to_le_bytes());
        out.extend_from_slice(&(self.hosted.len() as u64).to_le_bytes());
        for (id, h) in &self.hosted {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&h.resident_bytes.to_le_bytes());
            out.extend_from_slice(&h.round.to_le_bytes());
        }
        match &self.partial {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.load.expert().to_le_bytes());
                out.extend_from_slice(&p.load.next_expected().to_le_bytes());
                out.extend_from_slice(&p.round.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.aborted.len() as u64).to_le_bytes());
        for (id, round) in &self.aborted {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&round.to_le_bytes());
        }
        out
    }

    /// True when `round` belongs to a transfer attempt of `expert` that an
    /// already-processed abort has declared dead.
    fn attempt_is_dead(&self, expert: u32, round: u64) -> bool {
        self.aborted.get(&expert).is_some_and(|&r| round <= r)
    }

    fn ack(&self, round: u64, ack: LoadAckMsg) -> OutboundMsg {
        OutboundMsg {
            to: self.master,
            tag: TAG_RESULT,
            env: Envelope::new(round, PayloadKind::LoadAck, ack.encode()),
        }
    }

    fn install_verified(
        &mut self,
        expert: u32,
        round: u64,
        load: PartialLoad,
        hooks: &mut dyn WorkerHooks,
    ) -> LoadAckMsg {
        match load.verify().and_then(|(manifest, state)| {
            match hooks.install(expert, &manifest, &state) {
                Ok(()) => Ok(manifest.required_resident_bytes),
                Err(e) => Err(e),
            }
        }) {
            Ok(resident) => {
                self.budget.charge(resident);
                self.hosted.insert(
                    expert,
                    HostedExpert {
                        resident_bytes: resident,
                        round,
                    },
                );
                LoadAckMsg {
                    expert,
                    status: AckStatus::Done,
                    arg: 0,
                }
            }
            Err(_) => LoadAckMsg {
                expert,
                status: AckStatus::Failed,
                arg: 0,
            },
        }
    }

    /// Feeds one received frame (as raw bytes off the input tag) through
    /// the worker state machine, returning whatever should be sent back.
    /// Corrupt or malformed traffic is counted and produces no reply; a
    /// frame kind the worker never legitimately receives (`Result`,
    /// `ProbeAck`, `LoadAck`) is an explicit typed rejection, likewise
    /// counted.
    ///
    /// Duplicate deliveries are idempotent on protocol state: a re-offer
    /// or re-chunk for an already-resident expert re-acks
    /// [`AckStatus::Done`]; duplicate chunks re-report the cursor;
    /// duplicate releases and aborts are no-ops.
    ///
    /// # Errors
    ///
    /// Only transport-level decode failures other than
    /// [`NetError::Corrupt`] / [`NetError::Malformed`] propagate (the
    /// serve shell treats those as fatal, exactly as before the
    /// extraction).
    pub fn step(
        &mut self,
        bytes: &[u8],
        hooks: &mut dyn WorkerHooks,
    ) -> Result<Vec<OutboundMsg>, NetError> {
        let env = match Envelope::decode(bytes) {
            Ok(env) => env,
            Err(NetError::Corrupt { .. } | NetError::Malformed(_)) => {
                self.stats.malformed_skipped += 1;
                return Ok(Vec::new());
            }
            Err(e) => return Err(e),
        };
        let reply = match env.kind {
            PayloadKind::Probe => {
                self.stats.probes_answered += 1;
                Some(OutboundMsg {
                    to: self.master,
                    tag: TAG_RESULT,
                    env: Envelope::new(env.round, PayloadKind::ProbeAck, Vec::new()),
                })
            }
            PayloadKind::Input => match hooks.forward(&env.payload) {
                Ok(payload) => {
                    self.stats.rounds_served += 1;
                    Some(OutboundMsg {
                        to: self.master,
                        tag: TAG_RESULT,
                        env: Envelope::new(env.round, PayloadKind::Result, payload),
                    })
                }
                Err(_) => {
                    self.stats.malformed_skipped += 1;
                    None
                }
            },
            PayloadKind::LoadExpert => match LoadExpertMsg::decode(&env.payload) {
                Ok(LoadExpertMsg::Offer {
                    expert: id,
                    manifest,
                }) => {
                    if self.attempt_is_dead(id, env.round) {
                        // The abort for this attempt overtook the offer
                        // (deadline expiry reorders them): the attempt is
                        // dead, so opening a partial here would strand
                        // receiver memory forever. Typed rejection, no
                        // state touched.
                        self.stats.loads_refused += 1;
                        Some(self.ack(
                            env.round,
                            LoadAckMsg {
                                expert: id,
                                status: AckStatus::Failed,
                                arg: 0,
                            },
                        ))
                    } else if self.hosted.contains_key(&id) && self.mutation == FsmMutation::None {
                        // Idempotent re-offer: the expert is already
                        // resident (our earlier Done ack was lost).
                        // Refresh the residency round so a round-matching
                        // abort of *this* attempt can still evict, and
                        // re-ack Done instead of double-charging a
                        // restarted transfer.
                        if let Some(h) = self.hosted.get_mut(&id) {
                            h.round = env.round;
                        }
                        Some(self.ack(
                            env.round,
                            LoadAckMsg {
                                expert: id,
                                status: AckStatus::Done,
                                arg: 0,
                            },
                        ))
                    } else if !self.budget.admit(manifest.required_resident_bytes) {
                        self.stats.loads_refused += 1;
                        let spare = self.budget.spare();
                        Some(self.ack(
                            env.round,
                            LoadAckMsg {
                                expert: id,
                                status: AckStatus::Refuse,
                                arg: spare,
                            },
                        ))
                    } else if manifest.num_chunks == 0 {
                        // Degenerate empty-state transfer: complete at
                        // the offer.
                        self.stats.loads_accepted += 1;
                        let ack = self.install_verified(
                            id,
                            env.round,
                            PartialLoad::begin(id, manifest),
                            hooks,
                        );
                        Some(self.ack(env.round, ack))
                    } else {
                        // Resume a matching interrupted transfer instead
                        // of restarting from chunk zero.
                        let next = match &mut self.partial {
                            Some(p) if p.load.matches(id, &manifest) => {
                                p.round = env.round;
                                p.load.next_expected()
                            }
                            None | Some(_) => {
                                self.partial = Some(PendingTransfer {
                                    load: PartialLoad::begin(id, manifest),
                                    round: env.round,
                                });
                                0
                            }
                        };
                        self.stats.loads_accepted += 1;
                        Some(self.ack(
                            env.round,
                            LoadAckMsg {
                                expert: id,
                                status: AckStatus::Accept,
                                arg: u64::from(next),
                            },
                        ))
                    }
                }
                Ok(LoadExpertMsg::Release { expert: id }) => {
                    if let Some(h) = self.hosted.remove(&id) {
                        self.budget.release(h.resident_bytes);
                        hooks.evict(id);
                    }
                    Some(self.ack(
                        env.round,
                        LoadAckMsg {
                            expert: id,
                            status: AckStatus::Done,
                            arg: 0,
                        },
                    ))
                }
                Ok(LoadExpertMsg::Abort { expert: id }) => {
                    // Free the partial state; no reply — the master is
                    // not waiting on an abort. Aborts are round-scoped:
                    // only the transfer attempt they were issued for is
                    // undone, so a stale abort from an older attempt
                    // cannot clear a newer transfer's progress — and an
                    // abort that *does* match a completed install evicts
                    // the resident, keeping worker memory consistent with
                    // a master that gave this attempt up. The tombstone
                    // additionally kills the attempt's *future* frames, in
                    // case the abort overtook them in flight.
                    let dead = self.aborted.entry(id).or_insert(0);
                    *dead = (*dead).max(env.round);
                    match self.mutation {
                        FsmMutation::None => {
                            if self
                                .partial
                                .as_ref()
                                .is_some_and(|p| p.load.expert() == id && p.round == env.round)
                            {
                                self.partial = None;
                            }
                            if self.hosted.get(&id).is_some_and(|h| h.round == env.round) {
                                if let Some(h) = self.hosted.remove(&id) {
                                    self.budget.release(h.resident_bytes);
                                    hooks.evict(id);
                                }
                            }
                        }
                        FsmMutation::StrandOnLostFinalAck => {
                            // Pre-§15 behavior: clear any matching partial
                            // regardless of round, never evict residents.
                            if self.partial.as_ref().is_some_and(|p| p.load.expert() == id) {
                                self.partial = None;
                            }
                        }
                    }
                    None
                }
                Err(_) => {
                    self.stats.malformed_skipped += 1;
                    None
                }
            },
            PayloadKind::LoadChunk => match LoadChunkMsg::decode(&env.payload) {
                Ok(msg) => {
                    self.stats.chunks_received += 1;
                    let ack = if self.attempt_is_dead(msg.expert, env.round) {
                        // Stale chunk from an aborted attempt: rejecting it
                        // without touching state also keeps a live
                        // resident's round stamp from being refreshed
                        // *backwards* into tombstoned territory (where a
                        // duplicate abort could wrongly evict it).
                        LoadAckMsg {
                            expert: msg.expert,
                            status: AckStatus::Failed,
                            arg: 0,
                        }
                    } else if self.hosted.contains_key(&msg.expert)
                        && self.mutation == FsmMutation::None
                    {
                        // Idempotent re-chunk after a lost Done ack: the
                        // transfer already completed here. Re-ack Done
                        // (refreshing the residency round) instead of
                        // failing the master into a backtrack that
                        // strands this resident.
                        if let Some(h) = self.hosted.get_mut(&msg.expert) {
                            h.round = env.round;
                        }
                        LoadAckMsg {
                            expert: msg.expert,
                            status: AckStatus::Done,
                            arg: 0,
                        }
                    } else {
                        match self.partial.take() {
                            Some(mut p) if p.load.expert() == msg.expert => {
                                match p.load.accept_chunk(&msg) {
                                    ChunkOutcome::Progress(next) => {
                                        p.round = env.round;
                                        self.partial = Some(p); // still in flight
                                        LoadAckMsg {
                                            expert: msg.expert,
                                            status: AckStatus::ChunkOk,
                                            arg: u64::from(next),
                                        }
                                    }
                                    ChunkOutcome::Complete => {
                                        self.install_verified(msg.expert, env.round, p.load, hooks)
                                    }
                                }
                            }
                            // A chunk with no transfer open (worker
                            // restarted, or the transfer was aborted), or
                            // for a different expert than the parked
                            // transfer: fail fast so the master re-offers
                            // or backtracks.
                            other => {
                                self.partial = other;
                                LoadAckMsg {
                                    expert: msg.expert,
                                    status: AckStatus::Failed,
                                    arg: 0,
                                }
                            }
                        }
                    };
                    Some(self.ack(env.round, ack))
                }
                Err(_) => {
                    self.stats.malformed_skipped += 1;
                    None
                }
            },
            // Result/ProbeAck/LoadAck flowing master → worker is a
            // protocol error; each is an explicit typed rejection — skip
            // it rather than dying.
            PayloadKind::Result => {
                self.stats.malformed_skipped += 1;
                None
            }
            PayloadKind::ProbeAck => {
                self.stats.malformed_skipped += 1;
                None
            }
            PayloadKind::LoadAck => {
                self.stats.malformed_skipped += 1;
                None
            }
        };
        Ok(reply.into_iter().collect())
    }
}

/// Why a gather frame was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherDiscard {
    /// Round stamp belongs to another round (late reply, duplicate, or a
    /// reply destined for a concurrent sibling session sharing this
    /// transport). `seen` is the stamp the frame actually carried, so
    /// the shell can route the frame to the session that owns it
    /// instead of dropping it on the floor (DESIGN.md §16).
    Stale {
        /// The round stamp found on the discarded frame.
        seen: u64,
    },
    /// Envelope CRC mismatch.
    Corrupt,
    /// Undecodable envelope, payload, or wrong-shaped results.
    Malformed,
}

/// Outcome of feeding one gather frame to a [`GatherFsm`].
#[derive(Debug)]
pub enum GatherVerdict {
    /// The peer's reply was consumed and proves liveness; `folded` is
    /// true when it carried result rows (false for a probe ack).
    Accepted {
        /// Whether result rows were folded into the running argmin.
        folded: bool,
    },
    /// The frame was discarded; keep waiting for this peer.
    Discarded(GatherDiscard),
    /// Strict mode (`require_all_workers`): the round must fail with this
    /// error.
    Fatal(NetError),
}

/// The master's gather-leg state machine: classifies each frame received
/// from a worker (stale / corrupt / malformed / probe ack / results) and
/// folds accepted result sets into the paper's Figure-4 running
/// arg-min-entropy. Extracted from [`InferenceSession::infer`]; also
/// driven exhaustively by `cargo xtask mc`.
///
/// [`InferenceSession::infer`]: crate::runtime::InferenceSession::infer
#[derive(Debug, Clone)]
pub struct GatherFsm {
    round: u64,
    rows: usize,
    strict: bool,
    calibration: Option<Vec<f32>>,
    best: Vec<TeamPrediction>,
    best_weighted: Vec<f32>,
}

impl GatherFsm {
    /// Opens the gather for `round` over an `rows`-row batch, seeded with
    /// the master's own `local` results (node `me`). `strict` mirrors
    /// `require_all_workers`: undecodable replies fail the round instead
    /// of being discarded.
    pub fn new(
        round: u64,
        me: usize,
        rows: usize,
        local: Vec<(usize, f32)>,
        calibration: Option<Vec<f32>>,
        strict: bool,
    ) -> Self {
        let me_weight = weight_of(&calibration, me);
        let best: Vec<TeamPrediction> = local
            .into_iter()
            .map(|(label, h)| TeamPrediction {
                label,
                expert: me,
                entropy: h,
            })
            .collect();
        let best_weighted: Vec<f32> = best.iter().map(|p| p.entropy * me_weight).collect();
        GatherFsm {
            round,
            rows,
            strict,
            calibration,
            best,
            best_weighted,
        }
    }

    /// Classifies one frame received from `peer` on the result tag and,
    /// for a well-formed current-round result set, folds it into the
    /// running argmin.
    pub fn step(&mut self, peer: usize, bytes: &[u8]) -> GatherVerdict {
        let env = match Envelope::decode(bytes) {
            Ok(env) => env,
            Err(e @ NetError::Corrupt { .. }) => {
                return if self.strict {
                    GatherVerdict::Fatal(e)
                } else {
                    GatherVerdict::Discarded(GatherDiscard::Corrupt)
                };
            }
            Err(e) => {
                return if self.strict {
                    GatherVerdict::Fatal(e)
                } else {
                    GatherVerdict::Discarded(GatherDiscard::Malformed)
                };
            }
        };
        if let Err(NetError::Stale { .. }) = env.expect_round(self.round) {
            // A reply stamped for some other round (late, duplicated, or
            // owned by a concurrent session on the same transport): never
            // score it against this batch. Stale traffic is discarded
            // even in strict mode — consuming it would silently corrupt
            // the answer — but the verdict carries the stamp so the
            // shell can hand the frame to the session that owns it.
            return GatherVerdict::Discarded(GatherDiscard::Stale { seen: env.round });
        }
        match env.kind {
            PayloadKind::Result => {
                // A peer hosting migrated experts replies with a result
                // *set*; a legacy single-matrix reply is attributed to
                // the peer's own expert.
                let sets = match decode_result_set(&env.payload, peer) {
                    Ok(sets) => sets,
                    Err(e) => {
                        return if self.strict {
                            GatherVerdict::Fatal(e)
                        } else {
                            GatherVerdict::Discarded(GatherDiscard::Malformed)
                        };
                    }
                };
                if let Some((expert_id, results)) = sets.iter().find(|(_, r)| r.len() != self.rows)
                {
                    let e = NetError::Malformed(format!(
                        "worker {peer} returned {} rows for expert {expert_id} \
                         on a {}-row batch",
                        results.len(),
                        self.rows
                    ));
                    return if self.strict {
                        GatherVerdict::Fatal(e)
                    } else {
                        GatherVerdict::Discarded(GatherDiscard::Malformed)
                    };
                }
                // The paper's Figure 4 arg-min: keep the
                // lowest-weighted-entropy answer per row. Each expert
                // keeps its own identity and calibration weight,
                // whichever node computed it.
                for (expert_id, results) in sets {
                    let weight = weight_of(&self.calibration, expert_id);
                    let slots = self.best_weighted.iter_mut().zip(self.best.iter_mut());
                    for ((label, h), (current, winner)) in results.into_iter().zip(slots) {
                        let weighted = h * weight;
                        if weighted < *current {
                            *current = weighted;
                            *winner = TeamPrediction {
                                label,
                                expert: expert_id,
                                entropy: h,
                            };
                        }
                    }
                }
                GatherVerdict::Accepted { folded: true }
            }
            // A probe ack proves liveness; it carries no rows.
            PayloadKind::ProbeAck => GatherVerdict::Accepted { folded: false },
            // Stray transfer-protocol traffic (a duplicate LoadAck from a
            // recovery exchange, or a reflected LoadExpert/LoadChunk) is
            // never part of a gather; discard it and keep waiting. Acks
            // to live transfers carry their own round stamps, so they are
            // caught by the staleness check above before reaching here.
            // Input and Probe flowing worker → master are equally
            // impossible; all five are explicit typed rejections.
            PayloadKind::LoadAck => GatherVerdict::Discarded(GatherDiscard::Malformed),
            PayloadKind::LoadExpert => GatherVerdict::Discarded(GatherDiscard::Malformed),
            PayloadKind::LoadChunk => GatherVerdict::Discarded(GatherDiscard::Malformed),
            PayloadKind::Input => GatherVerdict::Discarded(GatherDiscard::Malformed),
            PayloadKind::Probe => GatherVerdict::Discarded(GatherDiscard::Malformed),
        }
    }

    /// The final per-row winners after all peers have been gathered.
    pub fn into_predictions(self) -> Vec<TeamPrediction> {
        self.best
    }
}

fn weight_of(calibration: &Option<Vec<f32>>, node: usize) -> f32 {
    calibration
        .as_ref()
        .and_then(|c| c.get(node))
        .copied()
        .unwrap_or(1.0)
}

/// Why a [`TransferFsm`] concluded in failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// The worker's own budget refused the offer; contains its actual
    /// spare bytes.
    RefusedOffer {
        /// Spare bytes the worker reported.
        spare: u64,
    },
    /// The worker refused mid-transfer (a refuse ack after streaming
    /// began).
    RefusedMidTransfer,
    /// The worker reported [`AckStatus::Failed`]: its partial state is
    /// already freed, no abort needed.
    WorkerFailed,
    /// The offer was answered with an ack that makes no protocol sense;
    /// abort so the worker frees anything it holds.
    BadOfferAck(AckStatus),
}

impl TransferFault {
    /// Whether the master must send an abort so the worker frees partial
    /// state ([`AckStatus::Failed`] and refusals imply the worker holds
    /// nothing).
    pub fn needs_abort(&self) -> bool {
        matches!(self, TransferFault::BadOfferAck(_))
    }
}

/// Phase of a master-side transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferPhase {
    /// Offer sent, awaiting the admission verdict.
    Offering,
    /// Streaming chunks under the stop-and-wait ARQ.
    Streaming,
    /// Worker confirmed the expert resident.
    Complete,
    /// Transfer concluded in failure; see the fault for whether an abort
    /// is owed.
    Failed(TransferFault),
}

/// The master side of one expert transfer as a pure state machine: which
/// frame to send next, which acks belong to this transfer, and how each
/// ack advances (or concludes) it. The IO shell —
/// [`RecoveryManager`](crate::recover::RecoveryManager) — owns resend
/// backoff, deadlines and the abort/backtrack bookkeeping; `cargo xtask
/// mc` owns them in the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferFsm {
    expert: u32,
    target: usize,
    round: u64,
    num_chunks: u32,
    next: u32,
    phase: TransferPhase,
}

impl TransferFsm {
    /// Starts a transfer of `expert` to `target`, stamped `round`, with
    /// the state split into `num_chunks` chunks.
    pub fn new(expert: u32, target: usize, round: u64, num_chunks: u32) -> Self {
        TransferFsm {
            expert,
            target,
            round,
            num_chunks,
            next: 0,
            phase: TransferPhase::Offering,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> TransferPhase {
        self.phase
    }

    /// The round every frame of this transfer is stamped with.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The worker this transfer targets.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Backoff-jitter salt for the in-flight exchange (0 for the offer,
    /// `index + 1` for chunk `index`), mirroring the pre-§15 seeding so
    /// retry schedules replay identically.
    pub fn exchange_salt(&self) -> u64 {
        match self.phase {
            TransferPhase::Offering => 0,
            TransferPhase::Streaming | TransferPhase::Complete | TransferPhase::Failed(_) => {
                u64::from(self.next.min(self.num_chunks.saturating_sub(1))) + 1
            }
        }
    }

    /// The frame the master should (re)send right now: the offer while
    /// offering, the cursor's chunk while streaming, nothing once
    /// concluded.
    pub fn current_frame(
        &self,
        manifest: &TransferManifest,
        state: &[u8],
        chunk_bytes: usize,
    ) -> Option<OutboundMsg> {
        match self.phase {
            TransferPhase::Offering => Some(offer_frame(
                self.target,
                self.round,
                self.expert,
                manifest.clone(),
            )),
            TransferPhase::Streaming => {
                let chunk_bytes = chunk_bytes.max(1);
                let index = self.next.min(self.num_chunks.saturating_sub(1));
                let lo = index as usize * chunk_bytes;
                let hi = (lo + chunk_bytes).min(state.len());
                let payload = LoadChunkMsg {
                    expert: self.expert,
                    index,
                    data: state.get(lo..hi).unwrap_or_default().to_vec(),
                };
                Some(OutboundMsg {
                    to: self.target,
                    tag: TAG_INPUT,
                    env: Envelope::new(self.round, PayloadKind::LoadChunk, payload.encode()),
                })
            }
            TransferPhase::Complete | TransferPhase::Failed(_) => None,
        }
    }

    /// Filters a received envelope down to this transfer's ack, if it is
    /// one (right kind, right round, right expert).
    pub fn accept(&self, env: &Envelope) -> Option<LoadAckMsg> {
        match_load_ack(env, self.round, self.expert)
    }

    /// Advances the transfer on one of its own acks (as returned by
    /// [`TransferFsm::accept`]).
    pub fn on_ack(&mut self, ack: LoadAckMsg) {
        self.phase = match (self.phase, ack.status) {
            (TransferPhase::Offering, AckStatus::Accept) => {
                self.next = ack.arg.min(u64::from(self.num_chunks)) as u32;
                TransferPhase::Streaming
            }
            // An empty-state transfer completes at the offer; a Done at
            // any point means the expert is resident.
            (TransferPhase::Offering | TransferPhase::Streaming, AckStatus::Done) => {
                TransferPhase::Complete
            }
            (TransferPhase::Offering, AckStatus::Refuse) => {
                TransferPhase::Failed(TransferFault::RefusedOffer { spare: ack.arg })
            }
            (TransferPhase::Offering, status @ (AckStatus::ChunkOk | AckStatus::Failed)) => {
                TransferPhase::Failed(TransferFault::BadOfferAck(status))
            }
            // A duplicate Accept ack reports the resume cursor too.
            (TransferPhase::Streaming, AckStatus::ChunkOk | AckStatus::Accept) => {
                self.next = ack.arg.min(u64::from(self.num_chunks)) as u32;
                TransferPhase::Streaming
            }
            (TransferPhase::Streaming, AckStatus::Failed) => {
                // The worker already freed its partial state.
                TransferPhase::Failed(TransferFault::WorkerFailed)
            }
            (TransferPhase::Streaming, AckStatus::Refuse) => {
                TransferPhase::Failed(TransferFault::RefusedMidTransfer)
            }
            // Concluded transfers ignore further (duplicate) acks.
            (done @ (TransferPhase::Complete | TransferPhase::Failed(_)), _) => done,
        };
    }
}

/// Filters a raw envelope down to the [`LoadAckMsg`] for transfer
/// `round` / `expert`, discarding stale gather leftovers, wrong-kind and
/// wrong-expert traffic — the ack-matching rule shared by the production
/// [`RecoveryManager`](crate::recover::RecoveryManager) wait loop and the
/// model checker's master.
pub fn match_load_ack(env: &Envelope, round: u64, expert: u32) -> Option<LoadAckMsg> {
    if env.round != round || env.kind != PayloadKind::LoadAck {
        return None;
    }
    let ack = LoadAckMsg::decode(&env.payload).ok()?;
    if ack.expert != expert {
        return None;
    }
    Some(ack)
}

/// Builds the offer frame opening a transfer.
pub fn offer_frame(
    target: usize,
    round: u64,
    expert: u32,
    manifest: TransferManifest,
) -> OutboundMsg {
    OutboundMsg {
        to: target,
        tag: TAG_INPUT,
        env: Envelope::new(
            round,
            PayloadKind::LoadExpert,
            LoadExpertMsg::Offer { expert, manifest }.encode(),
        ),
    }
}

/// Builds the abort frame for a failed transfer attempt. Stamped with the
/// *transfer's* round so the worker only undoes that attempt (partial or
/// freshly installed resident) and never a newer one.
pub fn abort_frame(target: usize, round: u64, expert: u32) -> OutboundMsg {
    OutboundMsg {
        to: target,
        tag: TAG_INPUT,
        env: Envelope::new(
            round,
            PayloadKind::LoadExpert,
            LoadExpertMsg::Abort { expert }.encode(),
        ),
    }
}

/// Builds the release frame handing a hosted expert back.
pub fn release_frame(target: usize, round: u64, expert: u32) -> OutboundMsg {
    OutboundMsg {
        to: target,
        tag: TAG_INPUT,
        env: Envelope::new(
            round,
            PayloadKind::LoadExpert,
            LoadExpertMsg::Release { expert }.encode(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamnet_net::crc32;
    use teamnet_nn::ModelSpec;

    /// Hooks that never touch real models: forward returns a canned
    /// payload, install always succeeds.
    struct MockHooks {
        forward_payload: Result<Vec<u8>, ()>,
        installed: Vec<u32>,
        evicted: Vec<u32>,
    }

    impl Default for MockHooks {
        fn default() -> Self {
            MockHooks {
                forward_payload: Ok(vec![1, 2, 3]),
                installed: Vec::new(),
                evicted: Vec::new(),
            }
        }
    }

    impl WorkerHooks for MockHooks {
        fn forward(&mut self, _input: &[u8]) -> Result<Vec<u8>, NetError> {
            self.forward_payload
                .clone()
                .map_err(|()| NetError::Malformed("mock forward".into()))
        }

        fn install(
            &mut self,
            expert: u32,
            _manifest: &TransferManifest,
            _state: &[u8],
        ) -> Result<(), NetError> {
            self.installed.push(expert);
            Ok(())
        }

        fn evict(&mut self, expert: u32) {
            self.evicted.push(expert);
        }
    }

    fn manifest_for(state: &[u8], chunk_bytes: usize, required: u64) -> TransferManifest {
        TransferManifest {
            spec: ModelSpec::mlp(2, 4),
            num_chunks: state.len().div_ceil(chunk_bytes.max(1)) as u32,
            total_bytes: state.len() as u64,
            state_crc: crc32(state),
            required_resident_bytes: required,
        }
    }

    fn deliver(fsm: &mut WorkerFsm, hooks: &mut MockHooks, msg: &OutboundMsg) -> Vec<OutboundMsg> {
        fsm.step(&msg.encode(), hooks).expect("step")
    }

    fn ack_of(replies: &[OutboundMsg]) -> LoadAckMsg {
        let env = &replies.first().expect("reply").env;
        assert_eq!(env.kind, PayloadKind::LoadAck);
        LoadAckMsg::decode(&env.payload).expect("ack decode")
    }

    /// Runs a full clean transfer and returns worker + hooks.
    fn completed_transfer(round: u64) -> (WorkerFsm, MockHooks, Vec<u8>, TransferManifest) {
        let state = vec![9u8, 8, 7, 6, 5];
        let manifest = manifest_for(&state, 2, 300);
        let mut w = WorkerFsm::new(0, HostBudget::new(1000, 100));
        let mut hooks = MockHooks::default();
        let mut master = TransferFsm::new(7, 1, round, manifest.num_chunks);
        let mut guard = 0;
        while master.phase() != TransferPhase::Complete {
            let frame = master
                .current_frame(&manifest, &state, 2)
                .expect("frame while active");
            let replies = deliver(&mut w, &mut hooks, &frame);
            let ack = master
                .accept(&replies.first().expect("reply").env)
                .expect("own ack");
            master.on_ack(ack);
            guard += 1;
            assert!(guard < 20, "transfer did not converge");
        }
        (w, hooks, state, manifest)
    }

    #[test]
    fn clean_transfer_installs_and_charges() {
        let (w, hooks, _state, manifest) = completed_transfer(50);
        assert_eq!(hooks.installed, vec![7]);
        assert_eq!(w.hosted().get(&7).map(|h| h.resident_bytes), Some(300));
        assert_eq!(w.budget().hosted_bytes(), manifest.required_resident_bytes);
        assert_eq!(w.partial(), None);
        assert_eq!(w.stats().loads_accepted, 1);
        assert_eq!(w.stats().chunks_received, 3);
    }

    #[test]
    fn duplicate_final_chunk_re_acks_done_idempotently() {
        let (mut w, mut hooks, state, manifest) = completed_transfer(51);
        let before = w.canonical_protocol_bytes();
        // Master lost the Done ack and resends the final chunk.
        let mut master = TransferFsm::new(7, 1, 51, manifest.num_chunks);
        master.on_ack(LoadAckMsg {
            expert: 7,
            status: AckStatus::Accept,
            arg: u64::from(manifest.num_chunks) - 1,
        });
        let frame = master.current_frame(&manifest, &state, 2).expect("chunk");
        let replies = deliver(&mut w, &mut hooks, &frame);
        assert_eq!(ack_of(&replies).status, AckStatus::Done);
        assert_eq!(w.canonical_protocol_bytes(), before);
        // The master completes off the re-ack instead of backtracking.
        master.on_ack(ack_of(&replies));
        assert_eq!(master.phase(), TransferPhase::Complete);
    }

    #[test]
    fn re_offer_for_resident_re_acks_done_without_double_charge() {
        let (mut w, mut hooks, _state, manifest) = completed_transfer(52);
        let charged = w.budget().hosted_bytes();
        let frame = offer_frame(1, 60, 7, manifest);
        let replies = deliver(&mut w, &mut hooks, &frame);
        assert_eq!(ack_of(&replies).status, AckStatus::Done);
        assert_eq!(w.budget().hosted_bytes(), charged);
        assert_eq!(w.stats().loads_accepted, 1, "no second admission");
    }

    #[test]
    fn round_matching_abort_evicts_resident() {
        let (mut w, mut hooks, _state, _manifest) = completed_transfer(53);
        // The master never saw Done: it aborts attempt 53 and backtracks.
        let replies = deliver(&mut w, &mut hooks, &abort_frame(1, 53, 7));
        assert!(replies.is_empty(), "aborts are not acknowledged");
        assert!(w.hosted().is_empty());
        assert_eq!(w.budget().hosted_bytes(), 0);
        assert_eq!(hooks.evicted, vec![7]);
    }

    #[test]
    fn stale_abort_does_not_touch_newer_transfer() {
        let state = vec![1u8, 2, 3, 4, 5];
        let manifest = manifest_for(&state, 2, 300);
        let mut w = WorkerFsm::new(0, HostBudget::new(1000, 100));
        let mut hooks = MockHooks::default();
        // New transfer (round 71) opens a partial.
        deliver(&mut w, &mut hooks, &offer_frame(1, 71, 7, manifest));
        assert!(w.partial().is_some());
        // A stale abort from a dead earlier attempt (round 70) arrives.
        deliver(&mut w, &mut hooks, &abort_frame(1, 70, 7));
        assert_eq!(w.partial(), Some((7, 0, 71)), "partial survives");
        // The matching abort clears it.
        deliver(&mut w, &mut hooks, &abort_frame(1, 71, 7));
        assert_eq!(w.partial(), None);
    }

    #[test]
    fn refusal_reports_actual_spare() {
        let state = vec![1u8; 6];
        let manifest = manifest_for(&state, 2, 500);
        let mut w = WorkerFsm::new(0, HostBudget::new(400, 100));
        let mut hooks = MockHooks::default();
        let replies = deliver(&mut w, &mut hooks, &offer_frame(1, 80, 3, manifest));
        let ack = ack_of(&replies);
        assert_eq!(ack.status, AckStatus::Refuse);
        assert_eq!(ack.arg, 300);
        assert_eq!(w.stats().loads_refused, 1);
    }

    #[test]
    fn mutant_fails_resident_re_chunk_and_ignores_abort_rounds() {
        let state = vec![9u8, 8, 7, 6, 5];
        let manifest = manifest_for(&state, 2, 300);
        let mut w = WorkerFsm::with_mutation(
            0,
            HostBudget::new(1000, 100),
            FsmMutation::StrandOnLostFinalAck,
        );
        let mut hooks = MockHooks::default();
        let mut master = TransferFsm::new(7, 1, 90, manifest.num_chunks);
        while master.phase() != TransferPhase::Complete {
            let frame = master.current_frame(&manifest, &state, 2).expect("frame");
            let replies = deliver(&mut w, &mut hooks, &frame);
            master.on_ack(
                master
                    .accept(&replies.first().expect("reply").env)
                    .expect("ack"),
            );
        }
        // Done ack lost; the master resends the final chunk: the mutant
        // answers Failed (the pre-§15 bug) …
        let mut retry = TransferFsm::new(7, 1, 90, manifest.num_chunks);
        retry.on_ack(LoadAckMsg {
            expert: 7,
            status: AckStatus::Accept,
            arg: u64::from(manifest.num_chunks) - 1,
        });
        let frame = retry.current_frame(&manifest, &state, 2).expect("chunk");
        let replies = deliver(&mut w, &mut hooks, &frame);
        assert_eq!(ack_of(&replies).status, AckStatus::Failed);
        // … and its abort never evicts, stranding the resident.
        deliver(&mut w, &mut hooks, &abort_frame(1, 90, 7));
        assert!(w.hosted().contains_key(&7), "mutant strands the resident");
    }

    #[test]
    fn worker_rejects_master_bound_kinds_without_reply() {
        let mut w = WorkerFsm::new(0, HostBudget::unlimited());
        let mut hooks = MockHooks::default();
        for kind in [
            PayloadKind::Result,
            PayloadKind::ProbeAck,
            PayloadKind::LoadAck,
        ] {
            let env = Envelope::new(5, kind, vec![1, 2, 3]).encode();
            let replies = w.step(&env, &mut hooks).expect("step");
            assert!(replies.is_empty());
        }
        assert_eq!(w.stats().malformed_skipped, 3);
    }

    #[test]
    fn gather_folds_argmin_and_discards_stale() {
        let mut g = GatherFsm::new(100, 0, 1, vec![(4, 0.9)], None, false);
        // Stale frame from an earlier round.
        let stale = Envelope::new(
            99,
            PayloadKind::Result,
            crate::runtime::encode_results(&[(1, 0.1)]),
        )
        .encode();
        assert!(matches!(
            g.step(1, &stale),
            GatherVerdict::Discarded(GatherDiscard::Stale { seen: 99 })
        ));
        // Fresh results win the row.
        let fresh = Envelope::new(
            100,
            PayloadKind::Result,
            crate::runtime::encode_results(&[(2, 0.2)]),
        )
        .encode();
        assert!(matches!(
            g.step(1, &fresh),
            GatherVerdict::Accepted { folded: true }
        ));
        let preds = g.into_predictions();
        assert_eq!(preds.first().map(|p| (p.label, p.expert)), Some((2, 1)));
    }

    #[test]
    fn gather_strict_mode_fails_on_corrupt() {
        let mut strictg = GatherFsm::new(100, 0, 1, vec![(4, 0.9)], None, true);
        let mut frame = Envelope::new(
            100,
            PayloadKind::Result,
            crate::runtime::encode_results(&[(2, 0.2)]),
        )
        .encode();
        if let Some(b) = frame.last_mut() {
            *b ^= 0x40;
        }
        assert!(matches!(strictg.step(1, &frame), GatherVerdict::Fatal(_)));
        let mut lax = GatherFsm::new(100, 0, 1, vec![(4, 0.9)], None, false);
        assert!(matches!(
            lax.step(1, &frame),
            GatherVerdict::Discarded(GatherDiscard::Corrupt)
        ));
    }

    #[test]
    fn gather_respects_calibration_weights() {
        // Raw entropies favor peer 1 (0.3 < 0.4·1.0), but peer 1's δ*
        // weight of 2.0 flips the comparison.
        let mut g = GatherFsm::new(7, 0, 1, vec![(9, 0.4)], Some(vec![1.0, 2.0]), false);
        let frame = Envelope::new(
            7,
            PayloadKind::Result,
            crate::runtime::encode_results(&[(3, 0.3)]),
        )
        .encode();
        g.step(1, &frame);
        let preds = g.into_predictions();
        assert_eq!(preds.first().map(|p| p.expert), Some(0));
    }

    #[test]
    fn transfer_fsm_refusal_and_bad_ack_classification() {
        let mut t = TransferFsm::new(3, 2, 10, 4);
        assert_eq!(t.exchange_salt(), 0);
        t.on_ack(LoadAckMsg {
            expert: 3,
            status: AckStatus::Refuse,
            arg: 123,
        });
        assert_eq!(
            t.phase(),
            TransferPhase::Failed(TransferFault::RefusedOffer { spare: 123 })
        );
        assert!(!TransferFault::RefusedOffer { spare: 123 }.needs_abort());
        assert!(TransferFault::BadOfferAck(AckStatus::ChunkOk).needs_abort());

        let mut t = TransferFsm::new(3, 2, 10, 4);
        t.on_ack(LoadAckMsg {
            expert: 3,
            status: AckStatus::ChunkOk,
            arg: 0,
        });
        assert!(matches!(
            t.phase(),
            TransferPhase::Failed(TransferFault::BadOfferAck(AckStatus::ChunkOk))
        ));
    }

    #[test]
    fn match_load_ack_filters_round_kind_and_expert() {
        let ack = LoadAckMsg {
            expert: 5,
            status: AckStatus::ChunkOk,
            arg: 2,
        };
        let good = Envelope::new(9, PayloadKind::LoadAck, ack.encode());
        assert_eq!(match_load_ack(&good, 9, 5), Some(ack));
        assert_eq!(match_load_ack(&good, 8, 5), None, "wrong round");
        assert_eq!(match_load_ack(&good, 9, 6), None, "wrong expert");
        let wrong_kind = Envelope::new(9, PayloadKind::Result, ack.encode());
        assert_eq!(match_load_ack(&wrong_kind, 9, 5), None);
    }
}
