//! The distributed inference runtime (Figure 1d and Section III).
//!
//! One node — the **master** — receives the sensor input, broadcasts it to
//! every peer (**workers**), all nodes run their local expert in parallel,
//! the workers return `(predicted label, predictive entropy)` pairs, and
//! the master selects the least-uncertain answer. Communication happens
//! exactly twice per inference (one broadcast out, one gather back), which
//! is the entire reason TeamNet beats MPI-style model parallelism on WiFi.
//!
//! Works over any [`Transport`] — in-process channels for tests and real
//! TCP for deployments.

use crate::entropy::entropy;
use crate::team::TeamPrediction;
use std::time::Duration;
use teamnet_net::codec::{decode_f32s, encode_f32s};
use teamnet_net::{NetError, Tag, Transport};
use teamnet_nn::{Layer, Mode, Sequential};
use teamnet_tensor::Tensor;

/// Tag carrying broadcast input batches (master → workers).
pub const TAG_INPUT: Tag = Tag(0x7EA0_0001);
/// Tag carrying per-row `(label, entropy)` results (workers → master).
pub const TAG_RESULT: Tag = Tag(0x7EA0_0002);
/// Tag asking workers to exit their serve loop.
pub const TAG_SHUTDOWN: Tag = Tag(0x7EA0_0003);

/// Master-side inference policy.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// How long to wait for each worker's result.
    pub worker_timeout: Duration,
    /// If `false`, a worker timing out merely removes it from the
    /// candidate set (degraded collaborative inference); if `true`, the
    /// inference fails.
    pub require_all_workers: bool,
    /// Optional per-node entropy weights δ* (Eq. 1 with converged control
    /// variables; see [`crate::TeamNet::set_calibration`]), indexed by
    /// node id. `None` means the plain arg-min of the paper's Figure 4.
    pub calibration: Option<Vec<f32>>,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            worker_timeout: Duration::from_secs(10),
            require_all_workers: true,
            calibration: None,
        }
    }
}

impl MasterConfig {
    fn weight(&self, node: usize) -> f32 {
        self.calibration
            .as_ref()
            .and_then(|c| c.get(node))
            .copied()
            .unwrap_or(1.0)
    }
}

/// Runs a local expert on an input batch, producing the `[n, 2]` result
/// matrix of `(label, entropy)` rows that crosses the network.
///
/// A row whose predictive distribution fails validation (a diverged or
/// numerically broken expert) reports infinite entropy: the node stays in
/// the collaboration but can never win a row, instead of panicking
/// mid-inference and taking the whole cluster down with it.
pub fn local_results(expert: &mut Sequential, images: &Tensor) -> Vec<(usize, f32)> {
    let probs = expert.forward(images, Mode::Eval).softmax_rows();
    let n = probs.dims().first().copied().unwrap_or(0);
    (0..n)
        .map(|r| {
            let row = probs.row(r);
            (
                teamnet_tensor::argmax_slice(row),
                entropy(row).unwrap_or(f32::INFINITY),
            )
        })
        .collect()
}

fn encode_results(results: &[(usize, f32)]) -> Vec<u8> {
    let flat: Vec<f32> = results.iter().flat_map(|&(l, h)| [l as f32, h]).collect();
    encode_f32s(&[results.len(), 2], &flat)
}

fn decode_results(bytes: &[u8]) -> Result<Vec<(usize, f32)>, NetError> {
    let (dims, data) = decode_f32s(bytes)?;
    if dims.len() != 2 || dims.get(1) != Some(&2) {
        return Err(NetError::Malformed(format!("result matrix dims {dims:?}")));
    }
    Ok(data
        .chunks_exact(2)
        .filter_map(|p| p.first_chunk::<2>())
        .map(|&[label, h]| (label as usize, h))
        .collect())
}

/// Serves a worker node: waits for input broadcasts from `master`, runs
/// the local `expert`, returns results, until a shutdown message arrives.
///
/// # Errors
///
/// Returns transport failures; malformed inputs abort the loop with
/// [`NetError::Malformed`].
pub fn serve_worker(
    transport: &dyn Transport,
    master: usize,
    expert: &mut Sequential,
) -> Result<(), NetError> {
    const POLL: Duration = Duration::from_millis(50);
    loop {
        // Check for shutdown first so it cannot starve behind inputs.
        match transport.recv(master, TAG_SHUTDOWN, Duration::from_millis(1)) {
            Ok(_) => return Ok(()),
            Err(NetError::Timeout { .. }) => {}
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
        match transport.recv(master, TAG_INPUT, POLL) {
            Ok(bytes) => {
                let (dims, data) = decode_f32s(&bytes)?;
                let images = Tensor::from_vec(data, dims)
                    .map_err(|e| NetError::Malformed(format!("input tensor: {e}")))?;
                let results = local_results(expert, &images);
                transport.send(master, TAG_RESULT, &encode_results(&results))?;
            }
            Err(NetError::Timeout { .. }) => continue,
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

/// Master-side collaborative inference over an input batch.
///
/// Broadcasts `images` to every peer, evaluates the local `expert` in
/// parallel (conceptually — the local pass runs while workers compute),
/// gathers worker results, and selects the least-entropy answer per row.
///
/// # Errors
///
/// * [`NetError::Timeout`] if a worker misses the deadline and
///   `require_all_workers` is set;
/// * [`NetError::Malformed`] for undecodable worker responses;
/// * transport failures otherwise.
pub fn master_infer(
    transport: &dyn Transport,
    expert: &mut Sequential,
    images: &Tensor,
    config: &MasterConfig,
) -> Result<Vec<TeamPrediction>, NetError> {
    let me = transport.node_id();
    let n = images.dims().first().copied().unwrap_or(0);
    let payload = encode_f32s(images.dims(), images.data());
    for peer in 0..transport.num_nodes() {
        if peer != me {
            transport.send(peer, TAG_INPUT, &payload)?;
        }
    }

    // Local expert runs while the workers compute. Selection compares
    // δ*-weighted entropies; reported entropy stays raw.
    let local = local_results(expert, images);
    let mut best: Vec<TeamPrediction> = local
        .into_iter()
        .map(|(label, h)| TeamPrediction {
            label,
            expert: me,
            entropy: h,
        })
        .collect();
    let mut best_weighted: Vec<f32> = best.iter().map(|p| p.entropy * config.weight(me)).collect();

    for peer in 0..transport.num_nodes() {
        if peer == me {
            continue;
        }
        match transport.recv(peer, TAG_RESULT, config.worker_timeout) {
            Ok(bytes) => {
                let results = decode_results(&bytes)?;
                if results.len() != n {
                    return Err(NetError::Malformed(format!(
                        "worker {peer} returned {} rows for a {n}-row batch",
                        results.len()
                    )));
                }
                let slots = best_weighted.iter_mut().zip(best.iter_mut());
                for ((label, h), (current, winner)) in results.into_iter().zip(slots) {
                    let weighted = h * config.weight(peer);
                    if weighted < *current {
                        *current = weighted;
                        *winner = TeamPrediction {
                            label,
                            expert: peer,
                            entropy: h,
                        };
                    }
                }
            }
            Err(NetError::Timeout { .. }) if !config.require_all_workers => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(best)
}

/// Asks every worker served by [`serve_worker`] to exit.
///
/// # Errors
///
/// Propagates transport send failures.
pub fn shutdown_workers(transport: &dyn Transport) -> Result<(), NetError> {
    let me = transport.node_id();
    for peer in 0..transport.num_nodes() {
        if peer != me {
            transport.send(peer, TAG_SHUTDOWN, &[])?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::build_expert;
    use crossbeam::thread;
    use teamnet_net::ChannelTransport;
    use teamnet_nn::ModelSpec;

    fn expert(seed: u64) -> Sequential {
        build_expert(&ModelSpec::mlp(2, 16), seed)
    }

    #[test]
    fn results_codec_roundtrip() {
        let results = vec![(3usize, 0.5f32), (9, 1.25)];
        let decoded = decode_results(&encode_results(&results)).unwrap();
        assert_eq!(decoded, results);
        assert!(decode_results(&[1, 2, 3]).is_err());
    }

    #[test]
    fn distributed_matches_local_team() {
        // A 3-node cluster must produce exactly the same predictions as an
        // in-process TeamNet with the same experts.
        let nodes = ChannelTransport::mesh(3);
        let images = Tensor::rand_uniform(
            [4, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9),
        );

        let mut local_team = crate::team::TeamNet::from_experts(
            ModelSpec::mlp(2, 16),
            vec![expert(0), expert(1), expert(2)],
        );
        let expected = local_team.predict(&images);

        let got = thread::scope(|scope| {
            for (i, node) in nodes.iter().enumerate().skip(1) {
                let mut worker_expert = expert(i as u64);
                scope.spawn(move |_| serve_worker(node, 0, &mut worker_expert).unwrap());
            }
            let mut master_expert = expert(0);
            let preds = master_infer(
                &nodes[0],
                &mut master_expert,
                &images,
                &MasterConfig::default(),
            )
            .unwrap();
            shutdown_workers(&nodes[0]).unwrap();
            preds
        })
        .unwrap();

        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.label, e.label);
            assert_eq!(g.expert, e.expert);
            assert!((g.entropy - e.entropy).abs() < 1e-5);
        }
    }

    #[test]
    fn calibrated_distributed_matches_calibrated_local() {
        let nodes = ChannelTransport::mesh(2);
        let images = Tensor::rand_uniform(
            [3, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11),
        );
        let weights = vec![3.0f32, 0.4];
        let mut local_team =
            crate::team::TeamNet::from_experts(ModelSpec::mlp(2, 16), vec![expert(0), expert(1)]);
        local_team.set_calibration(weights.clone());
        let expected = local_team.predict(&images);

        let got = thread::scope(|scope| {
            scope.spawn(|_| {
                let mut worker_expert = expert(1);
                serve_worker(&nodes[1], 0, &mut worker_expert).unwrap();
            });
            let mut master_expert = expert(0);
            let config = MasterConfig {
                calibration: Some(weights),
                ..MasterConfig::default()
            };
            let preds = master_infer(&nodes[0], &mut master_expert, &images, &config).unwrap();
            shutdown_workers(&nodes[0]).unwrap();
            preds
        })
        .unwrap();

        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.expert, e.expert);
            assert_eq!(g.label, e.label);
        }
    }

    #[test]
    fn missing_worker_times_out_when_required() {
        let nodes = ChannelTransport::mesh(2);
        let mut master_expert = expert(0);
        let images = Tensor::zeros([1, 1, 28, 28]);
        let config = MasterConfig {
            worker_timeout: Duration::from_millis(50),
            require_all_workers: true,
            ..MasterConfig::default()
        };
        let res = master_infer(&nodes[0], &mut master_expert, &images, &config);
        assert!(matches!(res, Err(NetError::Timeout { .. })), "{res:?}");
    }

    #[test]
    fn missing_worker_degrades_gracefully_when_optional() {
        let nodes = ChannelTransport::mesh(2);
        let mut master_expert = expert(0);
        let images = Tensor::zeros([2, 1, 28, 28]);
        let config = MasterConfig {
            worker_timeout: Duration::from_millis(50),
            require_all_workers: false,
            ..MasterConfig::default()
        };
        let preds = master_infer(&nodes[0], &mut master_expert, &images, &config).unwrap();
        assert_eq!(preds.len(), 2);
        // All predictions fall back to the master's own expert.
        assert!(preds.iter().all(|p| p.expert == 0));
    }

    #[test]
    fn works_over_real_tcp() {
        let nodes = teamnet_net::TcpTransport::mesh_localhost(2).unwrap();
        let images = Tensor::rand_uniform(
            [2, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3),
        );
        thread::scope(|scope| {
            scope.spawn(|_| {
                let mut worker_expert = expert(1);
                serve_worker(&nodes[1], 0, &mut worker_expert).unwrap();
            });
            let mut master_expert = expert(0);
            let preds = master_infer(
                &nodes[0],
                &mut master_expert,
                &images,
                &MasterConfig::default(),
            )
            .unwrap();
            assert_eq!(preds.len(), 2);
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn worker_survives_multiple_rounds() {
        let nodes = ChannelTransport::mesh(2);
        thread::scope(|scope| {
            scope.spawn(|_| {
                let mut worker_expert = expert(1);
                serve_worker(&nodes[1], 0, &mut worker_expert).unwrap();
            });
            let mut master_expert = expert(0);
            for round in 0..5 {
                let images = Tensor::full([1, 1, 28, 28], round as f32 * 0.1);
                let preds = master_infer(
                    &nodes[0],
                    &mut master_expert,
                    &images,
                    &MasterConfig::default(),
                )
                .unwrap();
                assert_eq!(preds.len(), 1);
            }
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }
}
