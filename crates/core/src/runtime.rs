//! The distributed inference runtime (Figure 1d and Section III), with a
//! fault-tolerant protocol layer.
//!
//! One node — the **master** — receives the sensor input, broadcasts it to
//! every peer (**workers**), all nodes run their local expert in parallel,
//! the workers return `(predicted label, predictive entropy)` pairs, and
//! the master selects the least-uncertain answer. Communication happens
//! exactly twice per inference (one broadcast out, one gather back), which
//! is the entire reason TeamNet beats MPI-style model parallelism on WiFi.
//!
//! Robustness (see DESIGN.md §9): every message crosses the wire inside a
//! versioned, round-stamped, CRC-checked [`Envelope`], so the master
//! discards late replies from earlier rounds instead of mis-scoring them
//! against the wrong batch, and flipped bits are caught before they decode
//! into garbage predictions. An [`InferenceSession`] additionally runs a
//! heartbeat-style [`FailureDetector`]: peers that miss
//! `quarantine_after` consecutive rounds are quarantined (no broadcast,
//! no gather wait — their timeout stops taxing every inference) and
//! periodically probed with a 16-byte envelope for readmission. Each round
//! returns an [`InferenceReport`] with per-peer health alongside the
//! predictions.
//!
//! Works over any [`Transport`] — in-process channels for tests and real
//! TCP for deployments.

use crate::entropy::entropy;
use crate::fsm;
use crate::health::{
    ContactPlan, FailureDetector, FailureDetectorConfig, InferenceReport, PeerHealth, PeerReport,
};
use crate::recover::{HostBudget, RecoveryManager, TransferManifest};
use crate::team::TeamPrediction;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use teamnet_net::codec::{decode_f32s, encode_f32s};
use teamnet_net::{
    derive_trace_id, peek_trace, Backoff, Clock, Envelope, NetError, PayloadKind, RetryPolicy,
    SystemClock, Tag, Transport, TRACE_EXT_LEN,
};
use teamnet_nn::{Layer, Mode, Sequential};
use teamnet_obs::{AllocMeters, Counter, Obs};
use teamnet_tensor::{MemScope, Tensor};

/// Tag carrying broadcast input batches and probes (master → workers).
pub const TAG_INPUT: Tag = Tag(0x7EA0_0001);
/// Tag carrying per-row `(label, entropy)` results and probe acks
/// (workers → master).
pub const TAG_RESULT: Tag = Tag(0x7EA0_0002);
/// Tag asking workers to exit their serve loop (sent raw, no envelope: a
/// shutdown is not attributable to a round).
pub const TAG_SHUTDOWN: Tag = Tag(0x7EA0_0003);

/// Process-wide round allocator: every inference round in this process
/// gets a unique stamp, so a late reply can never alias a later round even
/// across [`InferenceSession`] instances sharing a transport.
static NEXT_ROUND: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_round() -> u64 {
    NEXT_ROUND.fetch_add(1, Ordering::Relaxed)
}

/// Largest number of frames parked per `(round, peer)` key: bounds what a
/// duplicate storm can make the router retain.
const MAX_PARKED_PER_KEY: usize = 1024;

/// Cross-session frame router.
///
/// Round stamps are process-unique, but a transport's receive mailbox is
/// keyed `(peer, tag)` only — so when two [`InferenceSession`]s gather
/// concurrently over one shared endpoint, session A's blocking `recv` can
/// consume the frame stamped with session B's round. Before this router,
/// A discarded that frame as stale and B starved until its deadline: a
/// collision *misattribution*, the serving front-end's first casualty.
///
/// Every in-flight gather registers its round here ([`RoundRegistration`]
/// is the RAII handle). A gather that pulls a frame stamped for another
/// **registered** round parks it under `(round, sender)`; the owning
/// session polls [`take_parked`] before each blocking wait and once more
/// after a timeout, so a mis-delivered reply reaches its round instead of
/// the floor. Frames stamped for unregistered rounds remain genuine stale
/// traffic and are dropped as before.
#[derive(Debug)]
struct RoundRouter {
    /// Rounds with a gather currently in flight.
    active: BTreeSet<u64>,
    /// Mis-delivered frames awaiting their owner, FIFO per key.
    parked: BTreeMap<(u64, usize), VecDeque<Vec<u8>>>,
}

static ROUND_ROUTER: Mutex<RoundRouter> = Mutex::new(RoundRouter {
    active: BTreeSet::new(),
    parked: BTreeMap::new(),
});

/// RAII registration of an in-flight round with the [`RoundRouter`]:
/// dropping it (on any exit path from `infer`, including errors)
/// unregisters the round and frees whatever is still parked for it.
#[derive(Debug)]
struct RoundRegistration {
    round: u64,
}

impl RoundRegistration {
    fn new(round: u64) -> Self {
        ROUND_ROUTER.lock().active.insert(round);
        RoundRegistration { round }
    }
}

impl Drop for RoundRegistration {
    fn drop(&mut self) {
        let round = self.round;
        let mut router = ROUND_ROUTER.lock();
        router.active.remove(&round);
        router.parked.retain(|&(r, _), _| r != round);
    }
}

/// Parks a frame from `peer` stamped for `seen` if that round has a
/// registered gather in flight. Returns whether the frame was parked
/// (false means it is genuine stale traffic, or the park bound is hit).
fn park_for_round(seen: u64, peer: usize, bytes: Vec<u8>) -> bool {
    let mut router = ROUND_ROUTER.lock();
    if !router.active.contains(&seen) {
        return false;
    }
    let queue = router.parked.entry((seen, peer)).or_default();
    if queue.len() >= MAX_PARKED_PER_KEY {
        return false;
    }
    queue.push_back(bytes);
    true
}

/// Takes the oldest frame a sibling session parked for (`round`, `peer`),
/// if any.
fn take_parked(round: u64, peer: usize) -> Option<Vec<u8>> {
    let mut router = ROUND_ROUTER.lock();
    let queue = router.parked.get_mut(&(round, peer))?;
    let bytes = queue.pop_front();
    if queue.is_empty() {
        router.parked.remove(&(round, peer));
    }
    bytes
}

/// Master-side inference policy.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Wall-clock budget for one round's gather leg: all workers' replies
    /// (and all discard-and-rewait cycles for stale or corrupt traffic)
    /// share this one deadline.
    pub worker_timeout: Duration,
    /// If `false`, a worker timing out merely removes it from the
    /// candidate set (degraded collaborative inference); if `true`, the
    /// inference fails.
    pub require_all_workers: bool,
    /// Optional per-node entropy weights δ* (Eq. 1 with converged control
    /// variables; see [`crate::TeamNet::set_calibration`]), indexed by
    /// node id. `None` means the plain arg-min of the paper's Figure 4.
    pub calibration: Option<Vec<f32>>,
    /// Failure-detector policy (quarantine threshold, probe cadence).
    pub failure: FailureDetectorConfig,
    /// Retry schedule for broadcast/probe sends.
    pub send_retry: RetryPolicy,
    /// Clock driving deadline budgets and backoff sleeps. Defaults to the
    /// system clock; tests inject a [`teamnet_net::ManualClock`] to walk
    /// timeouts in virtual time instead of sleeping.
    pub clock: Arc<dyn Clock>,
    /// Observability handle. Defaults to [`Obs::disabled`]: spans cost one
    /// branch, while protocol counters (`round.*`, `detector.transitions`)
    /// still accumulate in the registry. Pass an [`Obs::new`] built over
    /// the *same* clock as `clock` for a coherent timeline (DESIGN.md
    /// §12).
    pub obs: Obs,
    /// Seed for the deterministic per-round trace ids
    /// ([`teamnet_net::derive_trace_id`]): two sessions configured with
    /// the same seed emit byte-identical trace ids round for round, so
    /// cross-node traces from identical seeded runs assemble identically.
    pub trace_seed: u64,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            worker_timeout: Duration::from_secs(10),
            require_all_workers: true,
            calibration: None,
            failure: FailureDetectorConfig::default(),
            send_retry: RetryPolicy::default(),
            clock: Arc::new(SystemClock),
            obs: Obs::disabled(),
            trace_seed: 0,
        }
    }
}

/// Runs a local expert on an input batch, producing the `[n, 2]` result
/// matrix of `(label, entropy)` rows that crosses the network.
///
/// A row whose predictive distribution fails validation (a diverged or
/// numerically broken expert) reports infinite entropy: the node stays in
/// the collaboration but can never win a row, instead of panicking
/// mid-inference and taking the whole cluster down with it.
pub fn local_results(expert: &mut Sequential, images: &Tensor) -> Vec<(usize, f32)> {
    let probs = expert.forward(images, Mode::Eval).softmax_rows();
    let n = probs.dims().first().copied().unwrap_or(0);
    (0..n)
        .map(|r| {
            let row = probs.row(r);
            (
                teamnet_tensor::argmax_slice(row),
                entropy(row).unwrap_or(f32::INFINITY),
            )
        })
        .collect()
}

/// Encodes a `(label, entropy)` result matrix for the wire (the payload
/// that travels inside a [`PayloadKind::Result`] envelope).
pub fn encode_results(results: &[(usize, f32)]) -> Vec<u8> {
    let flat: Vec<f32> = results.iter().flat_map(|&(l, h)| [l as f32, h]).collect();
    encode_f32s(&[results.len(), 2], &flat)
}

/// Decodes a result matrix produced by [`encode_results`].
///
/// # Errors
///
/// [`NetError::Malformed`] for anything that is not an `[n, 2]` matrix.
pub fn decode_results(bytes: &[u8]) -> Result<Vec<(usize, f32)>, NetError> {
    let (dims, data) = decode_f32s(bytes)?;
    if dims.len() != 2 || dims.get(1) != Some(&2) {
        return Err(NetError::Malformed(format!("result matrix dims {dims:?}")));
    }
    Ok(data
        .chunks_exact(2)
        .filter_map(|p| p.first_chunk::<2>())
        .map(|&[label, h]| (label as usize, h))
        .collect())
}

/// Marker opening a multi-expert result set on the wire. Unambiguous
/// against the legacy single-matrix encoding, whose leading `u32` is a
/// tensor rank and therefore always tiny.
const RESULT_SET_SENTINEL: u32 = 0xFFFF_FFFF;

/// Encodes results from several experts hosted on one node:
/// `sentinel: u32 | count: u32 | per expert (expert_id: u32 | len: u32 |`
/// [`encode_results`] bytes`)`.
///
/// Workers hosting only their own expert keep sending the legacy
/// [`encode_results`] matrix byte-for-byte — the certified
/// `wire_result_bytes` of DESIGN.md §13 stays honest, and a recovery-free
/// session is wire-identical to the pre-recovery protocol.
pub fn encode_result_set(set: &[(u32, Vec<(usize, f32)>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&RESULT_SET_SENTINEL.to_le_bytes());
    out.extend_from_slice(&(set.len() as u32).to_le_bytes());
    for (expert, results) in set {
        let bytes = encode_results(results);
        out.extend_from_slice(&expert.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Decodes a result payload into per-expert result matrices. A legacy
/// single-matrix payload (no sentinel) is attributed to `sender` — the
/// worker's own expert.
///
/// # Errors
///
/// [`NetError::Malformed`] for truncated sets or undecodable matrices.
pub fn decode_result_set(
    bytes: &[u8],
    sender: usize,
) -> Result<Vec<(usize, Vec<(usize, f32)>)>, NetError> {
    let sentinel = bytes
        .get(..4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap_or_default()));
    if sentinel != Some(RESULT_SET_SENTINEL) {
        return Ok(vec![(sender, decode_results(bytes)?)]);
    }
    let mut at = 4usize;
    let take_u32 = |bytes: &[u8], at: &mut usize| -> Result<u32, NetError> {
        let slice = bytes
            .get(*at..*at + 4)
            .ok_or_else(|| NetError::Malformed(format!("result set truncated at byte {at}")))?;
        *at += 4;
        Ok(u32::from_le_bytes(slice.try_into().unwrap_or_default()))
    };
    let count = take_u32(bytes, &mut at)? as usize;
    if count > 4096 {
        return Err(NetError::Malformed(format!(
            "implausible result set of {count} experts"
        )));
    }
    let mut set = Vec::with_capacity(count);
    for _ in 0..count {
        let expert = take_u32(bytes, &mut at)? as usize;
        let len = take_u32(bytes, &mut at)? as usize;
        let body = bytes
            .get(at..at + len)
            .ok_or_else(|| NetError::Malformed(format!("result set truncated at byte {at}")))?;
        at += len;
        set.push((expert, decode_results(body)?));
    }
    if at != bytes.len() {
        return Err(NetError::Malformed(format!(
            "{} trailing bytes in result set",
            bytes.len() - at
        )));
    }
    Ok(set)
}

/// Counters kept by a worker's serve loop, returned when the loop exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Input batches answered with a result matrix.
    pub rounds_served: u64,
    /// Readmission probes acknowledged.
    pub probes_answered: u64,
    /// Batches skipped because they failed envelope or tensor decoding
    /// (corrupt or malformed traffic); the loop keeps serving.
    pub malformed_skipped: u64,
    /// Expert-transfer offers this worker admitted (DESIGN.md §14).
    pub loads_accepted: u64,
    /// Expert-transfer offers refused by the local [`HostBudget`].
    pub loads_refused: u64,
    /// Transfer chunks received (including duplicates re-acknowledged by
    /// the stop-and-wait ARQ).
    pub chunks_received: u64,
}

/// Worker-side policy for [`serve_worker_with_config`].
#[derive(Debug, Clone, Default)]
pub struct WorkerConfig {
    /// Observability handle (defaults to [`Obs::disabled`]).
    pub obs: Obs,
    /// Memory honesty check for hosting migrated experts: an offer whose
    /// certified `required_resident_bytes` exceeds this budget's spare is
    /// refused regardless of what the master believed. Defaults to
    /// [`HostBudget::unlimited`].
    pub budget: HostBudget,
}

/// Serves a worker node: waits for input broadcasts from `master`, runs
/// the local `expert`, returns round-stamped results, until a shutdown
/// message arrives. Probes are acknowledged immediately; corrupt or
/// malformed batches are counted and skipped — one bad frame must not
/// take a worker out of the team.
///
/// Equivalent to [`serve_worker_with_obs`] with [`Obs::disabled`]: the
/// returned [`WorkerStats`] carry the counters either way.
///
/// # Errors
///
/// Returns transport failures other than a clean shutdown/close.
pub fn serve_worker(
    transport: &dyn Transport,
    master: usize,
    expert: &mut Sequential,
) -> Result<WorkerStats, NetError> {
    serve_worker_with_obs(transport, master, expert, &Obs::disabled())
}

/// [`serve_worker`] with an observability handle: mirrors every
/// [`WorkerStats`] counter into the registry live
/// (`worker.rounds_served`, `worker.probes_answered`,
/// `worker.malformed_skipped`) and traces each served batch as a
/// `worker.forward` span — so worker-side telemetry flows through the
/// same snapshot machinery as the master's instead of living in a
/// parallel ad-hoc struct.
///
/// # Errors
///
/// Returns transport failures other than a clean shutdown/close.
pub fn serve_worker_with_obs(
    transport: &dyn Transport,
    master: usize,
    expert: &mut Sequential,
    obs: &Obs,
) -> Result<WorkerStats, NetError> {
    serve_worker_with_config(
        transport,
        master,
        expert,
        WorkerConfig {
            obs: obs.clone(),
            budget: HostBudget::unlimited(),
        },
    )
}

/// [`serve_worker`] with full policy control, including multi-expert
/// hosting for the recovery protocol (DESIGN.md §14): besides answering
/// input broadcasts with its own expert, the worker admits
/// [`PayloadKind::LoadExpert`] offers against its [`HostBudget`],
/// reassembles chunked transfers (resumably — the in-flight
/// [`PartialLoad`] survives across loop iterations), and once an expert is
/// resident fans every input through it too, returning a demuxable
/// per-expert result set so the master's argmin-entropy still sees the
/// full team.
///
/// # Errors
///
/// Returns transport failures other than a clean shutdown/close.
pub fn serve_worker_with_config(
    transport: &dyn Transport,
    master: usize,
    expert: &mut Sequential,
    config: WorkerConfig,
) -> Result<WorkerStats, NetError> {
    const POLL: Duration = Duration::from_millis(50);
    let obs = &config.obs;
    let me = transport.node_id();
    let c_rounds = obs.metrics.counter("worker.rounds_served");
    let c_probes = obs.metrics.counter("worker.probes_answered");
    let c_malformed = obs.metrics.counter("worker.malformed_skipped");
    let c_loads = obs.metrics.counter("worker.loads_accepted");
    let c_refused = obs.metrics.counter("worker.loads_refused");
    let m_alloc = AllocMeters::register(&obs.metrics, &format!("expert.{me}"));
    // All protocol decisions live in the pure state machine (DESIGN.md
    // §15); this shell owns the transport, the shutdown poll, the model
    // forwards/installs behind [`fsm::WorkerHooks`], and mirrors the
    // FSM's counters into the live registry.
    let mut machine = fsm::WorkerFsm::new(master, config.budget);
    let mut hooks = ServeHooks {
        me,
        expert,
        hosted: BTreeMap::new(),
        obs,
        m_alloc: &m_alloc,
    };
    loop {
        // Check for shutdown first so it cannot starve behind inputs.
        match transport.recv(master, TAG_SHUTDOWN, Duration::from_millis(1)) {
            Ok(_) => return Ok(machine.stats()),
            Err(NetError::Timeout { .. }) => {}
            Err(NetError::Closed) => return Ok(machine.stats()),
            Err(e) => return Err(e),
        }
        let bytes = match transport.recv(master, TAG_INPUT, POLL) {
            Ok(bytes) => bytes,
            Err(NetError::Timeout { .. }) => continue,
            Err(NetError::Closed) => return Ok(machine.stats()),
            Err(e) => return Err(e),
        };
        // A traced frame re-parents this worker's handling onto the
        // master's sending span: the `worker.handle` enter event carries
        // the remote parent (`trace`/`rpeer`/`rparent`), which is what
        // `trace-assemble` uses to graft this node's spans into the
        // master's round (DESIGN.md §17). Untraced frames take the
        // wire-identical legacy path.
        let in_ctx = peek_trace(&bytes);
        if let Some(ctx) = in_ctx {
            obs.tracer
                .recv_event("input", master as u64, ctx, bytes.len() as u64);
        }
        let _handle_span = in_ctx.map(|ctx| {
            obs.span(
                "worker.handle",
                &[
                    ("trace", ctx.trace_id),
                    ("rpeer", master as u64),
                    ("rparent", ctx.parent_span),
                ],
            )
        });
        let before = machine.stats();
        let replies = machine.step(&bytes, &mut hooks)?;
        let after = machine.stats();
        c_rounds.add(after.rounds_served - before.rounds_served);
        c_probes.add(after.probes_answered - before.probes_answered);
        c_malformed.add(after.malformed_skipped - before.malformed_skipped);
        c_loads.add(after.loads_accepted - before.loads_accepted);
        c_refused.add(after.loads_refused - before.loads_refused);
        for msg in replies {
            let (payload, reply_ctx) = match in_ctx {
                Some(ctx) => {
                    let reply_ctx = obs.tracer.current_ctx(ctx.trace_id);
                    (msg.encode_traced(reply_ctx), Some(reply_ctx))
                }
                None => (msg.encode(), None),
            };
            match transport.send(msg.to, msg.tag, &payload) {
                Ok(()) => {
                    if let Some(ctx) = reply_ctx {
                        obs.tracer
                            .send_event("result", msg.to as u64, ctx, payload.len() as u64);
                    }
                }
                Err(NetError::Closed) => return Ok(machine.stats()),
                Err(e) => return Err(e),
            }
        }
    }
}

/// The IO side of the worker serve loop, injected into
/// [`fsm::WorkerFsm::step`]: runs the real forward passes and
/// materializes hosted experts, while every protocol decision stays in
/// the state machine.
struct ServeHooks<'a> {
    me: usize,
    expert: &'a mut Sequential,
    /// Migrated experts resident on this node, keyed by expert id (the
    /// FSM tracks their budget charges).
    hosted: BTreeMap<u32, Sequential>,
    obs: &'a Obs,
    m_alloc: &'a AllocMeters,
}

impl fsm::WorkerHooks for ServeHooks<'_> {
    fn forward(&mut self, input_payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let images = decode_f32s(input_payload).and_then(|(dims, data)| {
            Tensor::from_vec(data, dims)
                .map_err(|e| NetError::Malformed(format!("input tensor: {e}")))
        })?;
        let rows = images.dims().first().copied().unwrap_or(0);
        let _forward_span = self.obs.span("worker.forward", &[("rows", rows as u64)]);
        // Honesty check against the static certificate: count what this
        // forward actually allocates (DESIGN.md §13).
        let mem = MemScope::begin();
        let results = local_results(self.expert, &images);
        let payload = if self.hosted.is_empty() {
            // Wire-identical to the pre-recovery protocol — and to the
            // certified `wire_result_bytes`.
            encode_results(&results)
        } else {
            // Fan the batch through every hosted expert; the master
            // demuxes by expert id.
            let mut set: Vec<(u32, Vec<(usize, f32)>)> = vec![(self.me as u32, results)];
            for (&id, model) in self.hosted.iter_mut() {
                set.push((id, local_results(model, &images)));
            }
            encode_result_set(&set)
        };
        let mem_stats = mem.stats();
        self.m_alloc
            .record(mem_stats.allocated_bytes, mem_stats.peak_bytes);
        Ok(payload)
    }

    fn install(
        &mut self,
        expert: u32,
        manifest: &TransferManifest,
        state: &[u8],
    ) -> Result<(), NetError> {
        let (model, _resident) = crate::recover::build_from_state(manifest, state)?;
        self.hosted.insert(expert, model);
        Ok(())
    }

    fn evict(&mut self, expert: u32) {
        self.hosted.remove(&expert);
    }
}

/// A multi-round master-side inference session: owns the round counter and
/// the [`FailureDetector`], so peer health carries across rounds.
///
/// One-shot callers can use [`master_infer`]; anything serving a stream of
/// inferences should hold a session so that a dead worker stops costing a
/// full timeout on every single round.
#[derive(Debug)]
pub struct InferenceSession {
    config: MasterConfig,
    detector: FailureDetector,
    /// Session-local round index: unlike the process-global stamp it is
    /// identical across identical runs, so it is what trace spans carry.
    rounds: u64,
    c_send_retries: Counter,
    c_stale: Counter,
    c_corrupt: Counter,
    c_malformed: Counter,
    c_parked: Counter,
    c_rescued: Counter,
    m_alloc: AllocMeters,
    recovery: Option<RecoveryManager>,
    /// Per-round latency attribution (DESIGN.md §17): the same
    /// compute / wire / wait / retry split `trace-assemble` derives from
    /// the cross-node DAG, measured locally so it is available even
    /// without per-node sinks.
    h_attr_compute: Arc<teamnet_obs::Histogram>,
    h_attr_wire: Arc<teamnet_obs::Histogram>,
    h_attr_wait: Arc<teamnet_obs::Histogram>,
    h_attr_retry: Arc<teamnet_obs::Histogram>,
}

impl InferenceSession {
    /// Creates a session for the cluster behind `transport`.
    pub fn new(transport: &dyn Transport, config: MasterConfig) -> Self {
        let mut detector = FailureDetector::with_clock(
            transport.num_nodes(),
            config.failure.clone(),
            Arc::clone(&config.clock),
        );
        detector.set_transition_counter(config.obs.metrics.counter("detector.transitions"));
        let c_send_retries = config.obs.metrics.counter("round.send.retries");
        let c_stale = config.obs.metrics.counter("round.stale_discarded");
        let c_corrupt = config.obs.metrics.counter("round.corrupt_discarded");
        let c_malformed = config.obs.metrics.counter("round.malformed_discarded");
        let c_parked = config.obs.metrics.counter("round.cross_session_parked");
        let c_rescued = config.obs.metrics.counter("round.cross_session_rescued");
        let m_alloc = AllocMeters::register(
            &config.obs.metrics,
            &format!("expert.{}", transport.node_id()),
        );
        let h_attr_compute = config.obs.metrics.histogram("round.attr.compute.ns");
        let h_attr_wire = config.obs.metrics.histogram("round.attr.wire.ns");
        let h_attr_wait = config.obs.metrics.histogram("round.attr.wait.ns");
        let h_attr_retry = config.obs.metrics.histogram("round.attr.retry.ns");
        InferenceSession {
            config,
            detector,
            rounds: 0,
            c_send_retries,
            c_stale,
            c_corrupt,
            c_malformed,
            c_parked,
            c_rescued,
            m_alloc,
            recovery: None,
            h_attr_compute,
            h_attr_wire,
            h_attr_wait,
            h_attr_retry,
        }
    }

    /// Read access to peer health between rounds.
    pub fn detector(&self) -> &FailureDetector {
        &self.detector
    }

    /// Arms failure-backtracking expert re-placement (DESIGN.md §14): the
    /// manager's registered experts are migrated to surviving hosts with
    /// certified spare memory whenever the failure detector quarantines
    /// their current host, and handed back on readmission. The recovery
    /// pass runs at the end of every [`InferenceSession::infer`] round.
    pub fn set_recovery(&mut self, manager: RecoveryManager) {
        self.recovery = Some(manager);
    }

    /// Read access to the recovery manager, if armed.
    pub fn recovery(&self) -> Option<&RecoveryManager> {
        self.recovery.as_ref()
    }

    /// Sends `payload` to `peer` with bounded retries + backoff inside
    /// `deadline`. Returns `(delivered, retry_ns)` — whether the send
    /// ever succeeded plus the nanoseconds spent in backoff sleeps, so
    /// the round can attribute that time to `retry` rather than `wire`.
    fn send_retrying(
        &self,
        transport: &dyn Transport,
        peer: usize,
        payload: &[u8],
        round: u64,
        deadline: Instant,
    ) -> Result<(bool, u64), NetError> {
        let seed = round ^ ((peer as u64) << 48);
        let mut backoff = Backoff::with_clock(
            self.config.send_retry.clone(),
            seed,
            deadline,
            Arc::clone(&self.config.clock),
        );
        let mut retry_ns = 0u64;
        loop {
            // Pass-through: `payload` arrives pre-stamped by the caller
            // (the broadcast loop attaches the round's trace context).
            // lint: allow(trace-propagation)
            match transport.send(peer, TAG_INPUT, payload) {
                Ok(()) => return Ok((true, retry_ns)),
                Err(e @ (NetError::UnknownPeer(_) | NetError::Closed)) => {
                    if self.config.require_all_workers {
                        return Err(e);
                    }
                    return Ok((false, retry_ns));
                }
                Err(e) => match backoff.next_delay() {
                    Some(delay) => {
                        self.c_send_retries.inc();
                        // The backoff sleep gets its own span so the
                        // assembled critical path can blame retries, not
                        // the wire, for the stall.
                        let _retry_span = self
                            .config
                            .obs
                            .span("retry.backoff", &[("peer", peer as u64)]);
                        // Measure on the tracer clock so attribution stays
                        // deterministic when the tracer runs virtual time.
                        let before = self.config.obs.tracer.now_ns();
                        self.config.clock.sleep(delay);
                        let slept = self.config.obs.tracer.now_ns().saturating_sub(before);
                        retry_ns = retry_ns.saturating_add(slept);
                    }
                    None => {
                        if self.config.require_all_workers {
                            return Err(e);
                        }
                        return Ok((false, retry_ns));
                    }
                },
            }
        }
    }

    /// One fault-tolerant collaborative inference round.
    ///
    /// Broadcasts `images` to every live peer, probes quarantined peers
    /// whose probe is due, evaluates the local `expert` while workers
    /// compute, gathers round-stamped replies under one deadline budget
    /// (discarding stale and corrupt traffic), folds the evidence into the
    /// failure detector, and returns predictions plus per-peer health.
    ///
    /// # Errors
    ///
    /// With `require_all_workers` set: [`NetError::Timeout`] when a
    /// contacted worker misses the deadline, [`NetError::Malformed`] /
    /// [`NetError::Corrupt`] when a reply is undecodable, and send
    /// failures. In degraded mode those all demote the peer instead.
    pub fn infer(
        &mut self,
        transport: &dyn Transport,
        expert: &mut Sequential,
        images: &Tensor,
    ) -> Result<InferenceReport, NetError> {
        let result = self.infer_inner(transport, expert, images);
        if result.is_err() {
            // Round failed: dump the flight-recorder ring (if armed) with
            // the failure as its final event, so the last N trace events
            // before the anomaly survive even when no full sink is wired.
            let round_idx = self.rounds.saturating_sub(1);
            let _ = self
                .config
                .obs
                .flight_dump("flight.round_failed", &[("round_idx", round_idx)]);
        }
        result
    }

    fn infer_inner(
        &mut self,
        transport: &dyn Transport,
        expert: &mut Sequential,
        images: &Tensor,
    ) -> Result<InferenceReport, NetError> {
        let me = transport.node_id();
        let num_nodes = transport.num_nodes();
        let n = images.dims().first().copied().unwrap_or(0);
        let round = next_round();
        // Register with the cross-session router before any send: once the
        // broadcast is out, a reply can race back — possibly into a
        // concurrent sibling session's recv. The RAII guard unregisters on
        // every exit path.
        let _registration = RoundRegistration::new(round);
        // Spans carry the session-local index, not the process-global
        // stamp: two identical seeded sessions must emit identical traces
        // even when other sessions in the process consumed stamps first.
        let session_round = self.rounds;
        self.rounds += 1;
        let obs = self.config.obs.clone();
        // Trace id for the round: deterministic in (seed, session round),
        // so identical seeded runs stamp identical ids (DESIGN.md §17).
        let traced = obs.enabled();
        let trace_id = derive_trace_id(self.config.trace_seed, session_round);
        // Attribution reads the *tracer's* clock, never `config.clock`:
        // the two may differ (deterministic soaks pin the tracer to a
        // ManualClock), and a wall-clock read here would make the traced
        // metrics diverge between identical seeded runs.
        let t_round = obs.tracer.now_ns();
        let mut attr_retry_ns = 0u64;
        // The `trace` field on the round span is what the assembler's
        // critical-path sweep keys cross-node membership on.
        let _round_span = obs.span(
            "round",
            &[
                ("round_idx", session_round),
                ("rows", n as u64),
                ("trace", trace_id),
            ],
        );

        // Plan and broadcast. Quarantined peers are skipped outright;
        // probe-due peers get a 16-byte probe instead of the full batch.
        let send_deadline = self.config.clock.now() + self.config.worker_timeout;
        let mut plans: Vec<ContactPlan> = vec![ContactPlan::Skip; num_nodes];
        let mut sent: Vec<bool> = vec![false; num_nodes];
        // Untraced runs share one pre-encoded frame per kind —
        // byte-identical to wire v1 and to the certified cost model.
        // Traced runs re-encode per peer so each frame carries a
        // [`TraceContext`] parented on that peer's `round.send` span
        // (`with_trace`), making the worker's handling span a causal
        // child of this round in the assembled cross-node DAG.
        let input_env = Envelope::new(
            round,
            PayloadKind::Input,
            encode_f32s(images.dims(), images.data()),
        );
        let probe_env = Envelope::new(round, PayloadKind::Probe, Vec::new());
        let input_payload = input_env.encode();
        let probe_payload = probe_env.encode();
        let t_broadcast = obs.tracer.now_ns();
        {
            let _broadcast_span = obs.span("round.broadcast", &[]);
            for peer in 0..num_nodes {
                if peer == me {
                    continue;
                }
                let plan = self.detector.plan(peer);
                let (env, shared, kind_name) = match plan {
                    ContactPlan::Full => (&input_env, &input_payload, "input"),
                    ContactPlan::Probe => (&probe_env, &probe_payload, "probe"),
                    ContactPlan::Skip => {
                        if let Some(p) = plans.get_mut(peer) {
                            *p = plan;
                        }
                        continue;
                    }
                };
                let ok = if traced {
                    let _send_span = obs.span(
                        "round.send",
                        &[
                            ("peer", peer as u64),
                            ("bytes", (shared.len() + TRACE_EXT_LEN) as u64),
                        ],
                    );
                    let ctx = obs.tracer.current_ctx(trace_id);
                    let payload = env.clone().with_trace(ctx).encode();
                    let (ok, retry_ns) =
                        self.send_retrying(transport, peer, &payload, round, send_deadline)?;
                    attr_retry_ns = attr_retry_ns.saturating_add(retry_ns);
                    if ok {
                        obs.tracer
                            .send_event(kind_name, peer as u64, ctx, payload.len() as u64);
                    }
                    ok
                } else {
                    let _send_span = obs.span(
                        "round.send",
                        &[("peer", peer as u64), ("bytes", shared.len() as u64)],
                    );
                    let (ok, retry_ns) =
                        self.send_retrying(transport, peer, shared, round, send_deadline)?;
                    attr_retry_ns = attr_retry_ns.saturating_add(retry_ns);
                    ok
                };
                if let (Some(p), Some(s)) = (plans.get_mut(peer), sent.get_mut(peer)) {
                    *p = plan;
                    *s = ok;
                }
            }
        }
        let broadcast_ns = obs.tracer.now_ns().saturating_sub(t_broadcast);

        // Local expert runs while the workers compute. Selection compares
        // δ*-weighted entropies; reported entropy stays raw.
        let t_forward = obs.tracer.now_ns();
        let local = {
            let _forward_span = obs.span("expert.forward", &[("rows", n as u64)]);
            // Honesty check against the static certificate: count what the
            // local expert's forward actually allocates (DESIGN.md §13).
            let mem = MemScope::begin();
            let local = local_results(expert, images);
            let stats = mem.stats();
            self.m_alloc.record(stats.allocated_bytes, stats.peak_bytes);
            local
        };
        let compute_ns = obs.tracer.now_ns().saturating_sub(t_forward);
        // Frame classification and the running argmin fold live in the
        // pure gather state machine (DESIGN.md §15); this shell owns the
        // transport waits, the deadline budget and the counters.
        let mut gather = fsm::GatherFsm::new(
            round,
            me,
            n,
            local,
            self.config.calibration.clone(),
            self.config.require_all_workers,
        );

        // Gather leg: one deadline budget shared by every wait, including
        // re-waits after discarding stale/corrupt/malformed traffic.
        let deadline = self.config.clock.now() + self.config.worker_timeout;
        let mut responded: Vec<bool> = vec![false; num_nodes];
        let mut stale_discarded = 0u64;
        let mut corrupt_discarded = 0u64;
        let mut malformed_discarded = 0u64;
        let _gather_span = obs.span("round.gather", &[]);
        for peer in 0..num_nodes {
            let plan = plans.get(peer).copied().unwrap_or(ContactPlan::Skip);
            if peer == me || plan == ContactPlan::Skip {
                continue;
            }
            if !sent.get(peer).copied().unwrap_or(false) {
                continue; // send never went out: counts as a miss below
            }
            let _await_span = obs.span("gather.await", &[("peer", peer as u64)]);
            let got = loop {
                // A sibling session may already have consumed this peer's
                // reply and parked it for us; the router is checked before
                // every blocking wait and once more after a timeout.
                let bytes = match take_parked(round, peer) {
                    Some(bytes) => {
                        self.c_rescued.inc();
                        bytes
                    }
                    None => {
                        let remaining = deadline.saturating_duration_since(self.config.clock.now());
                        match transport.recv(peer, TAG_RESULT, remaining) {
                            Ok(bytes) => bytes,
                            Err(NetError::Timeout { .. }) => match take_parked(round, peer) {
                                Some(bytes) => {
                                    self.c_rescued.inc();
                                    bytes
                                }
                                None => break false,
                            },
                            Err(e) => return Err(e),
                        }
                    }
                };
                // A traced reply carries the worker's sending span; the
                // recv event is the receive half of the wire edge.
                if let Some(ctx) = peek_trace(&bytes) {
                    obs.tracer
                        .recv_event("result", peer as u64, ctx, bytes.len() as u64);
                }
                match gather.step(peer, &bytes) {
                    fsm::GatherVerdict::Fatal(e) => return Err(e),
                    fsm::GatherVerdict::Discarded(fsm::GatherDiscard::Stale { seen }) => {
                        // Stamped for a concurrent sibling session's round?
                        // Route it there instead of dropping it.
                        if park_for_round(seen, peer, bytes) {
                            self.c_parked.inc();
                        } else {
                            stale_discarded += 1;
                            self.c_stale.inc();
                        }
                    }
                    fsm::GatherVerdict::Discarded(fsm::GatherDiscard::Corrupt) => {
                        corrupt_discarded += 1;
                        self.c_corrupt.inc();
                    }
                    fsm::GatherVerdict::Discarded(fsm::GatherDiscard::Malformed) => {
                        malformed_discarded += 1;
                        self.c_malformed.inc();
                    }
                    fsm::GatherVerdict::Accepted { folded } => {
                        if folded {
                            // The argmin fold ran inside the pure state
                            // machine; emit the span here so traces keep
                            // the per-peer fold event.
                            let _argmin_span = obs.span("entropy.argmin", &[("peer", peer as u64)]);
                        }
                        break true;
                    }
                }
            };
            if let Some(r) = responded.get_mut(peer) {
                *r = got;
            }
            if !got && self.config.require_all_workers {
                return Err(NetError::Timeout {
                    waiting_for: format!("results from worker {peer} (round {round})"),
                });
            }
        }
        drop(_gather_span);
        let best = gather.into_predictions();

        // Fold the round's evidence into the detector.
        for peer in 0..num_nodes {
            let plan = plans.get(peer).copied().unwrap_or(ContactPlan::Skip);
            let contacted = peer != me && plan != ContactPlan::Skip;
            let answered = responded.get(peer).copied().unwrap_or(false);
            if contacted {
                if answered {
                    self.detector.record_success(peer);
                } else {
                    let before = self.detector.health(peer);
                    self.detector.record_miss(peer);
                    if before != PeerHealth::Quarantined
                        && self.detector.health(peer) == PeerHealth::Quarantined
                    {
                        // A peer just crossed into quarantine: dump the
                        // flight-recorder ring (if armed) with this
                        // transition as its final event.
                        let _ = obs.flight_dump(
                            "flight.quarantine",
                            &[("peer", peer as u64), ("round_idx", session_round)],
                        );
                    }
                }
            }
        }

        // Recovery pass (DESIGN.md §14): with the round's quarantine
        // decisions made, hand experts back to readmitted homes and
        // re-place orphans of quarantined hosts, so the *next* round's
        // gather already sees full team coverage.
        let health: Vec<PeerHealth> = (0..num_nodes)
            .map(|p| {
                if p == me {
                    PeerHealth::Live
                } else {
                    self.detector.health(p)
                }
            })
            .collect();
        if let Some(recovery) = self.recovery.as_mut() {
            // Recovery transfers inherit the round's trace id, so their
            // frames (and the worker spans handling them) stay causal
            // children of this round in the assembled DAG.
            recovery.tick_traced(transport, me, &health, traced.then_some(trace_id));
        }
        let expert_hosts = self
            .recovery
            .as_ref()
            .map(RecoveryManager::expert_hosts)
            .unwrap_or_default();
        let migrations = self
            .recovery
            .as_ref()
            .map_or(0, RecoveryManager::migrations);

        // Snapshot per-peer health for the report.
        let mut peers = BTreeMap::new();
        for peer in 0..num_nodes {
            let plan = plans.get(peer).copied().unwrap_or(ContactPlan::Skip);
            let contacted = peer != me && plan != ContactPlan::Skip;
            let answered = responded.get(peer).copied().unwrap_or(false);
            peers.insert(
                peer,
                PeerReport {
                    health: health.get(peer).copied().unwrap_or(PeerHealth::Quarantined),
                    contacted: contacted || peer == me,
                    probed: plan == ContactPlan::Probe,
                    responded: answered || peer == me,
                    consecutive_misses: self.detector.misses(peer),
                    hosted_experts: expert_hosts
                        .iter()
                        .filter(|&(&e, &h)| h == peer && e != peer)
                        .map(|(&e, _)| e)
                        .collect(),
                },
            );
        }

        // Local latency attribution for the round (the cheap, single-node
        // counterpart of `trace-assemble`'s cross-node critical path):
        // wire = broadcast minus backoff sleeps, compute = the local
        // forward, wait = everything else (dominated by the gather leg).
        let wall_ns = obs.tracer.now_ns().saturating_sub(t_round);
        let wire_ns = broadcast_ns.saturating_sub(attr_retry_ns);
        let wait_ns = wall_ns
            .saturating_sub(broadcast_ns)
            .saturating_sub(compute_ns);
        // Only traced sessions feed these: a disabled tracer falls back
        // to wall time, which would poison deterministic metric pins.
        if traced {
            self.h_attr_compute.observe(compute_ns);
            self.h_attr_wire.observe(wire_ns);
            self.h_attr_wait.observe(wait_ns);
            self.h_attr_retry.observe(attr_retry_ns);
        }

        Ok(InferenceReport {
            round,
            predictions: best,
            peers,
            stale_discarded,
            corrupt_discarded,
            malformed_discarded,
            expert_hosts,
            migrations,
        })
    }
}

/// One-shot master-side collaborative inference over an input batch.
///
/// Creates a throwaway [`InferenceSession`] (every peer starts live) and
/// runs a single round; the round stamp is still globally unique, so even
/// repeated one-shot calls over the same transport can never consume a
/// previous call's late reply. Hold an [`InferenceSession`] instead when
/// serving many rounds — it remembers which peers are dead.
///
/// # Errors
///
/// * [`NetError::Timeout`] if a worker misses the deadline and
///   `require_all_workers` is set;
/// * [`NetError::Malformed`] / [`NetError::Corrupt`] for undecodable
///   worker responses in strict mode;
/// * transport failures otherwise.
pub fn master_infer(
    transport: &dyn Transport,
    expert: &mut Sequential,
    images: &Tensor,
    config: &MasterConfig,
) -> Result<Vec<TeamPrediction>, NetError> {
    let mut session = InferenceSession::new(transport, config.clone());
    session
        .infer(transport, expert, images)
        .map(|report| report.predictions)
}

/// Asks every worker served by [`serve_worker`] to exit.
///
/// # Errors
///
/// Propagates transport send failures.
pub fn shutdown_workers(transport: &dyn Transport) -> Result<(), NetError> {
    let me = transport.node_id();
    for peer in 0..transport.num_nodes() {
        if peer != me {
            transport.send(peer, TAG_SHUTDOWN, &[])?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::build_expert;
    use crate::recover::{AckStatus, LoadAckMsg, LoadChunkMsg, LoadExpertMsg};
    use crossbeam::thread;
    use teamnet_net::ChannelTransport;
    use teamnet_nn::ModelSpec;

    fn expert(seed: u64) -> Sequential {
        build_expert(&ModelSpec::mlp(2, 16), seed)
    }

    #[test]
    fn results_codec_roundtrip() {
        let results = vec![(3usize, 0.5f32), (9, 1.25)];
        let decoded = decode_results(&encode_results(&results)).unwrap();
        assert_eq!(decoded, results);
        assert!(decode_results(&[1, 2, 3]).is_err());
    }

    #[test]
    fn round_stamps_are_process_unique() {
        let a = next_round();
        let b = next_round();
        assert!(b > a);
    }

    #[test]
    fn distributed_matches_local_team() {
        // A 3-node cluster must produce exactly the same predictions as an
        // in-process TeamNet with the same experts.
        let nodes = ChannelTransport::mesh(3);
        let images = Tensor::rand_uniform(
            [4, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9),
        );

        let mut local_team = crate::team::TeamNet::from_experts(
            ModelSpec::mlp(2, 16),
            vec![expert(0), expert(1), expert(2)],
        );
        let expected = local_team.predict(&images);

        let got = thread::scope(|scope| {
            for (i, node) in nodes.iter().enumerate().skip(1) {
                let mut worker_expert = expert(i as u64);
                scope.spawn(move |_| serve_worker(node, 0, &mut worker_expert).unwrap());
            }
            let mut master_expert = expert(0);
            let preds = master_infer(
                &nodes[0],
                &mut master_expert,
                &images,
                &MasterConfig::default(),
            )
            .unwrap();
            shutdown_workers(&nodes[0]).unwrap();
            preds
        })
        .unwrap();

        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.label, e.label);
            assert_eq!(g.expert, e.expert);
            assert!((g.entropy - e.entropy).abs() < 1e-5);
        }
    }

    #[test]
    fn calibrated_distributed_matches_calibrated_local() {
        let nodes = ChannelTransport::mesh(2);
        let images = Tensor::rand_uniform(
            [3, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11),
        );
        let weights = vec![3.0f32, 0.4];
        let mut local_team =
            crate::team::TeamNet::from_experts(ModelSpec::mlp(2, 16), vec![expert(0), expert(1)]);
        local_team.set_calibration(weights.clone());
        let expected = local_team.predict(&images);

        let got = thread::scope(|scope| {
            scope.spawn(|_| {
                let mut worker_expert = expert(1);
                serve_worker(&nodes[1], 0, &mut worker_expert).unwrap();
            });
            let mut master_expert = expert(0);
            let config = MasterConfig {
                calibration: Some(weights),
                ..MasterConfig::default()
            };
            let preds = master_infer(&nodes[0], &mut master_expert, &images, &config).unwrap();
            shutdown_workers(&nodes[0]).unwrap();
            preds
        })
        .unwrap();

        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.expert, e.expert);
            assert_eq!(g.label, e.label);
        }
    }

    #[test]
    fn missing_worker_times_out_when_required() {
        let nodes = ChannelTransport::mesh(2);
        let mut master_expert = expert(0);
        let images = Tensor::zeros([1, 1, 28, 28]);
        let config = MasterConfig {
            worker_timeout: Duration::from_millis(50),
            require_all_workers: true,
            ..MasterConfig::default()
        };
        let res = master_infer(&nodes[0], &mut master_expert, &images, &config);
        assert!(matches!(res, Err(NetError::Timeout { .. })), "{res:?}");
    }

    #[test]
    fn missing_worker_degrades_gracefully_when_optional() {
        let nodes = ChannelTransport::mesh(2);
        let mut master_expert = expert(0);
        let images = Tensor::zeros([2, 1, 28, 28]);
        let config = MasterConfig {
            worker_timeout: Duration::from_millis(50),
            require_all_workers: false,
            ..MasterConfig::default()
        };
        let preds = master_infer(&nodes[0], &mut master_expert, &images, &config).unwrap();
        assert_eq!(preds.len(), 2);
        // All predictions fall back to the master's own expert.
        assert!(preds.iter().all(|p| p.expert == 0));
    }

    #[test]
    fn works_over_real_tcp() {
        let nodes = teamnet_net::TcpTransport::mesh_localhost(2).unwrap();
        let images = Tensor::rand_uniform(
            [2, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3),
        );
        thread::scope(|scope| {
            scope.spawn(|_| {
                let mut worker_expert = expert(1);
                serve_worker(&nodes[1], 0, &mut worker_expert).unwrap();
            });
            let mut master_expert = expert(0);
            let preds = master_infer(
                &nodes[0],
                &mut master_expert,
                &images,
                &MasterConfig::default(),
            )
            .unwrap();
            assert_eq!(preds.len(), 2);
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn worker_survives_multiple_rounds() {
        let nodes = ChannelTransport::mesh(2);
        thread::scope(|scope| {
            scope.spawn(|_| {
                let mut worker_expert = expert(1);
                let stats = serve_worker(&nodes[1], 0, &mut worker_expert).unwrap();
                assert_eq!(stats.rounds_served, 5);
                assert_eq!(stats.malformed_skipped, 0);
            });
            let mut master_expert = expert(0);
            for round in 0..5 {
                let images = Tensor::full([1, 1, 28, 28], round as f32 * 0.1);
                let preds = master_infer(
                    &nodes[0],
                    &mut master_expert,
                    &images,
                    &MasterConfig::default(),
                )
                .unwrap();
                assert_eq!(preds.len(), 1);
            }
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn worker_skips_malformed_batches_and_keeps_serving() {
        let nodes = ChannelTransport::mesh(2);
        let images = Tensor::full([1, 1, 28, 28], 0.5);
        thread::scope(|scope| {
            let worker = scope.spawn(|_| {
                let mut worker_expert = expert(1);
                serve_worker(&nodes[1], 0, &mut worker_expert).unwrap()
            });
            // Garbage that fails envelope decoding entirely.
            nodes[0].send(1, TAG_INPUT, b"not an envelope").unwrap();
            // A well-formed envelope whose tensor payload is broken.
            let bad_tensor = Envelope::new(999, PayloadKind::Input, vec![7; 9]).encode();
            nodes[0].send(1, TAG_INPUT, &bad_tensor).unwrap();
            // A healthy round must still be answered after both.
            let mut master_expert = expert(0);
            let preds = master_infer(
                &nodes[0],
                &mut master_expert,
                &images,
                &MasterConfig::default(),
            )
            .unwrap();
            assert_eq!(preds.len(), 1);
            shutdown_workers(&nodes[0]).unwrap();
            let stats = worker.join().unwrap();
            assert_eq!(stats.malformed_skipped, 2);
            assert_eq!(stats.rounds_served, 1);
        })
        .unwrap();
    }

    #[test]
    fn session_report_tracks_peer_health() {
        let nodes = ChannelTransport::mesh(2);
        let images = Tensor::full([1, 1, 28, 28], 0.3);
        thread::scope(|scope| {
            scope.spawn(|_| {
                let mut worker_expert = expert(1);
                serve_worker(&nodes[1], 0, &mut worker_expert).unwrap();
            });
            let config = MasterConfig {
                require_all_workers: false,
                ..MasterConfig::default()
            };
            let mut session = InferenceSession::new(&nodes[0], config);
            let mut master_expert = expert(0);
            let report = session
                .infer(&nodes[0], &mut master_expert, &images)
                .unwrap();
            assert_eq!(report.predictions.len(), 1);
            assert_eq!(report.peers.len(), 2);
            assert_eq!(report.peers[&1].health, PeerHealth::Live);
            assert!(report.peers[&1].responded);
            assert_eq!(report.responsive_peers(), vec![0, 1]);
            assert_eq!(report.stale_discarded, 0);
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn result_set_codec_roundtrip_and_legacy_fallback() {
        let set: Vec<(u32, Vec<(usize, f32)>)> = vec![
            (2, vec![(3, 0.5), (1, 0.25)]),
            (5, vec![(0, 1.5), (9, 0.125)]),
        ];
        let bytes = encode_result_set(&set);
        let decoded = decode_result_set(&bytes, 2).unwrap();
        assert_eq!(
            decoded,
            vec![
                (2usize, vec![(3usize, 0.5f32), (1, 0.25)]),
                (5, vec![(0, 1.5), (9, 0.125)]),
            ]
        );
        // A legacy single-matrix payload attributes to the sender.
        let legacy = encode_results(&[(7, 2.0)]);
        assert_eq!(
            decode_result_set(&legacy, 4).unwrap(),
            vec![(4, vec![(7, 2.0)])]
        );
        // Truncation and trailing garbage are rejected.
        assert!(decode_result_set(&bytes[..bytes.len() - 2], 0).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_result_set(&long, 0).is_err());
    }

    fn recovery_manager(chunk_bytes: usize) -> RecoveryManager {
        let mut mgr = RecoveryManager::new(crate::recover::RecoveryConfig {
            chunk_bytes,
            ack_timeout: Duration::from_secs(2),
            transfer_timeout: Duration::from_secs(10),
            ..crate::recover::RecoveryConfig::default()
        });
        let mut e1 = expert(1);
        let state = teamnet_nn::state_vec(&mut e1);
        mgr.register_expert(1, 1, ModelSpec::mlp(2, 16), &state, 50_000);
        mgr
    }

    fn recovery_master_config() -> MasterConfig {
        MasterConfig {
            worker_timeout: Duration::from_millis(300),
            require_all_workers: false,
            failure: FailureDetectorConfig {
                suspect_after: 1,
                quarantine_after: 1,
                probe_interval: 1,
            },
            ..MasterConfig::default()
        }
    }

    #[test]
    fn quarantined_expert_is_replaced_then_handed_back() {
        let nodes = ChannelTransport::mesh(3);
        let images = Tensor::rand_uniform(
            [2, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(21),
        );
        let mut local_team = crate::team::TeamNet::from_experts(
            ModelSpec::mlp(2, 16),
            vec![expert(0), expert(1), expert(2)],
        );
        let expected = local_team.predict(&images);

        thread::scope(|scope| {
            let worker1 = scope.spawn(|_| {
                let mut e = expert(1);
                serve_worker(&nodes[1], 0, &mut e).unwrap()
            });
            let worker2 = scope.spawn(|_| {
                let mut e = expert(2);
                serve_worker_with_config(
                    &nodes[2],
                    0,
                    &mut e,
                    WorkerConfig {
                        budget: HostBudget::new(1 << 30, 1 << 20),
                        ..WorkerConfig::default()
                    },
                )
                .unwrap()
            });

            let mut session = InferenceSession::new(&nodes[0], recovery_master_config());
            let mut mgr = recovery_manager(4 * 1024);
            mgr.register_budget(1, HostBudget::new(1 << 30, 1 << 20));
            mgr.register_budget(2, HostBudget::new(1 << 30, 1 << 20));
            session.set_recovery(mgr);
            let mut master_expert = expert(0);

            // Round 1: everyone healthy, no migrations.
            let r1 = session
                .infer(&nodes[0], &mut master_expert, &images)
                .unwrap();
            assert_eq!(r1.migrations, 0);
            assert_eq!(r1.expert_hosts, [(1, 1)].into_iter().collect());

            // Worker 1 dies; the next round quarantines it and the
            // recovery pass migrates its expert onto worker 2.
            nodes[0].send(1, TAG_SHUTDOWN, &[]).unwrap();
            worker1.join().unwrap();
            let r2 = session
                .infer(&nodes[0], &mut master_expert, &images)
                .unwrap();
            assert_eq!(r2.peers[&1].health, PeerHealth::Quarantined);
            assert_eq!(r2.migrations, 1);
            assert_eq!(r2.expert_hosts, [(1, 2)].into_iter().collect());
            assert_eq!(r2.peers[&2].hosted_experts, vec![1]);

            // Round 3: full team coverage is restored — the distributed
            // answer matches the 3-expert local team exactly even though
            // node 1 is still being probed, because node 2 now answers
            // for both experts. Node 1 is respawned and acks the probe,
            // so the same round's recovery pass hands the expert back.
            let respawned = scope.spawn(|_| {
                let mut e = expert(1);
                serve_worker(&nodes[1], 0, &mut e).unwrap()
            });
            let r3 = session
                .infer(&nodes[0], &mut master_expert, &images)
                .unwrap();
            assert_eq!(r3.predictions.len(), expected.len());
            for (g, e) in r3.predictions.iter().zip(&expected) {
                assert_eq!(g.label, e.label);
                assert_eq!(g.expert, e.expert);
                assert!((g.entropy - e.entropy).abs() < 1e-5);
            }
            assert_eq!(r3.peers[&1].health, PeerHealth::Live);
            assert_eq!(r3.expert_hosts, [(1, 1)].into_iter().collect());
            assert_eq!(session.recovery().unwrap().handbacks(), 1);
            assert_eq!(session.recovery().unwrap().migrations(), 1);

            // Round 4: steady state — the home node answers for its own
            // expert again and the team is byte-for-byte itself.
            let r4 = session
                .infer(&nodes[0], &mut master_expert, &images)
                .unwrap();
            for (g, e) in r4.predictions.iter().zip(&expected) {
                assert_eq!(g.label, e.label);
                assert_eq!(g.expert, e.expert);
            }
            assert_eq!(r4.migrations, 1);

            shutdown_workers(&nodes[0]).unwrap();
            let stats2 = worker2.join().unwrap();
            assert_eq!(stats2.loads_accepted, 1);
            assert!(stats2.chunks_received >= 12, "{stats2:?}");
            assert_eq!(stats2.loads_refused, 0);
            respawned.join().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn refused_offer_backtracks_to_admissible_candidate() {
        // Node 2 has no master-side budget (ranks first as "unknown")
        // but its own HostBudget refuses the expert; node 3 is certified
        // and admits. The master must backtrack 2 → 3 without OOMing
        // anyone.
        let nodes = ChannelTransport::mesh(4);
        let images = Tensor::full([1, 1, 28, 28], 0.4);
        thread::scope(|scope| {
            let tight = scope.spawn(|_| {
                let mut e = expert(2);
                serve_worker_with_config(
                    &nodes[2],
                    0,
                    &mut e,
                    WorkerConfig {
                        budget: HostBudget::new(60_000, 59_000), // spare 1 000 < 50 000
                        ..WorkerConfig::default()
                    },
                )
                .unwrap()
            });
            let roomy = scope.spawn(|_| {
                let mut e = expert(3);
                serve_worker_with_config(
                    &nodes[3],
                    0,
                    &mut e,
                    WorkerConfig {
                        budget: HostBudget::new(1 << 30, 0),
                        ..WorkerConfig::default()
                    },
                )
                .unwrap()
            });

            let mut session = InferenceSession::new(&nodes[0], recovery_master_config());
            let mut mgr = recovery_manager(8 * 1024);
            mgr.register_budget(3, HostBudget::new(1 << 30, 0));
            session.set_recovery(mgr);
            let mut master_expert = expert(0);

            // Worker 1 never existed: one round quarantines it and runs
            // the refuse → backtrack → admit sequence.
            let report = session
                .infer(&nodes[0], &mut master_expert, &images)
                .unwrap();
            assert_eq!(report.peers[&1].health, PeerHealth::Quarantined);
            assert_eq!(report.migrations, 1);
            assert_eq!(report.expert_hosts, [(1, 3)].into_iter().collect());
            let recovery = session.recovery().unwrap();
            assert_eq!(recovery.backtracks(), 1);
            assert_eq!(recovery.migrations(), 1);

            shutdown_workers(&nodes[0]).unwrap();
            let tight_stats = tight.join().unwrap();
            assert_eq!(tight_stats.loads_refused, 1);
            assert_eq!(tight_stats.loads_accepted, 0);
            let roomy_stats = roomy.join().unwrap();
            assert_eq!(roomy_stats.loads_accepted, 1);
        })
        .unwrap();
    }

    #[test]
    fn mid_transfer_failure_rolls_back_and_backtracks() {
        // Node 2 (ranked first by certified spare) accepts the offer but
        // reports failure on the first chunk; the master must abandon it
        // and complete the migration on node 3.
        let nodes = ChannelTransport::mesh(4);
        let images = Tensor::full([1, 1, 28, 28], 0.6);
        thread::scope(|scope| {
            let saboteur = scope.spawn(|_| {
                // Hand-rolled protocol peer: serves round 1 honestly
                // (with hopeless entropy so it never wins a row), accepts
                // the transfer offer, then fails it on the first chunk.
                let node = &nodes[2];
                loop {
                    let bytes = node.recv(0, TAG_INPUT, Duration::from_secs(5)).unwrap();
                    let env = Envelope::decode(&bytes).unwrap();
                    match env.kind {
                        PayloadKind::Input => {
                            let reply = Envelope::new(
                                env.round,
                                PayloadKind::Result,
                                encode_results(&[(0, 1.0e9)]),
                            );
                            node.send(0, TAG_RESULT, &reply.encode()).unwrap();
                        }
                        PayloadKind::LoadExpert => {
                            let msg = LoadExpertMsg::decode(&env.payload).unwrap();
                            let LoadExpertMsg::Offer { expert: id, .. } = msg else {
                                panic!("expected an offer, got {msg:?}");
                            };
                            let accept = LoadAckMsg {
                                expert: id,
                                status: AckStatus::Accept,
                                arg: 0,
                            };
                            let env_out =
                                Envelope::new(env.round, PayloadKind::LoadAck, accept.encode());
                            node.send(0, TAG_RESULT, &env_out.encode()).unwrap();
                        }
                        PayloadKind::LoadChunk => {
                            let msg = LoadChunkMsg::decode(&env.payload).unwrap();
                            let failed = LoadAckMsg {
                                expert: msg.expert,
                                status: AckStatus::Failed,
                                arg: 0,
                            };
                            let env_out =
                                Envelope::new(env.round, PayloadKind::LoadAck, failed.encode());
                            node.send(0, TAG_RESULT, &env_out.encode()).unwrap();
                            return;
                        }
                        other => panic!("unexpected kind {other:?}"),
                    }
                }
            });
            let survivor = scope.spawn(|_| {
                let mut e = expert(3);
                serve_worker_with_config(
                    &nodes[3],
                    0,
                    &mut e,
                    WorkerConfig {
                        budget: HostBudget::new(1 << 30, 0),
                        ..WorkerConfig::default()
                    },
                )
                .unwrap()
            });

            let mut session = InferenceSession::new(&nodes[0], recovery_master_config());
            let mut mgr = recovery_manager(8 * 1024);
            mgr.register_budget(2, HostBudget::new(1 << 30, 0)); // spare ≈ 1 GiB
            mgr.register_budget(3, HostBudget::new(1 << 29, 0)); // spare ≈ 512 MiB
            session.set_recovery(mgr);
            let mut master_expert = expert(0);

            let report = session
                .infer(&nodes[0], &mut master_expert, &images)
                .unwrap();
            assert_eq!(report.migrations, 1);
            assert_eq!(report.expert_hosts, [(1, 3)].into_iter().collect());
            let recovery = session.recovery().unwrap();
            assert_eq!(recovery.backtracks(), 1);

            saboteur.join().unwrap();
            shutdown_workers(&nodes[0]).unwrap();
            let survivor_stats = survivor.join().unwrap();
            assert_eq!(survivor_stats.loads_accepted, 1);
        })
        .unwrap();
    }

    #[test]
    fn probe_ack_is_cheap_and_counted() {
        let nodes = ChannelTransport::mesh(2);
        thread::scope(|scope| {
            let worker = scope.spawn(|_| {
                let mut worker_expert = expert(1);
                serve_worker(&nodes[1], 0, &mut worker_expert).unwrap()
            });
            let probe = Envelope::new(123, PayloadKind::Probe, Vec::new());
            nodes[0].send(1, TAG_INPUT, &probe.encode()).unwrap();
            let ack_bytes = nodes[0]
                .recv(1, TAG_RESULT, Duration::from_secs(2))
                .unwrap();
            let ack = Envelope::decode(&ack_bytes).unwrap();
            assert_eq!(ack.kind, PayloadKind::ProbeAck);
            assert_eq!(ack.round, 123);
            shutdown_workers(&nodes[0]).unwrap();
            let stats = worker.join().unwrap();
            assert_eq!(stats.probes_answered, 1);
        })
        .unwrap();
    }
}
