//! Heartbeat-based failure detection for the collaborative inference
//! protocol.
//!
//! The master treats each round's reply as a heartbeat: a worker that
//! answers is **live**; consecutive misses walk it through **suspect**
//! into **quarantined**, at which point the master stops spending
//! broadcast bytes and gather waits on it entirely. Quarantined peers are
//! periodically **probed** with a tiny (16-byte) envelope; an
//! acknowledgement readmits them to the team. This is the DEFER-style
//! "keep serving while nodes come and go" behaviour the edge setting
//! demands — a worker walking out of WiFi range degrades the team for a
//! few rounds instead of stalling every inference on its timeout forever.
//!
//! State machine (driven once per inference round per peer):
//!
//! ```text
//!            miss (< M total)            miss (M-th)
//!   Live ───────────────────▶ Suspect ───────────────▶ Quarantined
//!    ▲  ▲                        │                      │       ▲
//!    │  └────── reply ───────────┘     probe interval   │       │
//!    │                                  elapsed         ▼       │ probe
//!    └───────────────── probe ack ─────────────────── Probing ──┘ missed
//! ```

use crate::team::TeamPrediction;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use teamnet_net::{Clock, SystemClock};
use teamnet_obs::Counter;

/// Liveness classification of one peer, as seen by the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerHealth {
    /// Responding normally; receives every broadcast.
    Live,
    /// Missed at least one recent round but not yet quarantined; still
    /// receives broadcasts.
    Suspect,
    /// Missed `quarantine_after` consecutive rounds; skipped entirely
    /// (no broadcast, no gather wait).
    Quarantined,
    /// Quarantined peer currently being probed for readmission.
    Probing,
}

/// Failure-detector policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureDetectorConfig {
    /// Consecutive misses before a peer is marked [`PeerHealth::Suspect`].
    pub suspect_after: u32,
    /// Consecutive misses (M) before a peer is quarantined.
    pub quarantine_after: u32,
    /// Rounds between readmission probes while quarantined.
    pub probe_interval: u64,
}

impl Default for FailureDetectorConfig {
    fn default() -> Self {
        FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 3,
            probe_interval: 4,
        }
    }
}

/// How the master should engage a peer this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactPlan {
    /// Send the full input batch and wait for results.
    Full,
    /// Send a lightweight probe and wait for its acknowledgement.
    Probe,
    /// Do not contact; do not wait.
    Skip,
}

#[derive(Debug, Clone)]
struct PeerState {
    health: PeerHealth,
    consecutive_misses: u32,
    rounds_since_probe: u64,
    last_reply: Option<Instant>,
}

/// Per-peer liveness tracker owned by the master's inference session.
///
/// Peers are kept in a `BTreeMap` keyed by node id so any iteration over
/// them (diagnostics, reports) happens in id order — the `det-map` audit
/// rule forbids hash-ordered iteration anywhere on the protocol path.
/// Heartbeat timestamps come from an injected [`Clock`], so tests can
/// measure idle times on a [`teamnet_net::ManualClock`] without sleeping.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    config: FailureDetectorConfig,
    peers: BTreeMap<usize, PeerState>,
    clock: Arc<dyn Clock>,
    /// Incremented on every health-state change (Live→Suspect,
    /// Quarantined→Probing, readmissions, …) when wired via
    /// [`FailureDetector::set_transition_counter`].
    transitions: Option<Counter>,
}

impl FailureDetector {
    /// Creates a detector over `num_nodes` peers, all initially live,
    /// stamping heartbeats with the system clock.
    pub fn new(num_nodes: usize, config: FailureDetectorConfig) -> Self {
        FailureDetector::with_clock(num_nodes, config, Arc::new(SystemClock))
    }

    /// Creates a detector whose heartbeat timestamps come from `clock`.
    pub fn with_clock(
        num_nodes: usize,
        config: FailureDetectorConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        FailureDetector {
            config,
            peers: (0..num_nodes)
                .map(|id| {
                    (
                        id,
                        PeerState {
                            health: PeerHealth::Live,
                            consecutive_misses: 0,
                            rounds_since_probe: 0,
                            last_reply: None,
                        },
                    )
                })
                .collect(),
            clock,
            transitions: None,
        }
    }

    /// Wires a metrics counter that ticks on every peer health-state
    /// transition (the `detector.transitions` counter of DESIGN.md §12).
    pub fn set_transition_counter(&mut self, counter: Counter) {
        self.transitions = Some(counter);
    }

    fn note_transition(&self, from: PeerHealth, to: PeerHealth) {
        if from != to {
            if let Some(c) = &self.transitions {
                c.inc();
            }
        }
    }

    /// Current health of `peer` (out-of-range peers read as quarantined).
    pub fn health(&self, peer: usize) -> PeerHealth {
        self.peers
            .get(&peer)
            .map_or(PeerHealth::Quarantined, |p| p.health)
    }

    /// Consecutive misses recorded for `peer`.
    pub fn misses(&self, peer: usize) -> u32 {
        self.peers.get(&peer).map_or(0, |p| p.consecutive_misses)
    }

    /// How long `peer` has been silent: the time since its last recorded
    /// reply, measured on the injected clock. `None` until the first
    /// reply (or for an unknown peer).
    pub fn idle_for(&self, peer: usize) -> Option<Duration> {
        let last = self.peers.get(&peer)?.last_reply?;
        Some(self.clock.now().saturating_duration_since(last))
    }

    /// Decides how to engage `peer` this round. Call exactly once per peer
    /// per round: quarantined peers accrue probe-interval credit here and
    /// transition to [`PeerHealth::Probing`] when a probe is due.
    pub fn plan(&mut self, peer: usize) -> ContactPlan {
        let Some(state) = self.peers.get_mut(&peer) else {
            return ContactPlan::Skip;
        };
        let before = state.health;
        let plan = match state.health {
            PeerHealth::Live | PeerHealth::Suspect => ContactPlan::Full,
            PeerHealth::Quarantined => {
                state.rounds_since_probe += 1;
                if state.rounds_since_probe >= self.config.probe_interval {
                    state.health = PeerHealth::Probing;
                    ContactPlan::Probe
                } else {
                    ContactPlan::Skip
                }
            }
            // Only reachable if the caller forgot to record the previous
            // probe's outcome; probe again rather than wedging.
            PeerHealth::Probing => ContactPlan::Probe,
        };
        let after = state.health;
        self.note_transition(before, after);
        plan
    }

    /// Records a reply (result or probe ack) from `peer`: readmission.
    pub fn record_success(&mut self, peer: usize) {
        let now = self.clock.now();
        if let Some(state) = self.peers.get_mut(&peer) {
            let before = state.health;
            state.health = PeerHealth::Live;
            state.consecutive_misses = 0;
            state.rounds_since_probe = 0;
            state.last_reply = Some(now);
            self.note_transition(before, PeerHealth::Live);
        }
    }

    /// Records a missed reply from `peer` (timeout, undecodable response,
    /// or failed send).
    pub fn record_miss(&mut self, peer: usize) {
        let quarantine_after = self.config.quarantine_after.max(1);
        let suspect_after = self.config.suspect_after.max(1);
        if let Some(state) = self.peers.get_mut(&peer) {
            let before = state.health;
            state.consecutive_misses = state.consecutive_misses.saturating_add(1);
            if state.health == PeerHealth::Probing {
                // Failed readmission probe: back to quarantine, restart the
                // probe clock.
                state.health = PeerHealth::Quarantined;
                state.rounds_since_probe = 0;
            } else if state.consecutive_misses >= quarantine_after {
                state.health = PeerHealth::Quarantined;
                state.rounds_since_probe = 0;
            } else if state.consecutive_misses >= suspect_after {
                state.health = PeerHealth::Suspect;
            }
            let after = state.health;
            self.note_transition(before, after);
        }
    }
}

/// One peer's slice of an [`InferenceReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerReport {
    /// Health after this round's evidence was folded in.
    pub health: PeerHealth,
    /// Whether the master sent this peer anything this round.
    pub contacted: bool,
    /// Whether the contact was a lightweight readmission probe rather than
    /// the full input broadcast.
    pub probed: bool,
    /// Whether a valid, current-round reply arrived in time.
    pub responded: bool,
    /// Consecutive misses on record after this round.
    pub consecutive_misses: u32,
    /// Experts this peer is hosting on behalf of quarantined homes via
    /// the recovery protocol (DESIGN.md §14); empty outside recovery.
    #[serde(default)]
    pub hosted_experts: Vec<usize>,
}

/// The outcome of one fault-tolerant inference round: predictions plus
/// per-peer health and protocol-hygiene counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Round stamp this report describes.
    pub round: u64,
    /// Per-row winning predictions (always one per input row).
    pub predictions: Vec<TeamPrediction>,
    /// Per-node health entries, keyed by node id; an ordered map so the
    /// report serializes and iterates identically run-to-run (`det-map`).
    /// The master's own entry is always live/responded.
    pub peers: BTreeMap<usize, PeerReport>,
    /// Replies discarded because they carried an earlier round's stamp.
    pub stale_discarded: u64,
    /// Replies discarded because their payload CRC failed.
    pub corrupt_discarded: u64,
    /// Replies discarded because they failed structural decoding.
    pub malformed_discarded: u64,
    /// Current expert → host map from the recovery manager: every
    /// registered expert and the node holding it after this round's
    /// recovery pass. Empty when recovery is not armed.
    #[serde(default)]
    pub expert_hosts: BTreeMap<usize, usize>,
    /// Cumulative successful expert migrations observed by the session up
    /// to and including this round.
    #[serde(default)]
    pub migrations: u64,
}

impl InferenceReport {
    /// Node ids that were contacted and responded this round (the experts
    /// whose predictions can appear in `predictions`), including the
    /// master itself.
    pub fn responsive_peers(&self) -> Vec<usize> {
        self.peers
            .iter()
            .filter(|(_, p)| p.responded)
            .map(|(&i, _)| i)
            .collect()
    }

    /// A canonical, byte-stable rendering of everything in the report
    /// *except* the absolute round stamp.
    ///
    /// Round stamps come from a process-global counter, so two identical
    /// runs in different processes (or different orderings within one
    /// process) disagree on them even when the protocol behaved
    /// identically; the summary deliberately leaves them out so seeded
    /// chaos soaks can assert byte-identical behaviour across invocations.
    /// Entropies are rendered as `f32::to_bits` hex — exact, not subject
    /// to float-formatting drift.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.predictions.iter().enumerate() {
            let _ = writeln!(
                out,
                "pred {i}: label={} expert={} entropy={:08x}",
                p.label,
                p.expert,
                p.entropy.to_bits()
            );
        }
        for (id, p) in &self.peers {
            let _ = writeln!(
                out,
                "peer {id}: health={:?} contacted={} probed={} responded={} misses={}",
                p.health, p.contacted, p.probed, p.responded, p.consecutive_misses
            );
        }
        for (expert, host) in &self.expert_hosts {
            let _ = writeln!(out, "host {expert}: node={host}");
        }
        let _ = writeln!(
            out,
            "discarded: stale={} corrupt={} malformed={}",
            self.stale_discarded, self.corrupt_discarded, self.malformed_discarded
        );
        let _ = writeln!(out, "recovery: migrations={}", self.migrations);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(m: u32, probe: u64) -> FailureDetectorConfig {
        FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: m,
            probe_interval: probe,
        }
    }

    #[test]
    fn misses_walk_live_to_quarantined() {
        let mut fd = FailureDetector::new(2, config(3, 4));
        assert_eq!(fd.health(1), PeerHealth::Live);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Suspect);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Suspect);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        assert_eq!(fd.misses(1), 3);
    }

    #[test]
    fn success_resets_from_any_state() {
        let mut fd = FailureDetector::new(2, config(2, 4));
        fd.record_miss(1);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        fd.record_success(1);
        assert_eq!(fd.health(1), PeerHealth::Live);
        assert_eq!(fd.misses(1), 0);
    }

    #[test]
    fn quarantined_peer_is_skipped_until_probe_due() {
        let mut fd = FailureDetector::new(2, config(1, 3));
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
        assert_eq!(fd.health(1), PeerHealth::Probing);
    }

    #[test]
    fn failed_probe_restarts_quarantine_clock() {
        let mut fd = FailureDetector::new(2, config(1, 2));
        fd.record_miss(1);
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        // Clock restarted: skip again before the next probe.
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
    }

    #[test]
    fn successful_probe_readmits() {
        let mut fd = FailureDetector::new(2, config(1, 1));
        fd.record_miss(1);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
        fd.record_success(1);
        assert_eq!(fd.health(1), PeerHealth::Live);
        assert_eq!(fd.plan(1), ContactPlan::Full);
    }

    #[test]
    fn live_and_suspect_get_full_contact() {
        let mut fd = FailureDetector::new(3, config(5, 2));
        assert_eq!(fd.plan(1), ContactPlan::Full);
        fd.record_miss(2);
        assert_eq!(fd.health(2), PeerHealth::Suspect);
        assert_eq!(fd.plan(2), ContactPlan::Full);
    }

    #[test]
    fn out_of_range_peer_is_skipped() {
        let mut fd = FailureDetector::new(1, FailureDetectorConfig::default());
        assert_eq!(fd.plan(7), ContactPlan::Skip);
        assert_eq!(fd.health(7), PeerHealth::Quarantined);
        fd.record_miss(7); // must not panic
    }

    fn peer(responded: bool) -> PeerReport {
        PeerReport {
            health: PeerHealth::Live,
            contacted: true,
            probed: false,
            responded,
            consecutive_misses: 0,
            hosted_experts: Vec::new(),
        }
    }

    fn report() -> InferenceReport {
        InferenceReport {
            round: 1,
            predictions: vec![TeamPrediction {
                label: 3,
                expert: 1,
                entropy: 0.25,
            }],
            peers: [(0, peer(true)), (1, peer(false)), (2, peer(true))]
                .into_iter()
                .collect(),
            stale_discarded: 4,
            corrupt_discarded: 0,
            malformed_discarded: 0,
            expert_hosts: BTreeMap::new(),
            migrations: 0,
        }
    }

    #[test]
    fn responsive_peers_lists_responders() {
        assert_eq!(report().responsive_peers(), vec![0, 2]);
    }

    #[test]
    fn summary_is_byte_stable_and_round_free() {
        let a = report();
        let mut b = report();
        b.round = 999; // different absolute round, same behaviour
        assert_eq!(a.summary(), b.summary());
        assert!(a.summary().contains("stale=4"), "{}", a.summary());
        assert!(a.summary().contains("entropy=3e800000"), "{}", a.summary());
    }

    #[test]
    fn summary_transcript_format_is_pinned() {
        // Regression test for the transcript format, including the
        // recovery fields: consumers (soak tests, trace diffing) depend
        // on these exact bytes.
        let mut r = report();
        r.expert_hosts = [(1, 2), (5, 0)].into_iter().collect();
        r.migrations = 3;
        if let Some(p) = r.peers.get_mut(&2) {
            p.hosted_experts = vec![1];
        }
        let expected = "\
pred 0: label=3 expert=1 entropy=3e800000
peer 0: health=Live contacted=true probed=false responded=true misses=0
peer 1: health=Live contacted=true probed=false responded=false misses=0
peer 2: health=Live contacted=true probed=false responded=true misses=0
host 1: node=2
host 5: node=0
discarded: stale=4 corrupt=0 malformed=0
recovery: migrations=3
";
        assert_eq!(r.summary(), expected);
        // Without recovery armed the host lines vanish but the counter
        // line stays, so transcripts remain line-for-line comparable.
        assert!(report().summary().ends_with("recovery: migrations=0\n"));
        assert!(!report().summary().contains("host "));
    }

    #[test]
    fn transition_counter_ticks_on_state_changes_only() {
        let counter = Counter::default();
        let mut fd = FailureDetector::new(2, config(2, 1));
        fd.set_transition_counter(counter.clone());
        fd.record_success(1); // Live -> Live: no transition
        assert_eq!(counter.get(), 0);
        fd.record_miss(1); // Live -> Suspect
        assert_eq!(counter.get(), 1);
        fd.record_miss(1); // Suspect -> Quarantined
        assert_eq!(counter.get(), 2);
        assert_eq!(fd.plan(1), ContactPlan::Probe); // Quarantined -> Probing
        assert_eq!(counter.get(), 3);
        fd.record_success(1); // Probing -> Live (readmission)
        assert_eq!(counter.get(), 4);
        assert_eq!(fd.plan(1), ContactPlan::Full); // Live stays Live
        assert_eq!(counter.get(), 4);
    }

    /// One step of detector history for the probe-credit properties:
    /// either the round's reply evidence or a plan() call.
    #[derive(Debug, Clone, Copy)]
    enum Step {
        Success,
        Miss,
        Plan,
    }

    fn apply(fd: &mut FailureDetector, step: Step) -> Option<ContactPlan> {
        match step {
            Step::Success => {
                fd.record_success(1);
                None
            }
            Step::Miss => {
                fd.record_miss(1);
                None
            }
            Step::Plan => Some(fd.plan(1)),
        }
    }

    mod probe_credit_props {
        use super::*;
        use proptest::prelude::*;

        fn steps() -> impl Strategy<Value = Vec<Step>> {
            prop::collection::vec(
                (0u8..3).prop_map(|b| match b {
                    0 => Step::Success,
                    1 => Step::Miss,
                    _ => Step::Plan,
                }),
                0..60,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Probe credit must reset on every readmission: after any
            /// quarantine→readmission history whatsoever, the detector's
            /// future plan() stream is indistinguishable from a fresh
            /// detector's — stale probe credit must never leak across a
            /// readmission and fire an early probe.
            #[test]
            fn readmission_resets_probe_credit(
                history in steps(),
                m in 1u32..4,
                probe in 1u64..6,
                tail_plans in 1usize..12,
            ) {
                let cfg = FailureDetectorConfig {
                    suspect_after: 1,
                    quarantine_after: m,
                    probe_interval: probe,
                };
                let mut seasoned = FailureDetector::new(2, cfg.clone());
                for step in history {
                    apply(&mut seasoned, step);
                }
                // Readmission from whatever state the history produced.
                seasoned.record_success(1);
                let mut fresh = FailureDetector::new(2, cfg);
                fresh.record_success(1);
                for _ in 0..tail_plans {
                    prop_assert_eq!(seasoned.plan(1), fresh.plan(1));
                    prop_assert_eq!(seasoned.health(1), fresh.health(1));
                    prop_assert_eq!(seasoned.misses(1), fresh.misses(1));
                }
            }

            /// Two detectors fed the same seeded history agree on every
            /// plan() and on all visible state — no hidden drift between
            /// equivalent histories.
            #[test]
            fn equivalent_histories_never_drift(
                history in steps(),
                m in 1u32..4,
                probe in 1u64..6,
            ) {
                let cfg = FailureDetectorConfig {
                    suspect_after: 1,
                    quarantine_after: m,
                    probe_interval: probe,
                };
                let mut a = FailureDetector::new(2, cfg.clone());
                let mut b = FailureDetector::new(2, cfg);
                for step in history {
                    prop_assert_eq!(apply(&mut a, step), apply(&mut b, step));
                    prop_assert_eq!(a.health(1), b.health(1));
                    prop_assert_eq!(a.misses(1), b.misses(1));
                }
            }

            /// Across arbitrarily many quarantine→readmission cycles the
            /// probe cadence stays exactly `probe_interval`: after each
            /// fresh quarantine, plan() skips interval−1 times and then
            /// probes.
            #[test]
            fn probe_cadence_is_stable_across_cycles(
                cycles in 1usize..6,
                m in 1u32..4,
                probe in 1u64..6,
            ) {
                let cfg = FailureDetectorConfig {
                    suspect_after: 1,
                    quarantine_after: m,
                    probe_interval: probe,
                };
                let mut fd = FailureDetector::new(2, cfg);
                for _ in 0..cycles {
                    // Drive into quarantine.
                    for _ in 0..m {
                        fd.record_miss(1);
                    }
                    prop_assert_eq!(fd.health(1), PeerHealth::Quarantined);
                    // Credit accrues one skip at a time, then one probe.
                    for _ in 0..probe.saturating_sub(1) {
                        prop_assert_eq!(fd.plan(1), ContactPlan::Skip);
                    }
                    prop_assert_eq!(fd.plan(1), ContactPlan::Probe);
                    // Readmit; credit must be gone again.
                    fd.record_success(1);
                    prop_assert_eq!(fd.plan(1), ContactPlan::Full);
                }
            }
        }
    }

    #[test]
    fn idle_time_is_measured_on_the_injected_clock() {
        use teamnet_net::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let mut fd = FailureDetector::with_clock(
            2,
            FailureDetectorConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        assert_eq!(fd.idle_for(1), None, "no reply yet");
        fd.record_success(1);
        assert_eq!(fd.idle_for(1), Some(Duration::ZERO));
        clock.advance(Duration::from_secs(7));
        assert_eq!(fd.idle_for(1), Some(Duration::from_secs(7)));
        fd.record_success(1);
        assert_eq!(fd.idle_for(1), Some(Duration::ZERO));
        assert_eq!(fd.idle_for(9), None, "unknown peer");
    }
}
