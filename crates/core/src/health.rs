//! Heartbeat-based failure detection for the collaborative inference
//! protocol.
//!
//! The master treats each round's reply as a heartbeat: a worker that
//! answers is **live**; consecutive misses walk it through **suspect**
//! into **quarantined**, at which point the master stops spending
//! broadcast bytes and gather waits on it entirely. Quarantined peers are
//! periodically **probed** with a tiny (16-byte) envelope; an
//! acknowledgement readmits them to the team. This is the DEFER-style
//! "keep serving while nodes come and go" behaviour the edge setting
//! demands — a worker walking out of WiFi range degrades the team for a
//! few rounds instead of stalling every inference on its timeout forever.
//!
//! State machine (driven once per inference round per peer):
//!
//! ```text
//!            miss (< M total)            miss (M-th)
//!   Live ───────────────────▶ Suspect ───────────────▶ Quarantined
//!    ▲  ▲                        │                      │       ▲
//!    │  └────── reply ───────────┘     probe interval   │       │
//!    │                                  elapsed         ▼       │ probe
//!    └───────────────── probe ack ─────────────────── Probing ──┘ missed
//! ```

use crate::team::TeamPrediction;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use teamnet_net::{Clock, SystemClock};
use teamnet_obs::Counter;

/// Liveness classification of one peer, as seen by the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerHealth {
    /// Responding normally; receives every broadcast.
    Live,
    /// Missed at least one recent round but not yet quarantined; still
    /// receives broadcasts.
    Suspect,
    /// Missed `quarantine_after` consecutive rounds; skipped entirely
    /// (no broadcast, no gather wait).
    Quarantined,
    /// Quarantined peer currently being probed for readmission.
    Probing,
}

/// Failure-detector policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureDetectorConfig {
    /// Consecutive misses before a peer is marked [`PeerHealth::Suspect`].
    pub suspect_after: u32,
    /// Consecutive misses (M) before a peer is quarantined.
    pub quarantine_after: u32,
    /// Rounds between readmission probes while quarantined.
    pub probe_interval: u64,
}

impl Default for FailureDetectorConfig {
    fn default() -> Self {
        FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 3,
            probe_interval: 4,
        }
    }
}

/// How the master should engage a peer this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactPlan {
    /// Send the full input batch and wait for results.
    Full,
    /// Send a lightweight probe and wait for its acknowledgement.
    Probe,
    /// Do not contact; do not wait.
    Skip,
}

#[derive(Debug, Clone)]
struct PeerState {
    health: PeerHealth,
    consecutive_misses: u32,
    rounds_since_probe: u64,
    last_reply: Option<Instant>,
}

/// Per-peer liveness tracker owned by the master's inference session.
///
/// Peers are kept in a `BTreeMap` keyed by node id so any iteration over
/// them (diagnostics, reports) happens in id order — the `det-map` audit
/// rule forbids hash-ordered iteration anywhere on the protocol path.
/// Heartbeat timestamps come from an injected [`Clock`], so tests can
/// measure idle times on a [`teamnet_net::ManualClock`] without sleeping.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    config: FailureDetectorConfig,
    peers: BTreeMap<usize, PeerState>,
    clock: Arc<dyn Clock>,
    /// Incremented on every health-state change (Live→Suspect,
    /// Quarantined→Probing, readmissions, …) when wired via
    /// [`FailureDetector::set_transition_counter`].
    transitions: Option<Counter>,
}

impl FailureDetector {
    /// Creates a detector over `num_nodes` peers, all initially live,
    /// stamping heartbeats with the system clock.
    pub fn new(num_nodes: usize, config: FailureDetectorConfig) -> Self {
        FailureDetector::with_clock(num_nodes, config, Arc::new(SystemClock))
    }

    /// Creates a detector whose heartbeat timestamps come from `clock`.
    pub fn with_clock(
        num_nodes: usize,
        config: FailureDetectorConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        FailureDetector {
            config,
            peers: (0..num_nodes)
                .map(|id| {
                    (
                        id,
                        PeerState {
                            health: PeerHealth::Live,
                            consecutive_misses: 0,
                            rounds_since_probe: 0,
                            last_reply: None,
                        },
                    )
                })
                .collect(),
            clock,
            transitions: None,
        }
    }

    /// Wires a metrics counter that ticks on every peer health-state
    /// transition (the `detector.transitions` counter of DESIGN.md §12).
    pub fn set_transition_counter(&mut self, counter: Counter) {
        self.transitions = Some(counter);
    }

    fn note_transition(&self, from: PeerHealth, to: PeerHealth) {
        if from != to {
            if let Some(c) = &self.transitions {
                c.inc();
            }
        }
    }

    /// Current health of `peer` (out-of-range peers read as quarantined).
    pub fn health(&self, peer: usize) -> PeerHealth {
        self.peers
            .get(&peer)
            .map_or(PeerHealth::Quarantined, |p| p.health)
    }

    /// Consecutive misses recorded for `peer`.
    pub fn misses(&self, peer: usize) -> u32 {
        self.peers.get(&peer).map_or(0, |p| p.consecutive_misses)
    }

    /// How long `peer` has been silent: the time since its last recorded
    /// reply, measured on the injected clock. `None` until the first
    /// reply (or for an unknown peer).
    pub fn idle_for(&self, peer: usize) -> Option<Duration> {
        let last = self.peers.get(&peer)?.last_reply?;
        Some(self.clock.now().saturating_duration_since(last))
    }

    /// Decides how to engage `peer` this round. Call exactly once per peer
    /// per round: quarantined peers accrue probe-interval credit here and
    /// transition to [`PeerHealth::Probing`] when a probe is due.
    pub fn plan(&mut self, peer: usize) -> ContactPlan {
        let Some(state) = self.peers.get_mut(&peer) else {
            return ContactPlan::Skip;
        };
        let before = state.health;
        let plan = match state.health {
            PeerHealth::Live | PeerHealth::Suspect => ContactPlan::Full,
            PeerHealth::Quarantined => {
                state.rounds_since_probe += 1;
                if state.rounds_since_probe >= self.config.probe_interval {
                    state.health = PeerHealth::Probing;
                    ContactPlan::Probe
                } else {
                    ContactPlan::Skip
                }
            }
            // Only reachable if the caller forgot to record the previous
            // probe's outcome; probe again rather than wedging.
            PeerHealth::Probing => ContactPlan::Probe,
        };
        let after = state.health;
        self.note_transition(before, after);
        plan
    }

    /// Records a reply (result or probe ack) from `peer`: readmission.
    pub fn record_success(&mut self, peer: usize) {
        let now = self.clock.now();
        if let Some(state) = self.peers.get_mut(&peer) {
            let before = state.health;
            state.health = PeerHealth::Live;
            state.consecutive_misses = 0;
            state.rounds_since_probe = 0;
            state.last_reply = Some(now);
            self.note_transition(before, PeerHealth::Live);
        }
    }

    /// Records a missed reply from `peer` (timeout, undecodable response,
    /// or failed send).
    pub fn record_miss(&mut self, peer: usize) {
        let quarantine_after = self.config.quarantine_after.max(1);
        let suspect_after = self.config.suspect_after.max(1);
        if let Some(state) = self.peers.get_mut(&peer) {
            let before = state.health;
            state.consecutive_misses = state.consecutive_misses.saturating_add(1);
            if state.health == PeerHealth::Probing {
                // Failed readmission probe: back to quarantine, restart the
                // probe clock.
                state.health = PeerHealth::Quarantined;
                state.rounds_since_probe = 0;
            } else if state.consecutive_misses >= quarantine_after {
                state.health = PeerHealth::Quarantined;
                state.rounds_since_probe = 0;
            } else if state.consecutive_misses >= suspect_after {
                state.health = PeerHealth::Suspect;
            }
            let after = state.health;
            self.note_transition(before, after);
        }
    }
}

/// One peer's slice of an [`InferenceReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerReport {
    /// Health after this round's evidence was folded in.
    pub health: PeerHealth,
    /// Whether the master sent this peer anything this round.
    pub contacted: bool,
    /// Whether the contact was a lightweight readmission probe rather than
    /// the full input broadcast.
    pub probed: bool,
    /// Whether a valid, current-round reply arrived in time.
    pub responded: bool,
    /// Consecutive misses on record after this round.
    pub consecutive_misses: u32,
}

/// The outcome of one fault-tolerant inference round: predictions plus
/// per-peer health and protocol-hygiene counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Round stamp this report describes.
    pub round: u64,
    /// Per-row winning predictions (always one per input row).
    pub predictions: Vec<TeamPrediction>,
    /// Per-node health entries, keyed by node id; an ordered map so the
    /// report serializes and iterates identically run-to-run (`det-map`).
    /// The master's own entry is always live/responded.
    pub peers: BTreeMap<usize, PeerReport>,
    /// Replies discarded because they carried an earlier round's stamp.
    pub stale_discarded: u64,
    /// Replies discarded because their payload CRC failed.
    pub corrupt_discarded: u64,
    /// Replies discarded because they failed structural decoding.
    pub malformed_discarded: u64,
}

impl InferenceReport {
    /// Node ids that were contacted and responded this round (the experts
    /// whose predictions can appear in `predictions`), including the
    /// master itself.
    pub fn responsive_peers(&self) -> Vec<usize> {
        self.peers
            .iter()
            .filter(|(_, p)| p.responded)
            .map(|(&i, _)| i)
            .collect()
    }

    /// A canonical, byte-stable rendering of everything in the report
    /// *except* the absolute round stamp.
    ///
    /// Round stamps come from a process-global counter, so two identical
    /// runs in different processes (or different orderings within one
    /// process) disagree on them even when the protocol behaved
    /// identically; the summary deliberately leaves them out so seeded
    /// chaos soaks can assert byte-identical behaviour across invocations.
    /// Entropies are rendered as `f32::to_bits` hex — exact, not subject
    /// to float-formatting drift.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.predictions.iter().enumerate() {
            let _ = writeln!(
                out,
                "pred {i}: label={} expert={} entropy={:08x}",
                p.label,
                p.expert,
                p.entropy.to_bits()
            );
        }
        for (id, p) in &self.peers {
            let _ = writeln!(
                out,
                "peer {id}: health={:?} contacted={} probed={} responded={} misses={}",
                p.health, p.contacted, p.probed, p.responded, p.consecutive_misses
            );
        }
        let _ = writeln!(
            out,
            "discarded: stale={} corrupt={} malformed={}",
            self.stale_discarded, self.corrupt_discarded, self.malformed_discarded
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(m: u32, probe: u64) -> FailureDetectorConfig {
        FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: m,
            probe_interval: probe,
        }
    }

    #[test]
    fn misses_walk_live_to_quarantined() {
        let mut fd = FailureDetector::new(2, config(3, 4));
        assert_eq!(fd.health(1), PeerHealth::Live);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Suspect);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Suspect);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        assert_eq!(fd.misses(1), 3);
    }

    #[test]
    fn success_resets_from_any_state() {
        let mut fd = FailureDetector::new(2, config(2, 4));
        fd.record_miss(1);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        fd.record_success(1);
        assert_eq!(fd.health(1), PeerHealth::Live);
        assert_eq!(fd.misses(1), 0);
    }

    #[test]
    fn quarantined_peer_is_skipped_until_probe_due() {
        let mut fd = FailureDetector::new(2, config(1, 3));
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
        assert_eq!(fd.health(1), PeerHealth::Probing);
    }

    #[test]
    fn failed_probe_restarts_quarantine_clock() {
        let mut fd = FailureDetector::new(2, config(1, 2));
        fd.record_miss(1);
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        // Clock restarted: skip again before the next probe.
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
    }

    #[test]
    fn successful_probe_readmits() {
        let mut fd = FailureDetector::new(2, config(1, 1));
        fd.record_miss(1);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
        fd.record_success(1);
        assert_eq!(fd.health(1), PeerHealth::Live);
        assert_eq!(fd.plan(1), ContactPlan::Full);
    }

    #[test]
    fn live_and_suspect_get_full_contact() {
        let mut fd = FailureDetector::new(3, config(5, 2));
        assert_eq!(fd.plan(1), ContactPlan::Full);
        fd.record_miss(2);
        assert_eq!(fd.health(2), PeerHealth::Suspect);
        assert_eq!(fd.plan(2), ContactPlan::Full);
    }

    #[test]
    fn out_of_range_peer_is_skipped() {
        let mut fd = FailureDetector::new(1, FailureDetectorConfig::default());
        assert_eq!(fd.plan(7), ContactPlan::Skip);
        assert_eq!(fd.health(7), PeerHealth::Quarantined);
        fd.record_miss(7); // must not panic
    }

    fn peer(responded: bool) -> PeerReport {
        PeerReport {
            health: PeerHealth::Live,
            contacted: true,
            probed: false,
            responded,
            consecutive_misses: 0,
        }
    }

    fn report() -> InferenceReport {
        InferenceReport {
            round: 1,
            predictions: vec![TeamPrediction {
                label: 3,
                expert: 1,
                entropy: 0.25,
            }],
            peers: [(0, peer(true)), (1, peer(false)), (2, peer(true))]
                .into_iter()
                .collect(),
            stale_discarded: 4,
            corrupt_discarded: 0,
            malformed_discarded: 0,
        }
    }

    #[test]
    fn responsive_peers_lists_responders() {
        assert_eq!(report().responsive_peers(), vec![0, 2]);
    }

    #[test]
    fn summary_is_byte_stable_and_round_free() {
        let a = report();
        let mut b = report();
        b.round = 999; // different absolute round, same behaviour
        assert_eq!(a.summary(), b.summary());
        assert!(a.summary().contains("stale=4"), "{}", a.summary());
        assert!(a.summary().contains("entropy=3e800000"), "{}", a.summary());
    }

    #[test]
    fn transition_counter_ticks_on_state_changes_only() {
        let counter = Counter::default();
        let mut fd = FailureDetector::new(2, config(2, 1));
        fd.set_transition_counter(counter.clone());
        fd.record_success(1); // Live -> Live: no transition
        assert_eq!(counter.get(), 0);
        fd.record_miss(1); // Live -> Suspect
        assert_eq!(counter.get(), 1);
        fd.record_miss(1); // Suspect -> Quarantined
        assert_eq!(counter.get(), 2);
        assert_eq!(fd.plan(1), ContactPlan::Probe); // Quarantined -> Probing
        assert_eq!(counter.get(), 3);
        fd.record_success(1); // Probing -> Live (readmission)
        assert_eq!(counter.get(), 4);
        assert_eq!(fd.plan(1), ContactPlan::Full); // Live stays Live
        assert_eq!(counter.get(), 4);
    }

    #[test]
    fn idle_time_is_measured_on_the_injected_clock() {
        use teamnet_net::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let mut fd = FailureDetector::with_clock(
            2,
            FailureDetectorConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        assert_eq!(fd.idle_for(1), None, "no reply yet");
        fd.record_success(1);
        assert_eq!(fd.idle_for(1), Some(Duration::ZERO));
        clock.advance(Duration::from_secs(7));
        assert_eq!(fd.idle_for(1), Some(Duration::from_secs(7)));
        fd.record_success(1);
        assert_eq!(fd.idle_for(1), Some(Duration::ZERO));
        assert_eq!(fd.idle_for(9), None, "unknown peer");
    }
}
