//! Heartbeat-based failure detection for the collaborative inference
//! protocol.
//!
//! The master treats each round's reply as a heartbeat: a worker that
//! answers is **live**; consecutive misses walk it through **suspect**
//! into **quarantined**, at which point the master stops spending
//! broadcast bytes and gather waits on it entirely. Quarantined peers are
//! periodically **probed** with a tiny (16-byte) envelope; an
//! acknowledgement readmits them to the team. This is the DEFER-style
//! "keep serving while nodes come and go" behaviour the edge setting
//! demands — a worker walking out of WiFi range degrades the team for a
//! few rounds instead of stalling every inference on its timeout forever.
//!
//! State machine (driven once per inference round per peer):
//!
//! ```text
//!            miss (< M total)            miss (M-th)
//!   Live ───────────────────▶ Suspect ───────────────▶ Quarantined
//!    ▲  ▲                        │                      │       ▲
//!    │  └────── reply ───────────┘     probe interval   │       │
//!    │                                  elapsed         ▼       │ probe
//!    └───────────────── probe ack ─────────────────── Probing ──┘ missed
//! ```

use crate::team::TeamPrediction;
use serde::{Deserialize, Serialize};

/// Liveness classification of one peer, as seen by the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerHealth {
    /// Responding normally; receives every broadcast.
    Live,
    /// Missed at least one recent round but not yet quarantined; still
    /// receives broadcasts.
    Suspect,
    /// Missed `quarantine_after` consecutive rounds; skipped entirely
    /// (no broadcast, no gather wait).
    Quarantined,
    /// Quarantined peer currently being probed for readmission.
    Probing,
}

/// Failure-detector policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureDetectorConfig {
    /// Consecutive misses before a peer is marked [`PeerHealth::Suspect`].
    pub suspect_after: u32,
    /// Consecutive misses (M) before a peer is quarantined.
    pub quarantine_after: u32,
    /// Rounds between readmission probes while quarantined.
    pub probe_interval: u64,
}

impl Default for FailureDetectorConfig {
    fn default() -> Self {
        FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: 3,
            probe_interval: 4,
        }
    }
}

/// How the master should engage a peer this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactPlan {
    /// Send the full input batch and wait for results.
    Full,
    /// Send a lightweight probe and wait for its acknowledgement.
    Probe,
    /// Do not contact; do not wait.
    Skip,
}

#[derive(Debug, Clone)]
struct PeerState {
    health: PeerHealth,
    consecutive_misses: u32,
    rounds_since_probe: u64,
}

/// Per-peer liveness tracker owned by the master's inference session.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    config: FailureDetectorConfig,
    peers: Vec<PeerState>,
}

impl FailureDetector {
    /// Creates a detector over `num_nodes` peers, all initially live.
    pub fn new(num_nodes: usize, config: FailureDetectorConfig) -> Self {
        FailureDetector {
            config,
            peers: vec![
                PeerState {
                    health: PeerHealth::Live,
                    consecutive_misses: 0,
                    rounds_since_probe: 0,
                };
                num_nodes
            ],
        }
    }

    /// Current health of `peer` (out-of-range peers read as quarantined).
    pub fn health(&self, peer: usize) -> PeerHealth {
        self.peers
            .get(peer)
            .map_or(PeerHealth::Quarantined, |p| p.health)
    }

    /// Consecutive misses recorded for `peer`.
    pub fn misses(&self, peer: usize) -> u32 {
        self.peers.get(peer).map_or(0, |p| p.consecutive_misses)
    }

    /// Decides how to engage `peer` this round. Call exactly once per peer
    /// per round: quarantined peers accrue probe-interval credit here and
    /// transition to [`PeerHealth::Probing`] when a probe is due.
    pub fn plan(&mut self, peer: usize) -> ContactPlan {
        let Some(state) = self.peers.get_mut(peer) else {
            return ContactPlan::Skip;
        };
        match state.health {
            PeerHealth::Live | PeerHealth::Suspect => ContactPlan::Full,
            PeerHealth::Quarantined => {
                state.rounds_since_probe += 1;
                if state.rounds_since_probe >= self.config.probe_interval {
                    state.health = PeerHealth::Probing;
                    ContactPlan::Probe
                } else {
                    ContactPlan::Skip
                }
            }
            // Only reachable if the caller forgot to record the previous
            // probe's outcome; probe again rather than wedging.
            PeerHealth::Probing => ContactPlan::Probe,
        }
    }

    /// Records a reply (result or probe ack) from `peer`: readmission.
    pub fn record_success(&mut self, peer: usize) {
        if let Some(state) = self.peers.get_mut(peer) {
            state.health = PeerHealth::Live;
            state.consecutive_misses = 0;
            state.rounds_since_probe = 0;
        }
    }

    /// Records a missed reply from `peer` (timeout, undecodable response,
    /// or failed send).
    pub fn record_miss(&mut self, peer: usize) {
        let quarantine_after = self.config.quarantine_after.max(1);
        let suspect_after = self.config.suspect_after.max(1);
        if let Some(state) = self.peers.get_mut(peer) {
            state.consecutive_misses = state.consecutive_misses.saturating_add(1);
            if state.health == PeerHealth::Probing {
                // Failed readmission probe: back to quarantine, restart the
                // probe clock.
                state.health = PeerHealth::Quarantined;
                state.rounds_since_probe = 0;
            } else if state.consecutive_misses >= quarantine_after {
                state.health = PeerHealth::Quarantined;
                state.rounds_since_probe = 0;
            } else if state.consecutive_misses >= suspect_after {
                state.health = PeerHealth::Suspect;
            }
        }
    }
}

/// One peer's slice of an [`InferenceReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerReport {
    /// Health after this round's evidence was folded in.
    pub health: PeerHealth,
    /// Whether the master sent this peer anything this round.
    pub contacted: bool,
    /// Whether the contact was a lightweight readmission probe rather than
    /// the full input broadcast.
    pub probed: bool,
    /// Whether a valid, current-round reply arrived in time.
    pub responded: bool,
    /// Consecutive misses on record after this round.
    pub consecutive_misses: u32,
}

/// The outcome of one fault-tolerant inference round: predictions plus
/// per-peer health and protocol-hygiene counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Round stamp this report describes.
    pub round: u64,
    /// Per-row winning predictions (always one per input row).
    pub predictions: Vec<TeamPrediction>,
    /// Per-node health entries, indexed by node id. The master's own entry
    /// is always live/responded.
    pub peers: Vec<PeerReport>,
    /// Replies discarded because they carried an earlier round's stamp.
    pub stale_discarded: u64,
    /// Replies discarded because their payload CRC failed.
    pub corrupt_discarded: u64,
    /// Replies discarded because they failed structural decoding.
    pub malformed_discarded: u64,
}

impl InferenceReport {
    /// Node ids that were contacted and responded this round (the experts
    /// whose predictions can appear in `predictions`), including the
    /// master itself.
    pub fn responsive_peers(&self) -> Vec<usize> {
        self.peers
            .iter()
            .enumerate()
            .filter(|(_, p)| p.responded)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(m: u32, probe: u64) -> FailureDetectorConfig {
        FailureDetectorConfig {
            suspect_after: 1,
            quarantine_after: m,
            probe_interval: probe,
        }
    }

    #[test]
    fn misses_walk_live_to_quarantined() {
        let mut fd = FailureDetector::new(2, config(3, 4));
        assert_eq!(fd.health(1), PeerHealth::Live);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Suspect);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Suspect);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        assert_eq!(fd.misses(1), 3);
    }

    #[test]
    fn success_resets_from_any_state() {
        let mut fd = FailureDetector::new(2, config(2, 4));
        fd.record_miss(1);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        fd.record_success(1);
        assert_eq!(fd.health(1), PeerHealth::Live);
        assert_eq!(fd.misses(1), 0);
    }

    #[test]
    fn quarantined_peer_is_skipped_until_probe_due() {
        let mut fd = FailureDetector::new(2, config(1, 3));
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
        assert_eq!(fd.health(1), PeerHealth::Probing);
    }

    #[test]
    fn failed_probe_restarts_quarantine_clock() {
        let mut fd = FailureDetector::new(2, config(1, 2));
        fd.record_miss(1);
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
        fd.record_miss(1);
        assert_eq!(fd.health(1), PeerHealth::Quarantined);
        // Clock restarted: skip again before the next probe.
        assert_eq!(fd.plan(1), ContactPlan::Skip);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
    }

    #[test]
    fn successful_probe_readmits() {
        let mut fd = FailureDetector::new(2, config(1, 1));
        fd.record_miss(1);
        assert_eq!(fd.plan(1), ContactPlan::Probe);
        fd.record_success(1);
        assert_eq!(fd.health(1), PeerHealth::Live);
        assert_eq!(fd.plan(1), ContactPlan::Full);
    }

    #[test]
    fn live_and_suspect_get_full_contact() {
        let mut fd = FailureDetector::new(3, config(5, 2));
        assert_eq!(fd.plan(1), ContactPlan::Full);
        fd.record_miss(2);
        assert_eq!(fd.health(2), PeerHealth::Suspect);
        assert_eq!(fd.plan(2), ContactPlan::Full);
    }

    #[test]
    fn out_of_range_peer_is_skipped() {
        let mut fd = FailureDetector::new(1, FailureDetectorConfig::default());
        assert_eq!(fd.plan(7), ContactPlan::Skip);
        assert_eq!(fd.health(7), PeerHealth::Quarantined);
        fd.record_miss(7); // must not panic
    }

    #[test]
    fn responsive_peers_lists_responders() {
        let peer = |responded| PeerReport {
            health: PeerHealth::Live,
            contacted: true,
            probed: false,
            responded,
            consecutive_misses: 0,
        };
        let report = InferenceReport {
            round: 1,
            predictions: Vec::new(),
            peers: vec![peer(true), peer(false), peer(true)],
            stale_discarded: 0,
            corrupt_discarded: 0,
            malformed_discarded: 0,
        };
        assert_eq!(report.responsive_peers(), vec![0, 2]);
    }
}
