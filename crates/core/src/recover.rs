//! Failure-backtracking expert re-placement (DESIGN.md §14).
//!
//! TeamNet's competitive experts make every worker load-bearing: when the
//! failure detector quarantines a node, its expert's subspace vanishes
//! from the candidate set and accuracy degrades for the rest of the
//! session. This module restores full team coverage instead: the master
//! keeps each expert's trained parameters (pre-serialized in the
//! `teamnet_nn::state` wire layout) together with its certified
//! `required_resident_bytes` from the PR-6 resource certificate, and when
//! a host is quarantined it
//!
//! 1. **ranks** surviving workers by certified spare memory (largest
//!    spare first, node id as the deterministic tie-break), dropping any
//!    candidate whose certificate cannot admit the expert;
//! 2. **offers** the expert to the best candidate over a new
//!    [`PayloadKind::LoadExpert`] envelope — the worker re-checks the
//!    admission against its *own* [`HostBudget`] and may refuse;
//! 3. **ships** the weights as chunked, CRC-checked, resumable
//!    [`PayloadKind::LoadChunk`] envelopes under a stop-and-wait ARQ
//!    (each [`PayloadKind::LoadAck`] carries the next-expected chunk
//!    cursor, so a re-offer after an interrupted transfer resumes instead
//!    of restarting);
//! 4. **backtracks** to the next-ranked candidate when an offer is
//!    refused or a transfer fails mid-flight (the target frees the
//!    partial state on abort, so a failed attempt never strands memory);
//! 5. **hands the expert back** once the home node is readmitted by the
//!    failure detector — the home node kept its own weights, so hand-back
//!    is a lightweight release, not a reverse transfer.
//!
//! The master itself never hosts a migrated expert: it already fronts the
//! session, and concentrating more state on it would turn the one
//! unrecoverable node into an even larger single point of failure.
//!
//! Everything is deadline-budgeted through the existing
//! [`RetryPolicy`]/[`Backoff`] machinery on an injected [`Clock`], so the
//! whole quarantine → re-place → hand-back flow is deterministic under a
//! [`teamnet_net::ManualClock`] and seeded chaos (`tests/recovery_soak.rs`
//! asserts byte-identical transcripts across identical seeds).

use crate::expert::build_expert;
use crate::fsm;
use crate::health::PeerHealth;
use crate::runtime::{next_round, TAG_INPUT, TAG_RESULT};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
#[cfg(doc)]
use teamnet_net::PayloadKind;
use teamnet_net::{
    crc32, peek_trace, Backoff, Clock, Envelope, NetError, RetryPolicy, SystemClock, TraceContext,
    Transport,
};
use teamnet_nn::{load_state, state_from_bytes, state_to_bytes, state_vec, ModelSpec, Sequential};
use teamnet_obs::{Counter, Histogram, Obs};
use teamnet_tensor::Tensor;

/// Wire op codes for [`LoadExpertMsg`].
const OP_OFFER: u8 = 0;
const OP_RELEASE: u8 = 1;
const OP_ABORT: u8 = 2;

/// Wire status codes for [`LoadAckMsg`].
const ST_ACCEPT: u8 = 0;
const ST_REFUSE: u8 = 1;
const ST_CHUNK_OK: u8 = 2;
const ST_DONE: u8 = 3;
const ST_FAILED: u8 = 4;

/// Everything a worker needs to admit and reassemble a migrated expert:
/// the architecture to rebuild, the transfer geometry, an end-to-end
/// CRC-32 over the full serialized state (each chunk is *also* CRC-checked
/// by its envelope; this one catches reassembly bugs), and the certified
/// memory the expert will occupy once resident.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferManifest {
    /// Architecture of the migrating expert.
    pub spec: ModelSpec,
    /// Number of [`LoadChunkMsg`] chunks the state is split into.
    pub num_chunks: u32,
    /// Total serialized state length in bytes.
    pub total_bytes: u64,
    /// CRC-32 over the full serialized state.
    pub state_crc: u32,
    /// Certified resident footprint (params + peak activations) the host
    /// must be able to admit — DESIGN.md §13.
    pub required_resident_bytes: u64,
}

/// Control messages carried by a [`PayloadKind::LoadExpert`] envelope
/// (master → worker).
#[derive(Debug, Clone, PartialEq)]
pub enum LoadExpertMsg {
    /// Offer to host expert `expert`; the worker answers accept or refuse.
    Offer {
        /// Id of the expert being migrated.
        expert: u32,
        /// Architecture + transfer geometry + admission requirement.
        manifest: TransferManifest,
    },
    /// Release a hosted expert on hand-back (the home node is live again).
    Release {
        /// Id of the expert to stop hosting.
        expert: u32,
    },
    /// Abort an in-flight transfer; the worker frees the partial state.
    Abort {
        /// Id of the expert whose transfer is abandoned.
        expert: u32,
    },
}

impl LoadExpertMsg {
    /// Serializes the message (little-endian; layout documented per-field
    /// in [`LoadExpertMsg::decode`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            LoadExpertMsg::Offer { expert, manifest } => {
                out.push(OP_OFFER);
                out.extend_from_slice(&expert.to_le_bytes());
                let spec = serde_json::to_vec(&manifest.spec).unwrap_or_default();
                assert!(spec.len() <= u32::MAX as usize, "spec json length");
                out.extend_from_slice(&(spec.len() as u32).to_le_bytes());
                out.extend_from_slice(&spec);
                out.extend_from_slice(&manifest.num_chunks.to_le_bytes());
                out.extend_from_slice(&manifest.total_bytes.to_le_bytes());
                out.extend_from_slice(&manifest.state_crc.to_le_bytes());
                out.extend_from_slice(&manifest.required_resident_bytes.to_le_bytes());
            }
            LoadExpertMsg::Release { expert } => {
                out.push(OP_RELEASE);
                out.extend_from_slice(&expert.to_le_bytes());
            }
            LoadExpertMsg::Abort { expert } => {
                out.push(OP_ABORT);
                out.extend_from_slice(&expert.to_le_bytes());
            }
        }
        out
    }

    /// Parses a message: `op: u8 | expert: u32`, and for an offer
    /// additionally `spec_len: u32 | spec json | num_chunks: u32 |
    /// total_bytes: u64 | state_crc: u32 | required_resident_bytes: u64`.
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] on truncation, trailing bytes, an unknown
    /// op code or an undecodable model spec.
    pub fn decode(bytes: &[u8]) -> Result<Self, NetError> {
        let mut at = 0usize;
        let op = *take(bytes, &mut at, 1)?.first().unwrap_or(&u8::MAX);
        let expert = u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap_or_default());
        let msg = match op {
            OP_OFFER => {
                let spec_len =
                    u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap_or_default())
                        as usize;
                let spec_bytes = take(bytes, &mut at, spec_len)?;
                let spec: ModelSpec = serde_json::from_slice(spec_bytes)
                    .map_err(|e| NetError::Malformed(format!("load-expert spec: {e}")))?;
                let num_chunks =
                    u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap_or_default());
                let total_bytes =
                    u64::from_le_bytes(take(bytes, &mut at, 8)?.try_into().unwrap_or_default());
                let state_crc =
                    u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap_or_default());
                let required_resident_bytes =
                    u64::from_le_bytes(take(bytes, &mut at, 8)?.try_into().unwrap_or_default());
                LoadExpertMsg::Offer {
                    expert,
                    manifest: TransferManifest {
                        spec,
                        num_chunks,
                        total_bytes,
                        state_crc,
                        required_resident_bytes,
                    },
                }
            }
            OP_RELEASE => LoadExpertMsg::Release { expert },
            OP_ABORT => LoadExpertMsg::Abort { expert },
            other => {
                return Err(NetError::Malformed(format!(
                    "unknown load-expert op {other}"
                )))
            }
        };
        expect_consumed(bytes, at)?;
        Ok(msg)
    }
}

/// One chunk of a migrating expert's serialized state, carried by a
/// [`PayloadKind::LoadChunk`] envelope (master → worker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadChunkMsg {
    /// Id of the expert being transferred.
    pub expert: u32,
    /// Zero-based chunk index within the transfer.
    pub index: u32,
    /// The chunk's slice of the serialized state.
    pub data: Vec<u8>,
}

impl LoadChunkMsg {
    /// Serializes the chunk: `expert: u32 | index: u32 | data`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.data.len());
        out.extend_from_slice(&self.expert.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a chunk message.
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] when shorter than its 8-byte header.
    pub fn decode(bytes: &[u8]) -> Result<Self, NetError> {
        let mut at = 0usize;
        let expert = u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap_or_default());
        let index = u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap_or_default());
        Ok(LoadChunkMsg {
            expert,
            index,
            data: bytes.get(at..).unwrap_or_default().to_vec(),
        })
    }
}

/// Worker verdicts in the transfer protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// Offer admitted; `arg` is the next-expected chunk index (non-zero
    /// when a matching interrupted transfer is being resumed).
    Accept,
    /// Offer refused by the worker's own [`HostBudget`]; `arg` is the
    /// spare bytes it actually has, for diagnostics.
    Refuse,
    /// Chunk consumed (or duplicate re-acknowledged); `arg` is the
    /// next-expected chunk index.
    ChunkOk,
    /// Transfer complete: full-state CRC verified, model rebuilt and
    /// resident. Also acknowledges a [`LoadExpertMsg::Release`].
    Done,
    /// The transfer failed on the worker (CRC mismatch, undecodable
    /// state, spec/state mismatch, or a chunk with no transfer open);
    /// partial state has been freed.
    Failed,
}

/// Worker → master acknowledgement, carried by a [`PayloadKind::LoadAck`]
/// envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadAckMsg {
    /// Id of the expert the ack refers to.
    pub expert: u32,
    /// Verdict.
    pub status: AckStatus,
    /// Status-dependent argument (see [`AckStatus`]).
    pub arg: u64,
}

impl LoadAckMsg {
    /// Serializes the ack: `expert: u32 | status: u8 | arg: u64`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13);
        out.extend_from_slice(&self.expert.to_le_bytes());
        out.push(match self.status {
            AckStatus::Accept => ST_ACCEPT,
            AckStatus::Refuse => ST_REFUSE,
            AckStatus::ChunkOk => ST_CHUNK_OK,
            AckStatus::Done => ST_DONE,
            AckStatus::Failed => ST_FAILED,
        });
        out.extend_from_slice(&self.arg.to_le_bytes());
        out
    }

    /// Parses an ack.
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] for a wrong length or unknown status code.
    pub fn decode(bytes: &[u8]) -> Result<Self, NetError> {
        let mut at = 0usize;
        let expert = u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap_or_default());
        let status = match *take(bytes, &mut at, 1)?.first().unwrap_or(&u8::MAX) {
            ST_ACCEPT => AckStatus::Accept,
            ST_REFUSE => AckStatus::Refuse,
            ST_CHUNK_OK => AckStatus::ChunkOk,
            ST_DONE => AckStatus::Done,
            ST_FAILED => AckStatus::Failed,
            other => {
                return Err(NetError::Malformed(format!(
                    "unknown load-ack status {other}"
                )))
            }
        };
        let arg = u64::from_le_bytes(take(bytes, &mut at, 8)?.try_into().unwrap_or_default());
        expect_consumed(bytes, at)?;
        Ok(LoadAckMsg {
            expert,
            status,
            arg,
        })
    }
}

fn take<'a>(bytes: &'a [u8], at: &mut usize, len: usize) -> Result<&'a [u8], NetError> {
    let end = at
        .checked_add(len)
        .ok_or_else(|| NetError::Malformed("recovery message length overflow".to_string()))?;
    let slice = bytes
        .get(*at..end)
        .ok_or_else(|| NetError::Malformed(format!("recovery message truncated at byte {at}")))?;
    *at = end;
    Ok(slice)
}

fn expect_consumed(bytes: &[u8], at: usize) -> Result<(), NetError> {
    if at == bytes.len() {
        Ok(())
    } else {
        Err(NetError::Malformed(format!(
            "{} trailing bytes in recovery message",
            bytes.len() - at
        )))
    }
}

/// A node's memory admission state: hard capacity minus the runtime's own
/// resident set minus whatever migrated experts it already hosts.
///
/// Lives on both sides of the protocol: the master keeps one per worker
/// (fed from the device's certified `DeviceProfile` numbers) to *rank*
/// candidates without wasting wire bytes on doomed offers, and each
/// worker keeps its own as the final honesty check — an offer is refused
/// when `required_resident_bytes` exceeds the local spare, no matter what
/// the master believed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostBudget {
    capacity_bytes: u64,
    runtime_bytes: u64,
    hosted_bytes: u64,
}

impl HostBudget {
    /// A budget for a device with `capacity_bytes` of memory of which
    /// `runtime_bytes` are already spoken for (OS + runtime + the node's
    /// own expert).
    pub fn new(capacity_bytes: u64, runtime_bytes: u64) -> Self {
        HostBudget {
            capacity_bytes,
            runtime_bytes,
            hosted_bytes: 0,
        }
    }

    /// A budget that admits everything — the default for tests and for
    /// deployments that have not certified their devices.
    pub fn unlimited() -> Self {
        HostBudget::new(u64::MAX, 0)
    }

    /// Bytes still available for hosting migrated experts.
    pub fn spare(&self) -> u64 {
        self.capacity_bytes
            .saturating_sub(self.runtime_bytes)
            .saturating_sub(self.hosted_bytes)
    }

    /// Whether an expert needing `required` resident bytes fits.
    pub fn admit(&self, required: u64) -> bool {
        required <= self.spare()
    }

    /// Records `bytes` as hosted (a completed migration).
    pub fn charge(&mut self, bytes: u64) {
        self.hosted_bytes = self.hosted_bytes.saturating_add(bytes);
    }

    /// Frees `bytes` previously charged (hand-back or re-orphaning).
    pub fn release(&mut self, bytes: u64) {
        self.hosted_bytes = self.hosted_bytes.saturating_sub(bytes);
    }

    /// The device's hard capacity (model-checker invariant hook).
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes spoken for by OS + runtime + the node's own expert.
    pub fn runtime_bytes(&self) -> u64 {
        self.runtime_bytes
    }

    /// Bytes currently charged for hosted (migrated) experts.
    pub fn hosted_bytes(&self) -> u64 {
        self.hosted_bytes
    }
}

impl Default for HostBudget {
    fn default() -> Self {
        HostBudget::unlimited()
    }
}

/// Outcome of feeding one chunk to a [`PartialLoad`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// More chunks expected; the contained value is the next-expected
    /// index (unchanged for a duplicate or out-of-order chunk).
    Progress(u32),
    /// All chunks received; call [`PartialLoad::finish`].
    Complete,
}

/// Worker-side reassembly buffer for one in-flight expert transfer.
///
/// Survives across serve-loop iterations so an interrupted transfer can
/// resume: a fresh offer carrying the same manifest is answered with the
/// current next-expected cursor instead of restarting from chunk zero.
#[derive(Debug, Clone)]
pub struct PartialLoad {
    expert: u32,
    manifest: TransferManifest,
    buf: Vec<u8>,
    next: u32,
}

impl PartialLoad {
    /// Opens a reassembly buffer for `expert` described by `manifest`.
    pub fn begin(expert: u32, manifest: TransferManifest) -> Self {
        let cap = usize::try_from(manifest.total_bytes).unwrap_or(0);
        PartialLoad {
            expert,
            manifest,
            buf: Vec::with_capacity(cap),
            next: 0,
        }
    }

    /// The expert this transfer is for.
    pub fn expert(&self) -> u32 {
        self.expert
    }

    /// Next-expected chunk index (the resume cursor).
    pub fn next_expected(&self) -> u32 {
        self.next
    }

    /// Whether a re-offer matches this in-flight transfer (same expert,
    /// same geometry, same full-state CRC) and can therefore resume.
    pub fn matches(&self, expert: u32, manifest: &TransferManifest) -> bool {
        self.expert == expert
            && self.manifest.num_chunks == manifest.num_chunks
            && self.manifest.total_bytes == manifest.total_bytes
            && self.manifest.state_crc == manifest.state_crc
    }

    /// Consumes one chunk. In-order chunks append and advance the cursor;
    /// duplicates and gaps leave the buffer untouched and re-report the
    /// cursor so the master's stop-and-wait ARQ can resend.
    pub fn accept_chunk(&mut self, msg: &LoadChunkMsg) -> ChunkOutcome {
        if msg.index != self.next
            || (self.buf.len() + msg.data.len()) as u64 > self.manifest.total_bytes
        {
            return ChunkOutcome::Progress(self.next);
        }
        self.buf.extend_from_slice(&msg.data);
        self.next += 1;
        if self.next >= self.manifest.num_chunks {
            ChunkOutcome::Complete
        } else {
            ChunkOutcome::Progress(self.next)
        }
    }

    /// Verifies the reassembled bytes against the manifest — length and
    /// CRC-32, the *protocol-visible* checks — and surrenders the
    /// manifest plus the verified state bytes. This half is pure (no
    /// model construction), so the FSM layer can run it under the model
    /// checker; [`PartialLoad::finish`] composes it with
    /// [`build_from_state`] for the production path.
    ///
    /// # Errors
    ///
    /// [`NetError::Corrupt`] on a CRC mismatch, [`NetError::Malformed`]
    /// on a length mismatch. Either way the partial state is consumed
    /// and freed — a failed transfer never strands memory.
    pub fn verify(self) -> Result<(TransferManifest, Vec<u8>), NetError> {
        if self.buf.len() as u64 != self.manifest.total_bytes {
            return Err(NetError::Malformed(format!(
                "reassembled {} bytes, manifest promised {}",
                self.buf.len(),
                self.manifest.total_bytes
            )));
        }
        let got = crc32(&self.buf);
        if got != self.manifest.state_crc {
            return Err(NetError::Corrupt {
                expected: self.manifest.state_crc,
                got,
            });
        }
        Ok((self.manifest, self.buf))
    }

    /// Verifies the reassembled state end-to-end (length, CRC-32, codec,
    /// spec/state shape agreement), rebuilds the expert from its spec and
    /// loads the weights.
    ///
    /// Returns the resident model plus the certified bytes to charge
    /// against the host's [`HostBudget`].
    ///
    /// # Errors
    ///
    /// [`NetError::Corrupt`] on a CRC mismatch, [`NetError::Malformed`]
    /// for a length/codec/shape problem. Either way the partial state is
    /// consumed and freed — a failed transfer never strands memory.
    pub fn finish(self) -> Result<(Sequential, u64), NetError> {
        let (manifest, buf) = self.verify()?;
        build_from_state(&manifest, &buf)
    }
}

/// Decodes verified state bytes, rebuilds the expert from its manifest
/// spec, checks tensor shapes and loads the weights — the IO/model half
/// of [`PartialLoad::finish`], called by the serve shell's install hook.
///
/// # Errors
///
/// [`NetError::Malformed`] for a codec or shape problem.
pub(crate) fn build_from_state(
    manifest: &TransferManifest,
    buf: &[u8],
) -> Result<(Sequential, u64), NetError> {
    let state = state_from_bytes(buf).map_err(|e| NetError::Malformed(e.to_string()))?;
    let mut model = build_expert(&manifest.spec, 0);
    let shapes = state_vec(&mut model);
    if shapes.len() != state.len() || shapes.iter().zip(&state).any(|(a, b)| a.dims() != b.dims()) {
        return Err(NetError::Malformed(format!(
            "state tensors do not match spec: {} vs {} tensors",
            state.len(),
            shapes.len()
        )));
    }
    load_state(&mut model, &state);
    Ok((model, manifest.required_resident_bytes))
}

/// Policy knobs for the re-placement transfer protocol.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Bytes of serialized state per [`LoadChunkMsg`].
    pub chunk_bytes: usize,
    /// Retry schedule for each offer/chunk exchange (attempt count + the
    /// jittered backoff between resends).
    pub transfer_retry: RetryPolicy,
    /// How long one send waits for its ack before a resend is considered.
    pub ack_timeout: Duration,
    /// Wall-clock budget for one whole transfer attempt to one candidate;
    /// on expiry the transfer aborts and the master backtracks.
    pub transfer_timeout: Duration,
    /// Clock driving the deadlines and backoff sleeps. Tests inject a
    /// [`teamnet_net::ManualClock`] so failed-transfer paths run in
    /// virtual time.
    pub clock: Arc<dyn Clock>,
    /// Observability handle for recovery spans and counters.
    pub obs: Obs,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            chunk_bytes: 64 * 1024,
            transfer_retry: RetryPolicy::default(),
            ack_timeout: Duration::from_secs(2),
            transfer_timeout: Duration::from_secs(10),
            clock: Arc::new(SystemClock),
            obs: Obs::disabled(),
        }
    }
}

/// One registered expert: what to ship and where it normally lives.
#[derive(Debug, Clone)]
struct ExpertRecord {
    spec: ModelSpec,
    /// Pre-serialized state (the `teamnet_nn::state` wire layout), so a
    /// migration never re-serializes under time pressure.
    state: Vec<u8>,
    required_resident_bytes: u64,
    home: usize,
}

/// Master-side re-placement engine: tracks where every expert currently
/// lives, ranks surviving hosts by certified spare memory, runs the
/// chunked transfer with backtracking, and hands experts back to
/// readmitted homes. Owned by an
/// [`InferenceSession`](crate::runtime::InferenceSession) via
/// [`set_recovery`](crate::runtime::InferenceSession::set_recovery) and
/// ticked once per round after the round's failure evidence is folded in.
#[derive(Debug)]
pub struct RecoveryManager {
    config: RecoveryConfig,
    experts: BTreeMap<usize, ExpertRecord>,
    budgets: BTreeMap<usize, HostBudget>,
    /// expert → surrogate host; an expert absent here lives at home.
    placement: BTreeMap<usize, usize>,
    migrations: u64,
    backtracks: u64,
    handbacks: u64,
    /// Trace id of the round whose tick is currently running
    /// ([`tick_traced`](Self::tick_traced)): recovery frames sent during
    /// the tick carry it, so transfer spans stay causal children of the
    /// triggering round in the assembled cross-node DAG.
    trace: Option<u64>,
    c_migrations: Counter,
    c_backtracks: Counter,
    c_handbacks: Counter,
    h_bytes: Arc<Histogram>,
}

impl RecoveryManager {
    /// Creates a manager with no experts or budgets registered.
    pub fn new(config: RecoveryConfig) -> Self {
        let c_migrations = config.obs.metrics.counter("recovery.migrations");
        let c_backtracks = config.obs.metrics.counter("recovery.backtracks");
        let c_handbacks = config.obs.metrics.counter("recovery.handbacks");
        let h_bytes = config.obs.metrics.histogram("recovery.bytes_migrated");
        RecoveryManager {
            config,
            experts: BTreeMap::new(),
            budgets: BTreeMap::new(),
            placement: BTreeMap::new(),
            migrations: 0,
            backtracks: 0,
            handbacks: 0,
            trace: None,
            c_migrations,
            c_backtracks,
            c_handbacks,
            h_bytes,
        }
    }

    /// Registers expert `expert` (normally hosted on node `home`) for
    /// recovery: its architecture, trained parameters and certified
    /// resident footprint.
    pub fn register_expert(
        &mut self,
        expert: usize,
        home: usize,
        spec: ModelSpec,
        state: &[Tensor],
        required_resident_bytes: u64,
    ) {
        self.experts.insert(
            expert,
            ExpertRecord {
                spec,
                state: state_to_bytes(state),
                required_resident_bytes,
                home,
            },
        );
    }

    /// Registers node `node`'s certified memory budget for candidate
    /// ranking. A node with no registered budget ranks as having
    /// unlimited spare — "unknown; let the worker's own honesty check
    /// decide" — which is strictly safer than silently excluding it.
    pub fn register_budget(&mut self, node: usize, budget: HostBudget) {
        self.budgets.insert(node, budget);
    }

    /// Certified spare bytes on `node` ([`u64::MAX`] when unregistered).
    pub fn spare_bytes(&self, node: usize) -> u64 {
        self.budgets.get(&node).map_or(u64::MAX, HostBudget::spare)
    }

    /// Current host of `expert` (`None` if unregistered).
    pub fn host_of(&self, expert: usize) -> Option<usize> {
        let record = self.experts.get(&expert)?;
        Some(self.placement.get(&expert).copied().unwrap_or(record.home))
    }

    /// The current expert → host map over every registered expert.
    pub fn expert_hosts(&self) -> BTreeMap<usize, usize> {
        self.experts
            .keys()
            .filter_map(|&e| self.host_of(e).map(|h| (e, h)))
            .collect()
    }

    /// Total successful migrations so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total candidates abandoned (refused offers + failed transfers).
    pub fn backtracks(&self) -> u64 {
        self.backtracks
    }

    /// Total experts handed back to readmitted homes.
    pub fn handbacks(&self) -> u64 {
        self.handbacks
    }

    /// One recovery pass, run after a round's failure evidence is folded:
    /// hands experts back to homes the detector has readmitted, then
    /// re-places every expert whose current host is quarantined. Failures
    /// inside the pass (refusals, dead candidates, exhausted deadlines)
    /// are backtracked or deferred to the next round — a recovery pass
    /// never fails the inference round that triggered it.
    pub fn tick(&mut self, transport: &dyn Transport, me: usize, health: &[PeerHealth]) {
        self.tick_traced(transport, me, health, None);
    }

    /// [`tick`](Self::tick) with the triggering round's trace id: every
    /// frame the pass sends is stamped with a [`TraceContext`] parented on
    /// the recovery span open at send time, so `trace-assemble` grafts
    /// the transfer under the master's round (DESIGN.md §17).
    pub fn tick_traced(
        &mut self,
        transport: &dyn Transport,
        me: usize,
        health: &[PeerHealth],
        trace: Option<u64>,
    ) {
        self.trace = trace;
        let live = |n: usize| health.get(n).copied() == Some(PeerHealth::Live);

        // Hand-backs first: a readmitted home kept its own weights, so
        // restoring steady state costs one release message.
        let ready: Vec<(usize, usize)> = self
            .placement
            .iter()
            .filter(|&(&e, _)| self.experts.get(&e).is_some_and(|r| live(r.home)))
            .map(|(&e, &s)| (e, s))
            .collect();
        for (expert, surrogate) in ready {
            self.hand_back(transport, expert, surrogate);
        }

        // Orphans: experts whose current host (home or surrogate) is no
        // longer live. Retried every round until a candidate admits them.
        let orphans: Vec<usize> = self
            .experts
            .iter()
            .filter(|&(&e, record)| {
                let host = self.placement.get(&e).copied().unwrap_or(record.home);
                host != me && !live(host)
            })
            .map(|(&e, _)| e)
            .collect();
        for expert in orphans {
            self.replace(transport, me, health, expert);
        }
    }

    /// Wire context for a frame sent during the current tick: the
    /// triggering round's trace id (if any) parented on whatever recovery
    /// span is open at the send site.
    fn send_ctx(&self) -> Option<TraceContext> {
        self.trace.map(|t| self.config.obs.tracer.current_ctx(t))
    }

    /// Surviving workers able to host `required` bytes, best first:
    /// certified spare descending, node id ascending on ties. `avoid` is
    /// the failed host; the master (`me`) never hosts.
    fn ranked_candidates(
        &self,
        num_nodes: usize,
        me: usize,
        avoid: usize,
        health: &[PeerHealth],
        required: u64,
    ) -> Vec<usize> {
        let mut candidates: Vec<(u64, usize)> = (0..num_nodes)
            .filter(|&n| n != me && n != avoid)
            .filter(|&n| health.get(n).copied() == Some(PeerHealth::Live))
            .map(|n| (self.spare_bytes(n), n))
            .filter(|&(spare, _)| spare >= required)
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        candidates.into_iter().map(|(_, n)| n).collect()
    }

    /// Migrates `expert` to the best admissible survivor, backtracking
    /// through the ranked candidates on refusal or transfer failure.
    fn replace(
        &mut self,
        transport: &dyn Transport,
        me: usize,
        health: &[PeerHealth],
        expert: usize,
    ) {
        let Some(record) = self.experts.get(&expert) else {
            return;
        };
        let required = record.required_resident_bytes;
        let failed_host = self.placement.get(&expert).copied().unwrap_or(record.home);
        let candidates =
            self.ranked_candidates(transport.num_nodes(), me, failed_host, health, required);
        let obs = self.config.obs.clone();
        let _span = obs.span(
            "recovery.migrate",
            &[
                ("expert", expert as u64),
                ("candidates", candidates.len() as u64),
            ],
        );
        for candidate in candidates {
            match self.transfer(transport, expert, candidate) {
                Ok(bytes) => {
                    // A re-placed surrogate (itself now dead) gives its
                    // charge back before the new host takes it on.
                    if let Some(old) = self.placement.insert(expert, candidate) {
                        if let Some(b) = self.budgets.get_mut(&old) {
                            b.release(required);
                        }
                    }
                    if let Some(b) = self.budgets.get_mut(&candidate) {
                        b.charge(required);
                    }
                    self.migrations += 1;
                    self.c_migrations.inc();
                    self.h_bytes.observe(bytes);
                    return;
                }
                Err(_) => {
                    self.backtracks += 1;
                    self.c_backtracks.inc();
                }
            }
        }
        // No admissible survivor accepted this round; the expert stays
        // orphaned and the next tick tries again.
    }

    /// Returns `expert` to its readmitted home by releasing the surrogate
    /// (best-effort: the home node kept its weights, so the placement
    /// flips back even if the release ack is lost).
    fn hand_back(&mut self, transport: &dyn Transport, expert: usize, surrogate: usize) {
        let obs = self.config.obs.clone();
        let _span = obs.span(
            "recovery.handback",
            &[("expert", expert as u64), ("from", surrogate as u64)],
        );
        let round = next_round();
        let frame = fsm::release_frame(surrogate, round, expert as u32);
        let ctx = self.send_ctx();
        let bytes = match ctx {
            Some(c) => frame.encode_traced(c),
            None => frame.encode(),
        };
        if transport.send(frame.to, frame.tag, &bytes).is_ok() {
            if let Some(c) = ctx {
                obs.tracer
                    .send_event("input", frame.to as u64, c, bytes.len() as u64);
            }
            let deadline = self.config.clock.now() + self.config.ack_timeout;
            let _ = self.await_ack(transport, surrogate, round, expert as u32, deadline);
        }
        self.placement.remove(&expert);
        if let Some(record) = self.experts.get(&expert) {
            if let Some(b) = self.budgets.get_mut(&surrogate) {
                b.release(record.required_resident_bytes);
            }
        }
        self.handbacks += 1;
        self.c_handbacks.inc();
    }

    /// Runs one chunked, resumable, stop-and-wait transfer of `expert` to
    /// `target` under the configured deadline. Returns the bytes shipped.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] when the worker refuses or reports a failure,
    /// [`NetError::Timeout`] when the deadline or retry budget runs out,
    /// and transport errors otherwise. On any error a best-effort abort is
    /// sent so the target frees its partial state.
    fn transfer(
        &self,
        transport: &dyn Transport,
        expert: usize,
        target: usize,
    ) -> Result<u64, NetError> {
        let record = self
            .experts
            .get(&expert)
            .ok_or_else(|| NetError::Malformed(format!("expert {expert} not registered")))?;
        let chunk_bytes = self.config.chunk_bytes.max(1);
        let num_chunks = record.state.len().div_ceil(chunk_bytes) as u32;
        let manifest = TransferManifest {
            spec: record.spec.clone(),
            num_chunks,
            total_bytes: record.state.len() as u64,
            state_crc: crc32(&record.state),
            required_resident_bytes: record.required_resident_bytes,
        };
        let round = next_round();
        let clock = Arc::clone(&self.config.clock);
        let deadline = clock.now() + self.config.transfer_timeout;
        let obs = self.config.obs.clone();
        let _span = obs.span(
            "recovery.transfer",
            &[
                ("expert", expert as u64),
                ("target", target as u64),
                ("chunks", u64::from(num_chunks)),
            ],
        );

        // The protocol decisions all live in the pure state machine; this
        // shell owns the transport, retry backoff, deadlines and aborts.
        let mut machine = fsm::TransferFsm::new(expert as u32, target, round, num_chunks);
        // Stop-and-wait ARQ over the chunks. The attempt cap is a
        // belt-and-braces bound on top of the per-exchange retry budget
        // and the wall-clock deadline (the offer exchange is not
        // counted against it).
        let mut attempts_left = (u64::from(num_chunks) + 2)
            * (self.config.transfer_retry.max_attempts.max(1) as u64 + 1);
        loop {
            match machine.phase() {
                fsm::TransferPhase::Complete => return Ok(record.state.len() as u64),
                fsm::TransferPhase::Failed(fault) => {
                    if fault.needs_abort() {
                        self.abort(transport, round, expert as u32, target);
                    }
                    return Err(fault_error(fault, expert, target));
                }
                fsm::TransferPhase::Offering => {}
                fsm::TransferPhase::Streaming => {
                    if attempts_left == 0 {
                        self.abort(transport, round, expert as u32, target);
                        return Err(NetError::Timeout {
                            waiting_for: format!("transfer of expert {expert} to node {target}"),
                        });
                    }
                    attempts_left -= 1;
                }
            }
            let Some(frame) = machine.current_frame(&manifest, &record.state, chunk_bytes) else {
                // Unreachable: concluded phases returned above.
                return Err(NetError::Malformed(format!(
                    "transfer of expert {expert} concluded without a frame"
                )));
            };
            let ctx = self.send_ctx();
            let bytes = match ctx {
                Some(c) => frame.encode_traced(c),
                None => frame.encode(),
            };
            let ack = match self.exchange(
                transport,
                target,
                &bytes,
                ctx,
                round,
                expert as u32,
                deadline,
                machine.exchange_salt(),
            ) {
                Ok(ack) => ack,
                Err(e) => {
                    // An exchange that dies may still have delivered its
                    // frame: abort so the worker frees any partial state
                    // (this covers the offer too — a lost Accept ack
                    // must not strand the worker's reassembly buffer).
                    self.abort(transport, round, expert as u32, target);
                    return Err(e);
                }
            };
            machine.on_ack(ack);
        }
    }

    /// Sends `frame` to `target` and waits for a matching ack, resending
    /// under the per-exchange retry budget. `salt` keeps the jitter
    /// stream of each chunk's backoff distinct.
    #[allow(clippy::too_many_arguments)]
    fn exchange(
        &self,
        transport: &dyn Transport,
        target: usize,
        frame: &[u8],
        ctx: Option<TraceContext>,
        round: u64,
        expert: u32,
        deadline: std::time::Instant,
        salt: u64,
    ) -> Result<LoadAckMsg, NetError> {
        let clock = Arc::clone(&self.config.clock);
        let mut backoff = Backoff::with_clock(
            self.config.transfer_retry.clone(),
            round ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            deadline,
            Arc::clone(&clock),
        );
        loop {
            let sent = match transport.send(target, TAG_INPUT, frame) {
                Ok(()) => {
                    if let Some(c) = ctx {
                        self.config.obs.tracer.send_event(
                            "input",
                            target as u64,
                            c,
                            frame.len() as u64,
                        );
                    }
                    true
                }
                Err(e @ (NetError::UnknownPeer(_) | NetError::Closed)) => return Err(e),
                Err(_) => false,
            };
            if sent {
                match self.await_ack(transport, target, round, expert, deadline) {
                    Ok(ack) => return Ok(ack),
                    Err(NetError::Timeout { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            match backoff.next_delay() {
                Some(delay) => clock.sleep(delay),
                None => {
                    return Err(NetError::Timeout {
                        waiting_for: format!("load ack from node {target}"),
                    })
                }
            }
        }
    }

    /// Waits up to `ack_timeout` (clamped by the transfer deadline) for a
    /// [`PayloadKind::LoadAck`] stamped with this transfer's round.
    /// Stale gather leftovers and undecodable traffic on the result tag
    /// are discarded, not failed on.
    fn await_ack(
        &self,
        transport: &dyn Transport,
        target: usize,
        round: u64,
        expert: u32,
        deadline: std::time::Instant,
    ) -> Result<LoadAckMsg, NetError> {
        let clock = &self.config.clock;
        let attempt_deadline = (clock.now() + self.config.ack_timeout).min(deadline);
        loop {
            let now = clock.now();
            if now >= attempt_deadline {
                return Err(NetError::Timeout {
                    waiting_for: format!("load ack from node {target}"),
                });
            }
            let bytes = transport.recv(target, TAG_RESULT, attempt_deadline - now)?;
            if let Some(c) = peek_trace(&bytes) {
                self.config
                    .obs
                    .tracer
                    .recv_event("result", target as u64, c, bytes.len() as u64);
            }
            let Ok(env) = Envelope::decode(&bytes) else {
                continue;
            };
            if let Some(ack) = fsm::match_load_ack(&env, round, expert) {
                return Ok(ack);
            }
        }
    }

    /// Best-effort abort so the target frees its partial state. Stamped
    /// with the *transfer's* round so only that attempt is undone — a
    /// stale abort can never clear a newer transfer's progress.
    fn abort(&self, transport: &dyn Transport, round: u64, expert: u32, target: usize) {
        let frame = fsm::abort_frame(target, round, expert);
        let ctx = self.send_ctx();
        let bytes = match ctx {
            Some(c) => frame.encode_traced(c),
            None => frame.encode(),
        };
        if transport.send(frame.to, frame.tag, &bytes).is_ok() {
            if let Some(c) = ctx {
                self.config
                    .obs
                    .tracer
                    .send_event("input", frame.to as u64, c, bytes.len() as u64);
            }
        }
    }
}

/// Maps a concluded [`fsm::TransferFault`] to the transfer's error,
/// preserving the exact pre-§15 diagnostics.
fn fault_error(fault: fsm::TransferFault, expert: usize, target: usize) -> NetError {
    match fault {
        fsm::TransferFault::RefusedOffer { spare } => NetError::Remote(format!(
            "node {target} refused expert {expert}: {spare} spare bytes"
        )),
        fsm::TransferFault::RefusedMidTransfer => NetError::Remote(format!(
            "node {target} refused expert {expert} mid-transfer"
        )),
        // The worker already freed its partial state.
        fsm::TransferFault::WorkerFailed => {
            NetError::Remote(format!("node {target} failed transfer of expert {expert}"))
        }
        fsm::TransferFault::BadOfferAck(status) => NetError::Malformed(format!(
            "unexpected offer ack {status:?} from node {target}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> TransferManifest {
        TransferManifest {
            spec: ModelSpec::mlp(2, 8),
            num_chunks: 3,
            total_bytes: 100,
            state_crc: 0xDEAD_BEEF,
            required_resident_bytes: 4096,
        }
    }

    #[test]
    fn load_expert_msg_roundtrips() {
        for msg in [
            LoadExpertMsg::Offer {
                expert: 7,
                manifest: manifest(),
            },
            LoadExpertMsg::Release { expert: 2 },
            LoadExpertMsg::Abort { expert: 9 },
        ] {
            assert_eq!(LoadExpertMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn load_chunk_and_ack_roundtrip() {
        let chunk = LoadChunkMsg {
            expert: 3,
            index: 17,
            data: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(LoadChunkMsg::decode(&chunk.encode()).unwrap(), chunk);
        for status in [
            AckStatus::Accept,
            AckStatus::Refuse,
            AckStatus::ChunkOk,
            AckStatus::Done,
            AckStatus::Failed,
        ] {
            let ack = LoadAckMsg {
                expert: 11,
                status,
                arg: 42,
            };
            assert_eq!(LoadAckMsg::decode(&ack.encode()).unwrap(), ack);
        }
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(LoadExpertMsg::decode(&[]).is_err());
        assert!(LoadExpertMsg::decode(&[99, 0, 0, 0, 0]).is_err());
        let mut trailing = LoadExpertMsg::Release { expert: 1 }.encode();
        trailing.push(0);
        assert!(LoadExpertMsg::decode(&trailing).is_err());
        assert!(LoadChunkMsg::decode(&[0, 0, 0]).is_err());
        assert!(LoadAckMsg::decode(&[0; 13]).is_ok());
        assert!(LoadAckMsg::decode(&[0; 12]).is_err());
        let mut bad_status = LoadAckMsg {
            expert: 0,
            status: AckStatus::Done,
            arg: 0,
        }
        .encode();
        bad_status[4] = 200;
        assert!(LoadAckMsg::decode(&bad_status).is_err());
    }

    #[test]
    fn host_budget_accounting() {
        let mut b = HostBudget::new(1_000, 300);
        assert_eq!(b.spare(), 700);
        assert!(b.admit(700));
        assert!(!b.admit(701));
        b.charge(500);
        assert_eq!(b.spare(), 200);
        b.release(500);
        assert_eq!(b.spare(), 700);
        assert!(HostBudget::unlimited().admit(u64::MAX - 1));
    }

    #[test]
    fn partial_load_handles_duplicates_and_gaps() {
        let spec = ModelSpec::mlp(2, 8);
        let mut model = build_expert(&spec, 5);
        let state = state_vec(&mut model);
        let bytes = state_to_bytes(&state);
        let chunk = 64usize;
        let num_chunks = bytes.len().div_ceil(chunk) as u32;
        let m = TransferManifest {
            spec,
            num_chunks,
            total_bytes: bytes.len() as u64,
            state_crc: crc32(&bytes),
            required_resident_bytes: 1,
        };
        let mut p = PartialLoad::begin(4, m.clone());
        assert!(p.matches(4, &m));
        assert!(!p.matches(5, &m));
        let piece = |i: u32| LoadChunkMsg {
            expert: 4,
            index: i,
            data: bytes[i as usize * chunk..((i as usize + 1) * chunk).min(bytes.len())].to_vec(),
        };
        assert_eq!(p.accept_chunk(&piece(0)), ChunkOutcome::Progress(1));
        // Duplicate: cursor unchanged.
        assert_eq!(p.accept_chunk(&piece(0)), ChunkOutcome::Progress(1));
        // Gap: cursor unchanged, chunk not consumed.
        assert_eq!(p.accept_chunk(&piece(2)), ChunkOutcome::Progress(1));
        for i in 1..num_chunks - 1 {
            assert_eq!(p.accept_chunk(&piece(i)), ChunkOutcome::Progress(i + 1));
        }
        assert_eq!(
            p.accept_chunk(&piece(num_chunks - 1)),
            ChunkOutcome::Complete
        );
        let (mut rebuilt, resident) = p.finish().unwrap();
        assert_eq!(resident, 1);
        use teamnet_nn::{Layer, Mode};
        let x = Tensor::ones([1, 784]);
        assert_eq!(
            rebuilt.forward(&x, Mode::Eval),
            model.forward(&x, Mode::Eval)
        );
    }

    #[test]
    fn partial_load_rejects_corrupt_state() {
        let spec = ModelSpec::mlp(2, 8);
        let mut model = build_expert(&spec, 5);
        let bytes = state_to_bytes(&state_vec(&mut model));
        let m = TransferManifest {
            spec,
            num_chunks: 1,
            total_bytes: bytes.len() as u64,
            state_crc: crc32(&bytes) ^ 1, // wrong on purpose
            required_resident_bytes: 1,
        };
        let mut p = PartialLoad::begin(0, m);
        assert_eq!(
            p.accept_chunk(&LoadChunkMsg {
                expert: 0,
                index: 0,
                data: bytes,
            }),
            ChunkOutcome::Complete
        );
        assert!(matches!(p.finish(), Err(NetError::Corrupt { .. })));
    }

    #[test]
    fn candidate_ranking_prefers_certified_spare() {
        let mut mgr = RecoveryManager::new(RecoveryConfig::default());
        mgr.register_budget(1, HostBudget::new(1_000, 900)); // spare 100
        mgr.register_budget(2, HostBudget::new(1_000, 200)); // spare 800
        mgr.register_budget(3, HostBudget::new(1_000, 200)); // spare 800 (tie)
        let health = vec![PeerHealth::Live; 5];
        // Node 4 has no registered budget → unlimited spare → first.
        // Ties between 2 and 3 break toward the lower id.
        assert_eq!(mgr.ranked_candidates(5, 0, 1, &health, 50), vec![4, 2, 3]);
        // A requirement above a candidate's certified spare filters it.
        assert_eq!(mgr.ranked_candidates(5, 0, 1, &health, 500), vec![4, 2, 3]);
        assert_eq!(mgr.ranked_candidates(5, 0, 0, &health, 900), vec![4]);
        // Only live nodes qualify.
        let mut sick = health.clone();
        sick[2] = PeerHealth::Quarantined;
        sick[4] = PeerHealth::Probing;
        assert_eq!(mgr.ranked_candidates(5, 0, 1, &sick, 50), vec![3]);
    }

    #[test]
    fn expert_hosts_reflect_placement() {
        let spec = ModelSpec::mlp(2, 8);
        let mut model = build_expert(&spec, 1);
        let state = state_vec(&mut model);
        let mut mgr = RecoveryManager::new(RecoveryConfig::default());
        mgr.register_expert(1, 1, spec, &state, 64);
        assert_eq!(mgr.host_of(1), Some(1));
        assert_eq!(mgr.host_of(9), None);
        mgr.placement.insert(1, 2);
        assert_eq!(mgr.host_of(1), Some(2));
        assert_eq!(mgr.expert_hosts(), [(1, 2)].into_iter().collect());
    }
}
