//! The convergence theory of Appendix A.
//!
//! Under the paper's assumptions, the cumulative share of training data
//! held by Expert i after batch L evolves as
//!
//! ```text
//! γ_{i,L+1} = ( γ_{i,L}·(L−1) + 1/K − a·(γ_{i,L} − 1/K) ) / L
//! ```
//!
//! which contracts towards the set point 1/K for any gain `a ∈ (0, 1)`.
//! This module implements the recurrence so the empirical training curves
//! (Figures 6 and 8) can be compared against the theoretical envelope.

/// Evolves the Appendix A recurrence from initial shares `gamma_initial`
/// over `batches` batches, returning the share trajectory (one vector per
/// batch, starting with the initial state).
///
/// # Panics
///
/// Panics unless `0 < a < 1`, the initial shares form a distribution, and
/// `batches > 0`.
pub fn gamma_recurrence(a: f32, gamma_initial: &[f32], batches: usize) -> Vec<Vec<f32>> {
    assert!(a > 0.0 && a < 1.0, "gain must be in (0, 1)");
    assert!(batches > 0, "need at least one batch");
    let k = gamma_initial.len();
    assert!(k >= 2, "need at least two experts");
    let sum: f32 = gamma_initial.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-4,
        "initial shares must sum to 1, got {sum}"
    );

    let mut trajectory = Vec::with_capacity(batches + 1);
    let mut gamma = gamma_initial.to_vec();
    trajectory.push(gamma.clone());
    for l in 1..=batches {
        let lf = l as f32;
        let set_point = 1.0 / k as f32;
        let next: Vec<f32> = gamma
            .iter()
            .map(|&g| {
                // The L-th batch contributes the controller target share;
                // history contributes the rest.
                let target = set_point - a * (g - set_point);
                (g * (lf - 1.0) + target) / lf
            })
            .collect();
        gamma = next;
        trajectory.push(gamma.clone());
    }
    trajectory
}

/// The theoretical contraction factor for batch L:
/// `((L−1)/L)·(1 − a/(L−1))` — each batch shrinks the deviation from the
/// set point by this multiplier (valid for `L ≥ 2`).
///
/// # Panics
///
/// Panics if `l < 2`.
pub fn contraction_factor(a: f32, l: usize) -> f32 {
    assert!(l >= 2, "the factor is defined for L >= 2");
    let lf = l as f32;
    (lf - 1.0) / lf * (1.0 - a / (lf - 1.0))
}

/// Maximum deviation from the set point 1/K across experts.
pub fn imbalance(gamma: &[f32]) -> f32 {
    let set_point = 1.0 / gamma.len() as f32;
    gamma
        .iter()
        .map(|&g| (g - set_point).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_converges_to_set_point() {
        let trajectory = gamma_recurrence(0.5, &[0.9, 0.1], 500);
        let last = trajectory.last().unwrap();
        assert!(imbalance(last) < 0.01, "final {last:?}");
        // Shares remain a distribution throughout.
        for step in &trajectory {
            assert!((step.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn deviation_is_monotonically_decreasing() {
        let trajectory = gamma_recurrence(0.3, &[0.7, 0.2, 0.1], 200);
        // Skip L = 1 (the 1/L prefactor there is degenerate).
        for pair in trajectory[1..].windows(2) {
            assert!(
                imbalance(&pair[1]) <= imbalance(&pair[0]) + 1e-6,
                "{:?} -> {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn larger_gain_converges_faster() {
        let slow = gamma_recurrence(0.1, &[0.8, 0.2], 50);
        let fast = gamma_recurrence(0.9, &[0.8, 0.2], 50);
        assert!(imbalance(fast.last().unwrap()) < imbalance(slow.last().unwrap()));
    }

    #[test]
    fn recurrence_matches_contraction_factor() {
        // One step from batch L: |γ_{L+1} − 1/K| = factor(L)·|γ_L − 1/K|.
        let a = 0.4;
        let trajectory = gamma_recurrence(a, &[0.75, 0.25], 10);
        for l in 2..10 {
            let before = imbalance(&trajectory[l - 1]);
            let after = imbalance(&trajectory[l]);
            let factor = contraction_factor(a, l);
            assert!(
                (after - before * factor).abs() < 1e-5,
                "L={l}: {after} vs {}",
                before * factor
            );
        }
    }

    #[test]
    fn factor_is_below_one() {
        for l in 2..100 {
            for &a in &[0.1, 0.5, 0.9] {
                let f = contraction_factor(a, l);
                assert!(f < 1.0, "a={a} L={l} factor {f}");
                assert!(f >= 0.0 || l == 2, "a={a} L={l} factor {f}");
            }
        }
    }

    #[test]
    fn four_expert_recurrence() {
        let trajectory = gamma_recurrence(0.5, &[0.55, 0.25, 0.15, 0.05], 800);
        assert!(imbalance(trajectory.last().unwrap()) < 0.01);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_non_distribution() {
        gamma_recurrence(0.5, &[0.9, 0.9], 10);
    }

    #[test]
    #[should_panic(expected = "gain must be in")]
    fn rejects_bad_gain() {
        gamma_recurrence(1.0, &[0.5, 0.5], 10);
    }
}
