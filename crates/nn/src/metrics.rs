//! Classification metrics.

use teamnet_tensor::Tensor;

/// Fraction of rows of `logits` whose argmax equals the label.
///
/// # Panics
///
/// Panics if `logits` is not rank-2 or lengths disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(logits.rank(), 2, "logits must be [n, classes]");
    assert_eq!(logits.dims()[0], labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

/// A `classes × classes` confusion matrix; `counts[true][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(
            truth < self.classes && pred < self.classes,
            "class index out of range"
        );
        self.counts[truth * self.classes + pred] += 1;
    }

    /// Records a whole batch of predictions.
    pub fn record_batch(&mut self, logits: &Tensor, labels: &[usize]) {
        for (pred, &truth) in logits.argmax_rows().into_iter().zip(labels) {
            self.record(truth, pred);
        }
    }

    /// Count at `(true, predicted)`.
    pub fn count(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.classes + pred]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0.0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        diag as f64 / total as f64
    }

    /// Per-class recall: `diag / row_sum`, `NaN`-free (0 for empty rows).
    pub fn recalls(&self) -> Vec<f64> {
        (0..self.classes)
            .map(|c| {
                let row: u64 = (0..self.classes).map(|p| self.count(c, p)).sum();
                if row == 0 {
                    0.0
                } else {
                    self.count(c, c) as f64 / row as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0, 2.0, 0.0], [3, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&Tensor::zeros([0, 2]), &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_bookkeeping() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 2);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.accuracy(), 0.75);
        let recalls = cm.recalls();
        assert_eq!(recalls, vec![0.5, 1.0, 1.0]);
    }

    #[test]
    fn record_batch_uses_argmax() {
        let logits = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], [2, 2]).unwrap();
        let mut cm = ConfusionMatrix::new(2);
        cm.record_batch(&logits, &[1, 1]);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_rejects_bad_class() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
