//! First-order optimizers operating through [`Layer::visit_params`].
//!
//! Optimizer state (momentum / Adam moments) is kept in vectors aligned
//! with the layer's stable parameter-visitation order, so an optimizer must
//! be paired with a single model for its lifetime.

use crate::layer::Layer;
use teamnet_tensor::Tensor;

/// Stochastic gradient descent with optional momentum and decoupled weight
/// decay — the update rule the paper's Algorithm 3 uses for expert training.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        Sgd::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `mu` (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `mu` is outside `[0, 1)`.
    pub fn with_momentum(lr: f32, mu: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum: mu,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds decoupled L2 weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `wd < 0`.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step using the gradients accumulated in `model`,
    /// then leaves the gradients untouched (callers usually follow with
    /// [`Layer::zero_grad`]).
    pub fn step(&mut self, model: &mut dyn Layer) {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        model.visit_params(&mut |param, grad| {
            if wd > 0.0 {
                param.map_inplace(|w| w * (1.0 - lr * wd));
            }
            if mu > 0.0 {
                if idx == velocity.len() {
                    velocity.push(Tensor::zeros(param.shape().clone()));
                }
                let v = &mut velocity[idx];
                for (vi, &gi) in v.data_mut().iter_mut().zip(grad.data()) {
                    *vi = mu * *vi + gi;
                }
                param.axpy(-lr, v);
            } else {
                param.axpy(-lr, grad);
            }
            idx += 1;
        });
    }
}

/// Adam (Kingma & Ba) — used to train the gate MLP `W(z, Θ)`, whose loss
/// surface is far less smooth than the experts'.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the conventional β₁ = 0.9, β₂ = 0.999 defaults.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one Adam step using the gradients accumulated in `model`.
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params(&mut |param, grad| {
            if idx == m.len() {
                m.push(Tensor::zeros(param.shape().clone()));
                v.push(Tensor::zeros(param.shape().clone()));
            }
            let (mi, vi) = (&mut m[idx], &mut v[idx]);
            for ((mm, vv), (&g, p)) in mi
                .data_mut()
                .iter_mut()
                .zip(vi.data_mut())
                .zip(grad.data().iter().zip(param.data_mut()))
            {
                *mm = b1 * *mm + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let m_hat = *mm / bias1;
                let v_hat = *vv / bias2;
                *p -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Mode};
    use crate::loss::softmax_cross_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use teamnet_tensor::Tensor;

    /// Trains a single dense layer on a 2-class linearly separable toy
    /// problem and asserts the loss drops substantially.
    fn train_toy(mut step: impl FnMut(&mut Dense)) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(40);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0, 0.1, 0.9], [4, 2]).unwrap();
        let labels = [0usize, 0, 1, 1];
        let initial = softmax_cross_entropy(&layer.forward(&x, Mode::Train), &labels).loss;
        for _ in 0..200 {
            let logits = layer.forward(&x, Mode::Train);
            let out = softmax_cross_entropy(&logits, &labels);
            layer.zero_grad();
            layer.backward(&out.grad);
            step(&mut layer);
        }
        let final_loss = softmax_cross_entropy(&layer.forward(&x, Mode::Train), &labels).loss;
        (initial, final_loss)
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut opt = Sgd::new(0.5);
        let (initial, final_loss) = train_toy(move |l| opt.step(l));
        assert!(final_loss < initial * 0.2, "{initial} -> {final_loss}");
    }

    #[test]
    fn momentum_accelerates_over_plain_sgd() {
        let mut plain = Sgd::new(0.05);
        let (_, plain_final) = train_toy(move |l| plain.step(l));
        let mut heavy = Sgd::with_momentum(0.05, 0.9);
        let (_, heavy_final) = train_toy(move |l| heavy.step(l));
        assert!(
            heavy_final < plain_final,
            "momentum {heavy_final} vs plain {plain_final}"
        );
    }

    #[test]
    fn adam_reduces_loss() {
        let mut opt = Adam::new(0.05);
        let (initial, final_loss) = train_toy(move |l| opt.step(l));
        assert!(final_loss < initial * 0.2, "{initial} -> {final_loss}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut layer = Dense::new(4, 4, &mut rng);
        let before = {
            let mut n = 0.0;
            layer.visit_params(&mut |p, _| n += p.norm_sq());
            n
        };
        // Zero gradients → only the decay term acts.
        let mut opt = Sgd::new(0.1).weight_decay(1.0);
        layer.zero_grad();
        for _ in 0..10 {
            opt.step(&mut layer);
        }
        let after = {
            let mut n = 0.0;
            layer.visit_params(&mut |p, _| n += p.norm_sq());
            n
        };
        assert!(after < before * 0.5, "{before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_lr() {
        Sgd::new(0.0);
    }
}
