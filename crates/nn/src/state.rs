//! Model state extraction and restoration.
//!
//! In the distributed runtime a trained expert is shipped to an edge node
//! as `(ModelSpec, Vec<Tensor>)`: the node rebuilds the architecture from
//! the spec and then loads the trained parameters with [`load_state`].
//!
//! For shipping state over the wire (the recovery subsystem's expert
//! migration, DESIGN.md §14) the parameter tensors serialize to a compact
//! little-endian byte layout via [`state_to_bytes`] / [`state_from_bytes`]:
//!
//! ```text
//! count: u32 | per tensor ( rank: u32 | dims: u32 × rank | data: f32 × Π dims )
//! ```

use crate::layer::Layer;
use teamnet_tensor::Tensor;

/// Snapshots every parameter of `model` in visitation order.
pub fn state_vec(model: &mut dyn Layer) -> Vec<Tensor> {
    let mut out = Vec::new();
    model.visit_params(&mut |p, _| out.push(p.clone()));
    out
}

/// Restores parameters captured by [`state_vec`] into a model with the
/// identical architecture.
///
/// # Panics
///
/// Panics if the parameter count or any shape differs from the model's.
pub fn load_state(model: &mut dyn Layer, state: &[Tensor]) {
    let mut idx = 0usize;
    model.visit_params(&mut |p, _| {
        assert!(
            idx < state.len(),
            "state has too few tensors ({} provided)",
            state.len()
        );
        assert!(
            p.shape().same_as(state[idx].shape()),
            "state tensor {idx} shape {} does not match parameter shape {}",
            state[idx].shape(),
            p.shape()
        );
        *p = state[idx].clone();
        idx += 1;
    });
    assert_eq!(
        idx,
        state.len(),
        "state has too many tensors ({} provided, {idx} used)",
        state.len()
    );
}

/// A byte stream that failed to decode as serialized model state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateCodecError(pub String);

impl std::fmt::Display for StateCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed state bytes: {}", self.0)
    }
}

impl std::error::Error for StateCodecError {}

/// Bound on tensor rank and on per-tensor dimension extents accepted by
/// the state codec — the same defensive caps the tensor wire codec in
/// `teamnet-net` uses, so a corrupted length field cannot trigger a
/// multi-gigabyte allocation on a 1 GiB edge device.
const MAX_RANK: usize = 8;
const MAX_DIM: usize = 1 << 28;

/// Serializes parameter tensors captured by [`state_vec`] into the wire
/// layout documented at module level.
pub fn state_to_bytes(state: &[Tensor]) -> Vec<u8> {
    let total: usize = state.iter().map(|t| t.len()).sum();
    let mut out = Vec::with_capacity(4 + state.len() * 8 + total * 4);
    assert!(state.len() <= u32::MAX as usize, "state tensor count");
    out.extend_from_slice(&(state.len() as u32).to_le_bytes()); // lint: allow(cast-truncate)
    for t in state {
        let dims = t.dims();
        assert!(dims.len() <= MAX_RANK, "state tensor rank {}", dims.len());
        out.extend_from_slice(&(dims.len() as u32).to_le_bytes()); // lint: allow(cast-truncate)
        for &d in dims {
            assert!(d <= MAX_DIM, "state tensor dim {d}");
            out.extend_from_slice(&(d as u32).to_le_bytes()); // lint: allow(cast-truncate)
        }
        for &v in t.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decodes a byte stream produced by [`state_to_bytes`].
///
/// # Errors
///
/// [`StateCodecError`] on truncation, trailing garbage, an implausible
/// rank/extent, or a tensor that fails shape validation.
pub fn state_from_bytes(bytes: &[u8]) -> Result<Vec<Tensor>, StateCodecError> {
    fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, StateCodecError> {
        let slice = bytes
            .get(*at..*at + 4)
            .ok_or_else(|| StateCodecError(format!("truncated at byte {at}")))?;
        *at += 4;
        Ok(u32::from_le_bytes(slice.try_into().unwrap_or_default()))
    }
    let mut at = 0usize;
    let count = take_u32(bytes, &mut at)? as usize;
    let mut state = Vec::new();
    for i in 0..count {
        let rank = take_u32(bytes, &mut at)? as usize;
        if rank > MAX_RANK {
            return Err(StateCodecError(format!("tensor {i}: rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        let mut volume = 1usize;
        for _ in 0..rank {
            let d = take_u32(bytes, &mut at)? as usize;
            if d > MAX_DIM {
                return Err(StateCodecError(format!("tensor {i}: dim {d}")));
            }
            volume = volume.saturating_mul(d);
            dims.push(d);
        }
        if volume > MAX_DIM {
            return Err(StateCodecError(format!("tensor {i}: volume {volume}")));
        }
        let data_bytes = bytes
            .get(at..at + volume * 4)
            .ok_or_else(|| StateCodecError(format!("tensor {i}: truncated data")))?;
        at += volume * 4;
        let data: Vec<f32> = data_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap_or_default()))
            .collect();
        let tensor = Tensor::from_vec(data, dims)
            .map_err(|e| StateCodecError(format!("tensor {i}: {e}")))?;
        state.push(tensor);
    }
    if at != bytes.len() {
        return Err(StateCodecError(format!(
            "{} trailing bytes after {count} tensors",
            bytes.len() - at
        )));
    }
    Ok(state)
}

/// Total number of bytes needed to serialize a model's parameters as raw
/// `f32`s — the payload size the cost model charges for deploying a model
/// over the network.
pub fn state_bytes(model: &mut dyn Layer) -> usize {
    let mut total = 0usize;
    model.visit_params(&mut |p, _| total += p.len() * std::mem::size_of::<f32>());
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::models::ModelSpec;
    use teamnet_tensor::Tensor;

    #[test]
    fn state_roundtrip_preserves_outputs() {
        let spec = ModelSpec::mlp(3, 16);
        let mut trained = spec.build(7);
        let state = state_vec(&mut trained);

        let mut fresh = spec.build(99); // different init
        let x = Tensor::ones([2, 784]);
        let before = fresh.forward(&x, Mode::Eval);
        load_state(&mut fresh, &state);
        let after = fresh.forward(&x, Mode::Eval);
        let reference = trained.forward(&x, Mode::Eval);
        assert_ne!(before, reference);
        assert_eq!(after, reference);
    }

    #[test]
    fn state_bytes_counts_all_params() {
        let spec = ModelSpec::mlp(2, 8);
        let mut model = spec.build(0);
        assert_eq!(state_bytes(&mut model), model.param_count() * 4);
    }

    #[test]
    fn wire_codec_roundtrips_model_state() {
        let spec = ModelSpec::mlp(3, 16);
        let mut trained = spec.build(11);
        let state = state_vec(&mut trained);
        let bytes = state_to_bytes(&state);
        assert_eq!(bytes.len() % 4, 0);
        let back = state_from_bytes(&bytes).unwrap();
        assert_eq!(back, state);

        // Loading the decoded state reproduces the source model exactly.
        let mut fresh = spec.build(0);
        load_state(&mut fresh, &back);
        let x = Tensor::ones([2, 784]);
        assert_eq!(
            fresh.forward(&x, Mode::Eval),
            trained.forward(&x, Mode::Eval)
        );
    }

    #[test]
    fn wire_codec_rejects_damage() {
        let mut model = ModelSpec::mlp(2, 8).build(3);
        let state = state_vec(&mut model);
        let bytes = state_to_bytes(&state);
        // Truncation anywhere fails.
        assert!(state_from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(state_from_bytes(&bytes[..3]).is_err());
        // Trailing garbage fails.
        let mut long = bytes.clone();
        long.extend_from_slice(&[0; 4]);
        assert!(state_from_bytes(&long).is_err());
        // An implausible rank fails without allocating.
        let mut bad_rank = bytes.clone();
        bad_rank[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(state_from_bytes(&bad_rank).is_err());
        // Empty state roundtrips.
        assert_eq!(state_from_bytes(&state_to_bytes(&[])).unwrap(), vec![]);
    }

    #[test]
    #[should_panic(expected = "too few")]
    fn load_rejects_short_state() {
        let spec = ModelSpec::mlp(2, 8);
        let mut model = spec.build(0);
        load_state(&mut model, &[]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn load_rejects_wrong_shape() {
        let spec = ModelSpec::mlp(2, 8);
        let mut model = spec.build(0);
        let mut state = state_vec(&mut model);
        state[0] = Tensor::zeros([1]);
        load_state(&mut model, &state);
    }
}
