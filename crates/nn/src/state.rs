//! Model state extraction and restoration.
//!
//! In the distributed runtime a trained expert is shipped to an edge node
//! as `(ModelSpec, Vec<Tensor>)`: the node rebuilds the architecture from
//! the spec and then loads the trained parameters with [`load_state`].

use crate::layer::Layer;
use teamnet_tensor::Tensor;

/// Snapshots every parameter of `model` in visitation order.
pub fn state_vec(model: &mut dyn Layer) -> Vec<Tensor> {
    let mut out = Vec::new();
    model.visit_params(&mut |p, _| out.push(p.clone()));
    out
}

/// Restores parameters captured by [`state_vec`] into a model with the
/// identical architecture.
///
/// # Panics
///
/// Panics if the parameter count or any shape differs from the model's.
pub fn load_state(model: &mut dyn Layer, state: &[Tensor]) {
    let mut idx = 0usize;
    model.visit_params(&mut |p, _| {
        assert!(
            idx < state.len(),
            "state has too few tensors ({} provided)",
            state.len()
        );
        assert!(
            p.shape().same_as(state[idx].shape()),
            "state tensor {idx} shape {} does not match parameter shape {}",
            state[idx].shape(),
            p.shape()
        );
        *p = state[idx].clone();
        idx += 1;
    });
    assert_eq!(
        idx,
        state.len(),
        "state has too many tensors ({} provided, {idx} used)",
        state.len()
    );
}

/// Total number of bytes needed to serialize a model's parameters as raw
/// `f32`s — the payload size the cost model charges for deploying a model
/// over the network.
pub fn state_bytes(model: &mut dyn Layer) -> usize {
    let mut total = 0usize;
    model.visit_params(&mut |p, _| total += p.len() * std::mem::size_of::<f32>());
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::models::ModelSpec;
    use teamnet_tensor::Tensor;

    #[test]
    fn state_roundtrip_preserves_outputs() {
        let spec = ModelSpec::mlp(3, 16);
        let mut trained = spec.build(7);
        let state = state_vec(&mut trained);

        let mut fresh = spec.build(99); // different init
        let x = Tensor::ones([2, 784]);
        let before = fresh.forward(&x, Mode::Eval);
        load_state(&mut fresh, &state);
        let after = fresh.forward(&x, Mode::Eval);
        let reference = trained.forward(&x, Mode::Eval);
        assert_ne!(before, reference);
        assert_eq!(after, reference);
    }

    #[test]
    fn state_bytes_counts_all_params() {
        let spec = ModelSpec::mlp(2, 8);
        let mut model = spec.build(0);
        assert_eq!(state_bytes(&mut model), model.param_count() * 4);
    }

    #[test]
    #[should_panic(expected = "too few")]
    fn load_rejects_short_state() {
        let spec = ModelSpec::mlp(2, 8);
        let mut model = spec.build(0);
        load_state(&mut model, &[]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn load_rejects_wrong_shape() {
        let spec = ModelSpec::mlp(2, 8);
        let mut model = spec.build(0);
        let mut state = state_vec(&mut model);
        state[0] = Tensor::zeros([1]);
        load_state(&mut model, &state);
    }
}
