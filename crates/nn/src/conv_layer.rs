//! Convolution and pooling layers (NCHW layout).

use crate::layer::{Layer, Mode, Param};
use teamnet_tensor::conv::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward, global_avg_pool,
    global_avg_pool_backward, Conv2dSpec,
};
use teamnet_tensor::Tensor;

/// 2-D convolution layer with square kernels and symmetric zero padding.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a conv layer with He-normal weights and zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl rand::Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(Tensor::he_normal(
                [out_channels, in_channels, kernel, kernel],
                fan_in,
                rng,
            )),
            bias: Param::new(Tensor::zeros([out_channels])),
            spec: Conv2dSpec::new(kernel, stride, padding),
            in_channels,
            out_channels,
            cached_input: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.dims()[1], self.in_channels, "Conv2d channel mismatch");
        // Cache only when a backward pass can follow: inference must match
        // the static cost model's eval allocation schedule (DESIGN.md §13).
        self.cached_input = match mode {
            Mode::Train => Some(input.clone()),
            Mode::Eval => None,
        };
        conv2d(input, &self.weight.value, &self.bias.value, self.spec)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Layer contract: backward() only runs after forward(). lint: allow(no-expect)
        let x = self
            .cached_input
            .as_ref()
            .expect("backward() before forward()");
        let (gx, gw, gb) = conv2d_backward(x, &self.weight.value, grad_out, self.spec);
        self.weight.grad.axpy(1.0, &gw);
        self.bias.grad.axpy(1.0, &gb);
        gx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visitor(&mut self.weight.value, &mut self.weight.grad);
        visitor(&mut self.bias.value, &mut self.bias.grad);
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        vec![
            in_dims[0],
            self.out_channels,
            self.spec.out_size(in_dims[2]),
            self.spec.out_size(in_dims[3]),
        ]
    }

    fn check_shape(&self, in_dims: &[usize]) -> Result<Vec<usize>, crate::ShapeError> {
        if in_dims.len() != 4 {
            return Err(crate::ShapeError::Rank {
                layer: self.name(),
                expected: 4,
                got: in_dims.to_vec(),
            });
        }
        if in_dims[1] != self.in_channels {
            return Err(crate::ShapeError::Axis {
                layer: self.name(),
                axis: 1,
                expected: self.in_channels,
                got: in_dims.to_vec(),
            });
        }
        for &hw in &in_dims[2..4] {
            let padded = hw + 2 * self.spec.padding;
            if padded < self.spec.kernel {
                return Err(crate::ShapeError::KernelTooLarge {
                    layer: self.name(),
                    kernel: self.spec.kernel,
                    padded,
                    got: in_dims.to_vec(),
                });
            }
        }
        Ok(self.out_dims(in_dims))
    }

    fn flops(&self, in_dims: &[usize]) -> u64 {
        let out = self.out_dims(in_dims);
        let per_output = 2 * self.in_channels as u64 * (self.spec.kernel * self.spec.kernel) as u64;
        out.iter().product::<usize>() as u64 * per_output
    }

    fn workspace_bytes(&self, in_dims: &[usize]) -> u64 {
        // One sample's im2col matrix `[ic·k², oh·ow]`: the sequential
        // kernel in `teamnet_tensor::conv` unfolds at most one sample at a
        // time, and the sample loop reuses the slot.
        let oh = self.spec.out_size(in_dims[2]);
        let ow = self.spec.out_size(in_dims[3]);
        crate::cost::tensor_bytes(&[
            self.in_channels * self.spec.kernel * self.spec.kernel,
            oh,
            ow,
        ])
    }

    fn param_count(&self) -> usize {
        self.weight.value.len() + self.bias.value.len()
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

/// Non-overlapping average pooling layer.
#[derive(Debug)]
pub struct AvgPool2d {
    window: usize,
    in_hw: Option<(usize, usize)>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer over `window × window` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        AvgPool2d {
            window,
            in_hw: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.in_hw = Some((input.dims()[2], input.dims()[3]));
        avg_pool2d(input, self.window)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Layer contract: backward() only runs after forward(). lint: allow(no-expect)
        let (h, w) = self.in_hw.expect("backward() before forward()");
        avg_pool2d_backward(grad_out, h, w, self.window)
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        vec![
            in_dims[0],
            in_dims[1],
            in_dims[2] / self.window,
            in_dims[3] / self.window,
        ]
    }

    fn check_shape(&self, in_dims: &[usize]) -> Result<Vec<usize>, crate::ShapeError> {
        if in_dims.len() != 4 {
            return Err(crate::ShapeError::Rank {
                layer: self.name(),
                expected: 4,
                got: in_dims.to_vec(),
            });
        }
        // `out_dims` truncates with integer division; statically we insist
        // the window tiles the image exactly so no pixels are dropped.
        for axis in [2usize, 3] {
            if in_dims[axis] % self.window != 0 {
                return Err(crate::ShapeError::Divisibility {
                    layer: self.name(),
                    axis,
                    divisor: self.window,
                    got: in_dims.to_vec(),
                });
            }
        }
        Ok(self.out_dims(in_dims))
    }

    fn flops(&self, in_dims: &[usize]) -> u64 {
        in_dims.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    in_hw: Option<(usize, usize)>,
}

impl GlobalAvgPool {
    /// Creates a global average-pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { in_hw: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.in_hw = Some((input.dims()[2], input.dims()[3]));
        global_avg_pool(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Layer contract: backward() only runs after forward(). lint: allow(no-expect)
        let (h, w) = self.in_hw.expect("backward() before forward()");
        global_avg_pool_backward(grad_out, h, w)
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        vec![in_dims[0], in_dims[1]]
    }

    fn check_shape(&self, in_dims: &[usize]) -> Result<Vec<usize>, crate::ShapeError> {
        if in_dims.len() != 4 {
            return Err(crate::ShapeError::Rank {
                layer: self.name(),
                expected: 4,
                got: in_dims.to_vec(),
            });
        }
        Ok(self.out_dims(in_dims))
    }

    fn flops(&self, in_dims: &[usize]) -> u64 {
        in_dims.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_layer_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::randn([2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        assert_eq!(conv.out_dims(x.dims()), y.dims().to_vec());
        let gx = conv.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(conv.param_count(), 8 * 3 * 9 + 8);
    }

    #[test]
    fn conv_layer_gradient_check_weight() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        let x = Tensor::randn([1, 1, 4, 4], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        conv.zero_grad();
        conv.forward(&x, Mode::Train);
        conv.backward(&Tensor::ones(y.shape().clone()));

        let mut analytic = Vec::new();
        conv.visit_params(&mut |_, g| analytic.push(g.clone()));
        let wg = &analytic[0];

        // Perturb one weight and compare.
        let eps = 1e-2;
        let probe = 3;
        conv.visit_params(&mut |w, _| {
            if w.rank() == 4 {
                w.data_mut()[probe] += eps;
            }
        });
        let lp = conv.forward(&x, Mode::Train).sum();
        conv.visit_params(&mut |w, _| {
            if w.rank() == 4 {
                w.data_mut()[probe] -= 2.0 * eps;
            }
        });
        let lm = conv.forward(&x, Mode::Train).sum();
        let num = (lp - lm) / (2.0 * eps);
        assert!(
            (num - wg.data()[probe]).abs() < 1e-2 * (1.0 + wg.data()[probe].abs()),
            "numeric {num} vs analytic {}",
            wg.data()[probe]
        );
    }

    #[test]
    fn pooling_layers_roundtrip_shapes() {
        let x = Tensor::arange(2 * 4 * 4)
            .into_reshaped([1, 2, 4, 4])
            .unwrap();
        let mut pool = AvgPool2d::new(2);
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[1, 2, 2, 2]);
        assert_eq!(pool.backward(&Tensor::ones([1, 2, 2, 2])).dims(), x.dims());

        let mut gap = GlobalAvgPool::new();
        let z = gap.forward(&x, Mode::Eval);
        assert_eq!(z.dims(), &[1, 2]);
        assert_eq!(gap.backward(&Tensor::ones([1, 2])).dims(), x.dims());
    }

    #[test]
    fn conv_flops_formula() {
        let mut rng = StdRng::seed_from_u64(7);
        let conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        // Output 1x4x5x5, each needing 2*2*9 flops.
        assert_eq!(conv.flops(&[1, 2, 5, 5]), 4 * 25 * 2 * 2 * 9);
    }
}
