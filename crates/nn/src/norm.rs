//! Batch normalization (Ioffe & Szegedy, 2015), cited by the paper's
//! Algorithm 3 for normalizing expert gradients per mini-batch.

use crate::layer::{Layer, Mode, Param};
use teamnet_tensor::Tensor;

const BN_EPS: f32 = 1e-5;

/// Per-channel batch normalization over `[n, c, h, w]` tensors.
///
/// In [`Mode::Train`] the layer normalizes with batch statistics and updates
/// exponential running averages; in [`Mode::Eval`] it uses the running
/// averages, so inference is deterministic.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` feature maps with the
    /// conventional momentum of 0.1.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones([channels])),
            beta: Param::new(Tensor::zeros([channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            channels,
            cache: None,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    fn per_channel_stats(&self, input: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let count = (n * h * w) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for s in 0..n {
            for (ch, m) in mean.iter_mut().enumerate() {
                let base = (s * c + ch) * h * w;
                for &v in &input.data()[base..base + h * w] {
                    *m += v;
                }
            }
        }
        for m in &mut mean {
            *m /= count;
        }
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                for &v in &input.data()[base..base + h * w] {
                    let d = v - mean[ch];
                    var[ch] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= count;
        }
        (mean, var)
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "BatchNorm2d expects [n, c, h, w]");
        assert_eq!(
            input.dims()[1],
            self.channels,
            "BatchNorm2d channel mismatch"
        );
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );

        let (mean, var) = match mode {
            Mode::Train => {
                let (mean, var) = self.per_channel_stats(input);
                for ch in 0..c {
                    self.running_mean[ch] =
                        (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean[ch];
                    self.running_var[ch] =
                        (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var[ch];
                }
                (mean, var)
            }
            Mode::Eval => (self.running_mean.clone(), self.running_var.clone()),
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + BN_EPS).sqrt()).collect();
        // The x̂ buffer only exists to serve backward(): eval-mode forward
        // skips it so inference matches the static cost model's allocation
        // schedule (DESIGN.md §13).
        let mut normalized = match mode {
            Mode::Train => Some(input.clone()),
            Mode::Eval => None,
        };
        let mut out = input.clone();
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                let (m, is) = (mean[ch], inv_std[ch]);
                let (g, b) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
                for i in base..base + h * w {
                    let xn = (input.data()[i] - m) * is;
                    if let Some(normalized) = normalized.as_mut() {
                        normalized.data_mut()[i] = xn;
                    }
                    out.data_mut()[i] = g * xn + b;
                }
            }
        }
        if let Some(normalized) = normalized {
            self.cache = Some(BnCache {
                normalized,
                inv_std,
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Layer contract: backward() only runs after forward(). lint: allow(no-expect)
        let cache = self
            .cache
            .as_ref()
            .expect("backward() requires a Train-mode forward()");
        let (n, c, h, w) = (
            grad_out.dims()[0],
            grad_out.dims()[1],
            grad_out.dims()[2],
            grad_out.dims()[3],
        );
        let count = (n * h * w) as f32;
        let xn = &cache.normalized;

        // Per-channel reductions Σg and Σ(g·x̂).
        let mut sum_g = vec![0.0f32; c];
        let mut sum_gx = vec![0.0f32; c];
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                for i in base..base + h * w {
                    sum_g[ch] += grad_out.data()[i];
                    sum_gx[ch] += grad_out.data()[i] * xn.data()[i];
                }
            }
        }
        for ch in 0..c {
            self.gamma.grad.data_mut()[ch] += sum_gx[ch];
            self.beta.grad.data_mut()[ch] += sum_g[ch];
        }

        // dx = γ·inv_std/m · (m·g − Σg − x̂·Σ(g·x̂))
        let mut gx = grad_out.clone();
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                let scale = self.gamma.value.data()[ch] * cache.inv_std[ch] / count;
                for i in base..base + h * w {
                    gx.data_mut()[i] = scale
                        * (count * grad_out.data()[i] - sum_g[ch] - xn.data()[i] * sum_gx[ch]);
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visitor(&mut self.gamma.value, &mut self.gamma.grad);
        visitor(&mut self.beta.value, &mut self.beta.grad);
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }

    fn check_shape(&self, in_dims: &[usize]) -> Result<Vec<usize>, crate::ShapeError> {
        if in_dims.len() != 4 {
            return Err(crate::ShapeError::Rank {
                layer: self.name(),
                expected: 4,
                got: in_dims.to_vec(),
            });
        }
        if in_dims[1] != self.channels {
            return Err(crate::ShapeError::Axis {
                layer: self.name(),
                axis: 1,
                expected: self.channels,
                got: in_dims.to_vec(),
            });
        }
        Ok(self.out_dims(in_dims))
    }

    fn flops(&self, in_dims: &[usize]) -> u64 {
        4 * in_dims.iter().product::<usize>() as u64
    }

    fn param_count(&self) -> usize {
        2 * self.channels
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn([4, 3, 5, 5], 2.0, 3.0, &mut rng);
        let y = bn.forward(&x, Mode::Train);
        // Each channel of the output should be ≈ zero-mean unit-variance
        // (γ=1, β=0 initially).
        for ch in 0..3 {
            let mut vals = Vec::new();
            for s in 0..4 {
                let base = (s * 3 + ch) * 25;
                vals.extend_from_slice(&y.data()[base..base + 25]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut bn = BatchNorm2d::new(2);
        for _ in 0..50 {
            let x = Tensor::randn([8, 2, 3, 3], 5.0, 2.0, &mut rng);
            bn.forward(&x, Mode::Train);
        }
        let x = Tensor::randn([2, 2, 3, 3], 5.0, 2.0, &mut rng);
        let y1 = bn.forward(&x, Mode::Eval);
        let y2 = bn.forward(&x, Mode::Eval);
        assert_eq!(y1, y2);
        // Running stats should have learned mean≈5 → eval output roughly centred.
        assert!(y1.mean().abs() < 0.5, "eval mean {}", y1.mean());
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut bn = BatchNorm2d::new(2);
        // Give gamma/beta non-trivial values.
        bn.visit_params(&mut |p, _| {
            for (i, v) in p.data_mut().iter_mut().enumerate() {
                *v += 0.3 * (i as f32 + 1.0);
            }
        });
        let x = Tensor::randn([3, 2, 2, 2], 0.0, 1.0, &mut rng);
        bn.forward(&x, Mode::Train);
        let gx = bn.backward(&Tensor::ones([3, 2, 2, 2]));

        let eps = 1e-2;
        for probe in [0usize, 7, 15, 23] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let lp = bn.forward(&xp, Mode::Train).sum();
            let lm = bn.forward(&xm, Mode::Train).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[probe]).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{probe}]: numeric {num} vs analytic {}",
                gx.data()[probe]
            );
        }
    }

    #[test]
    fn param_gradient_finite_difference() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::randn([2, 1, 2, 2], 1.0, 2.0, &mut rng);
        bn.forward(&x, Mode::Train);
        bn.backward(&Tensor::ones([2, 1, 2, 2]));
        let mut grads = Vec::new();
        bn.visit_params(&mut |_, g| grads.push(g.clone()));
        // β gradient is exactly the grad_out sum (8 ones).
        assert!((grads[1].data()[0] - 8.0).abs() < 1e-5);
    }
}
