//! Static shape checker: propagates `[batch, …]` shapes through a network
//! at construction time, so a mis-wired builder fails with a typed
//! [`ShapeError`] naming the offending layer instead of panicking deep in
//! tensor code on the first forward pass.
//!
//! Every [`crate::Layer`] implements [`crate::Layer::check_shape`]; this
//! module holds the error type and the model-level entry points. The
//! `cargo xtask check` invariant auditor drives [`check_model`] over every
//! builder in [`crate::ModelSpec`] at each paper configuration.

use crate::layer::Layer;
use crate::sequential::Sequential;
use std::fmt;

/// A static shape mismatch detected without running a forward pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// The layer requires inputs of a specific rank.
    Rank {
        /// Layer type name.
        layer: &'static str,
        /// Required tensor rank (batch axis included).
        expected: usize,
        /// The offered input dimensions.
        got: Vec<usize>,
    },
    /// One axis of the input has the wrong extent.
    Axis {
        /// Layer type name.
        layer: &'static str,
        /// Which axis mismatched (0 = batch).
        axis: usize,
        /// The extent the layer was built for.
        expected: usize,
        /// The offered input dimensions.
        got: Vec<usize>,
    },
    /// An axis extent must be divisible by a window/stride factor.
    Divisibility {
        /// Layer type name.
        layer: &'static str,
        /// Which axis is constrained.
        axis: usize,
        /// The required divisor.
        divisor: usize,
        /// The offered input dimensions.
        got: Vec<usize>,
    },
    /// The (padded) spatial extent is smaller than the kernel.
    KernelTooLarge {
        /// Layer type name.
        layer: &'static str,
        /// Kernel side length.
        kernel: usize,
        /// Spatial extent after padding.
        padded: usize,
        /// The offered input dimensions.
        got: Vec<usize>,
    },
    /// Two merge paths (residual branches / shortcut) disagree.
    BranchMismatch {
        /// Layer type name.
        layer: &'static str,
        /// Output dimensions of the residual branches.
        branch: Vec<usize>,
        /// Output dimensions of the shortcut path.
        shortcut: Vec<usize>,
    },
    /// A layer inside a [`Sequential`] failed; names the position.
    AtLayer {
        /// Zero-based index of the failing layer within its container.
        index: usize,
        /// Layer type name at that index.
        layer: &'static str,
        /// The underlying failure.
        source: Box<ShapeError>,
    },
}

impl ShapeError {
    /// Wraps `source` with the position of the failing layer inside a
    /// container, preserving nested positions for nested containers.
    pub fn at(index: usize, layer: &'static str, source: ShapeError) -> Self {
        ShapeError::AtLayer {
            index,
            layer,
            source: Box::new(source),
        }
    }

    /// The innermost error, unwrapping any [`ShapeError::AtLayer`] layers.
    pub fn root_cause(&self) -> &ShapeError {
        match self {
            ShapeError::AtLayer { source, .. } => source.root_cause(),
            other => other,
        }
    }

    /// The outermost failing layer index, if the error occurred inside a
    /// container.
    pub fn layer_index(&self) -> Option<usize> {
        match self {
            ShapeError::AtLayer { index, .. } => Some(*index),
            _ => None,
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::Rank {
                layer,
                expected,
                got,
            } => {
                write!(f, "{layer} expects rank-{expected} input, got {got:?}")
            }
            ShapeError::Axis {
                layer,
                axis,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{layer} expects axis {axis} to be {expected}, got {got:?}"
                )
            }
            ShapeError::Divisibility {
                layer,
                axis,
                divisor,
                got,
            } => {
                write!(
                    f,
                    "{layer} expects axis {axis} divisible by {divisor}, got {got:?}"
                )
            }
            ShapeError::KernelTooLarge {
                layer,
                kernel,
                padded,
                got,
            } => {
                write!(
                    f,
                    "{layer} kernel {kernel} exceeds padded spatial extent {padded} of {got:?}"
                )
            }
            ShapeError::BranchMismatch {
                layer,
                branch,
                shortcut,
            } => {
                write!(
                    f,
                    "{layer} branch output {branch:?} disagrees with shortcut output {shortcut:?}"
                )
            }
            ShapeError::AtLayer {
                index,
                layer,
                source,
            } => {
                write!(f, "layer {index} ({layer}): {source}")
            }
        }
    }
}

impl std::error::Error for ShapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShapeError::AtLayer { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Checks `model` against per-example input dimensions (no batch axis),
/// returning the per-example output dimensions on success.
///
/// # Errors
///
/// Returns the first [`ShapeError`] encountered, wrapped with the index of
/// the failing layer.
pub fn check_model(model: &Sequential, input_dims: &[usize]) -> Result<Vec<usize>, ShapeError> {
    let mut dims = Vec::with_capacity(input_dims.len() + 1);
    dims.push(1);
    dims.extend_from_slice(input_dims);
    let out = model.check_shape(&dims)?;
    Ok(out[1..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_layer::{AvgPool2d, Conv2d, GlobalAvgPool};
    use crate::layer::{Dense, Flatten, Relu};
    use crate::norm::BatchNorm2d;
    use crate::shake::ShakeShakeBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn misshaped_dense_stack_names_the_offending_layer() {
        // The acceptance example: Dense 784→128 followed by Dense 256→10
        // must be rejected at layer index 1 with the feature mismatch.
        let mut net = Sequential::new();
        net.push(Dense::new(784, 128, &mut rng()));
        net.push(Dense::new(256, 10, &mut rng()));
        let err = check_model(&net, &[784]).expect_err("mismatch must be caught");
        assert_eq!(err.layer_index(), Some(1));
        assert_eq!(
            *err.root_cause(),
            ShapeError::Axis {
                layer: "Dense",
                axis: 1,
                expected: 256,
                got: vec![1, 128]
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("layer 1"), "{msg}");
        assert!(msg.contains("Dense"), "{msg}");
    }

    #[test]
    fn well_formed_stack_reports_output_dims() {
        let mut net = Sequential::new();
        net.push(Dense::new(784, 128, &mut rng()));
        net.push(Relu::new());
        net.push(Dense::new(128, 10, &mut rng()));
        assert_eq!(check_model(&net, &[784]), Ok(vec![10]));
    }

    #[test]
    fn dense_rejects_image_rank_input() {
        let dense = Dense::new(784, 10, &mut rng());
        let err = dense.check_shape(&[1, 1, 28, 28]).expect_err("rank");
        assert_eq!(
            err,
            ShapeError::Rank {
                layer: "Dense",
                expected: 2,
                got: vec![1, 1, 28, 28]
            }
        );
    }

    #[test]
    fn flatten_bridges_images_to_dense() {
        let mut net = Sequential::new();
        net.push(Flatten::new());
        net.push(Dense::new(784, 10, &mut rng()));
        assert_eq!(check_model(&net, &[1, 28, 28]), Ok(vec![10]));
    }

    #[test]
    fn conv_checks_channels_and_kernel_fit() {
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng());
        assert_eq!(conv.check_shape(&[1, 3, 8, 8]), Ok(vec![1, 8, 8, 8]));
        assert_eq!(
            conv.check_shape(&[1, 4, 8, 8]),
            Err(ShapeError::Axis {
                layer: "Conv2d",
                axis: 1,
                expected: 3,
                got: vec![1, 4, 8, 8]
            })
        );
        let big = Conv2d::new(3, 8, 7, 1, 0, &mut rng());
        assert_eq!(
            big.check_shape(&[1, 3, 4, 4]),
            Err(ShapeError::KernelTooLarge {
                layer: "Conv2d",
                kernel: 7,
                padded: 4,
                got: vec![1, 3, 4, 4]
            })
        );
    }

    #[test]
    fn avg_pool_requires_divisible_windows() {
        let pool = AvgPool2d::new(2);
        assert_eq!(pool.check_shape(&[1, 4, 6, 6]), Ok(vec![1, 4, 3, 3]));
        assert_eq!(
            pool.check_shape(&[1, 4, 5, 6]),
            Err(ShapeError::Divisibility {
                layer: "AvgPool2d",
                axis: 2,
                divisor: 2,
                got: vec![1, 4, 5, 6]
            })
        );
    }

    #[test]
    fn batch_norm_requires_matching_channels() {
        let bn = BatchNorm2d::new(8);
        assert_eq!(bn.check_shape(&[2, 8, 4, 4]), Ok(vec![2, 8, 4, 4]));
        assert!(bn.check_shape(&[2, 4, 4, 4]).is_err());
        assert!(bn.check_shape(&[2, 8]).is_err());
    }

    #[test]
    fn global_pool_requires_images() {
        let gap = GlobalAvgPool::new();
        assert_eq!(gap.check_shape(&[2, 16, 8, 8]), Ok(vec![2, 16]));
        assert!(gap.check_shape(&[2, 16]).is_err());
    }

    #[test]
    fn shake_block_checks_both_branches_and_skip() {
        let block = ShakeShakeBlock::new(4, 8, 2, &mut rng());
        assert_eq!(block.check_shape(&[1, 4, 8, 8]), Ok(vec![1, 8, 4, 4]));
        // Wrong input channels fail inside the branch, position preserved.
        let err = block.check_shape(&[1, 3, 8, 8]).expect_err("channels");
        assert!(matches!(
            err.root_cause(),
            ShapeError::Axis {
                layer: "Conv2d",
                ..
            }
        ));
        // Identity skip: input dims must equal the branch output dims.
        let identity = ShakeShakeBlock::new(4, 4, 1, &mut rng());
        assert_eq!(identity.check_shape(&[1, 4, 8, 8]), Ok(vec![1, 4, 8, 8]));
    }

    #[test]
    fn check_agrees_with_out_dims_on_valid_input() {
        let mut net = Sequential::new();
        net.push(Conv2d::new(3, 4, 3, 1, 1, &mut rng()));
        net.push(BatchNorm2d::new(4));
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        net.push(Dense::new(4, 10, &mut rng()));
        let dims = [2usize, 3, 16, 16];
        assert_eq!(net.check_shape(&dims), Ok(net.out_dims(&dims)));
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::conv_layer::{AvgPool2d, Conv2d, GlobalAvgPool};
    use crate::layer::{Dense, Flatten, Mode, Relu, TanhLayer};
    use crate::norm::BatchNorm2d;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};
    use teamnet_tensor::Tensor;

    /// A random but well-formed MLP-family stack over `[input]` vectors.
    fn random_dense_stack(seed: u64, input: usize, depth: usize) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        let mut width = input;
        for _ in 0..depth {
            match rng.gen_range(0..4) {
                0 | 1 => {
                    let out = rng.gen_range(1..16);
                    net.push(Dense::new(width, out, &mut rng));
                    width = out;
                }
                2 => {
                    net.push(Relu::new());
                }
                _ => {
                    net.push(TanhLayer::new());
                }
            }
        }
        net
    }

    /// A random but well-formed conv-family stack over `[c, hw, hw]`
    /// images, ending in a classification head.
    fn random_conv_stack(seed: u64, channels: usize) -> (Sequential, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hw = 2 * rng.gen_range(2..5usize);
        let mut net = Sequential::new();
        let mut c = channels;
        for _ in 0..rng.gen_range(1..3usize) {
            let oc = rng.gen_range(1..6);
            net.push(Conv2d::new(c, oc, 3, 1, 1, &mut rng));
            c = oc;
            if rng.gen_bool(0.5) {
                net.push(BatchNorm2d::new(c));
            }
            net.push(Relu::new());
        }
        if rng.gen_bool(0.5) {
            net.push(AvgPool2d::new(2));
        }
        if rng.gen_bool(0.5) {
            net.push(GlobalAvgPool::new());
        } else {
            net.push(Flatten::new());
        }
        (net, vec![channels, hw, hw])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The static checker accepts every well-formed random dense stack
        /// and predicts exactly the shape the real forward pass produces.
        #[test]
        fn checker_agrees_with_forward_on_dense_stacks(
            seed in 0u64..10_000,
            input in 1usize..24,
            depth in 1usize..7,
            n in 1usize..4,
        ) {
            let mut net = random_dense_stack(seed, input, depth);
            let checked = check_model(&net, &[input]);
            prop_assert!(checked.is_ok(), "well-formed stack rejected: {checked:?}");
            let y = net.forward(&Tensor::zeros([n, input]), Mode::Eval);
            let mut expected = vec![n];
            expected.extend(checked.unwrap_or_default());
            prop_assert_eq!(y.dims(), &expected[..]);
        }

        /// Same agreement for conv/pool/norm stacks over image inputs.
        #[test]
        fn checker_agrees_with_forward_on_conv_stacks(
            seed in 0u64..10_000,
            channels in 1usize..4,
            n in 1usize..3,
        ) {
            let (mut net, in_dims) = random_conv_stack(seed, channels);
            let checked = check_model(&net, &in_dims);
            prop_assert!(checked.is_ok(), "well-formed stack rejected: {checked:?}");
            let mut full = vec![n];
            full.extend(in_dims.iter().copied());
            let y = net.forward(&Tensor::zeros(full), Mode::Eval);
            let mut expected = vec![n];
            expected.extend(checked.unwrap_or_default());
            prop_assert_eq!(y.dims(), &expected[..]);
        }

        /// Injecting one mis-wired Dense into a valid stack is always
        /// caught, and the diagnostic names the injected layer's index.
        #[test]
        fn checker_pinpoints_an_injected_mismatch(
            seed in 0u64..10_000,
            input in 1usize..24,
            depth in 1usize..6,
            delta in 1usize..7,
        ) {
            let mut net = random_dense_stack(seed, input, depth);
            let width = match check_model(&net, &[input]) {
                Ok(dims) => dims.first().copied().unwrap_or(input),
                Err(e) => return Err(TestCaseError::fail(e.to_string())),
            };
            let index = net.len();
            net.push(Dense::new(width + delta, 5, &mut StdRng::seed_from_u64(seed)));
            let err = check_model(&net, &[input]);
            prop_assert!(err.is_err(), "mis-wired stack accepted");
            let err = err.expect_err("checked above");
            prop_assert_eq!(err.layer_index(), Some(index));
            prop_assert!(matches!(
                err.root_cause(),
                ShapeError::Axis { layer: "Dense", .. }
            ), "unexpected root cause: {:?}", err.root_cause());
        }
    }
}
