//! The [`Layer`] trait and the dense/activation/reshape layers.
//!
//! Every layer caches whatever it needs during `forward` so that `backward`
//! can run without re-computation, mirroring how static-graph frameworks
//! (the paper used TensorFlow) hold activations for the backward pass.
//! Gradients *accumulate* into each parameter's `grad` buffer; call
//! [`Layer::zero_grad`] between optimizer steps.

use teamnet_tensor::{Tensor, TensorError};

/// Unwraps a kernel result whose preconditions the calling layer has
/// already established (rank/shape asserts in `forward`, the layer
/// contract for `backward`), naming the layer path in the panic.
fn checked(result: Result<Tensor, TensorError>, ctx: &'static str) -> Tensor {
    match result {
        Ok(t) => t,
        Err(e) => {
            assert!(false, "{ctx}: {e}");
            unreachable!()
        }
    }
}

/// Whether a forward pass is part of training or evaluation.
///
/// Layers with stochastic or statistics-tracking behaviour (batch
/// normalization, Shake-Shake) branch on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: use batch statistics, sample stochastic coefficients.
    Train,
    /// Inference: use running statistics, deterministic coefficients.
    Eval,
}

/// A differentiable network layer.
///
/// The contract: `backward` must be called with the gradient of the loss
/// with respect to the *most recent* `forward` output, and returns the
/// gradient with respect to that forward call's input.
pub trait Layer: Send {
    /// Computes the layer output for `input`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad_out` (gradient w.r.t. the last forward output)
    /// backward, accumulating parameter gradients, and returns the gradient
    /// w.r.t. the last forward input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every `(parameter, gradient)` pair in a stable order.
    ///
    /// Parameter-free layers use the default empty implementation.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        let _ = visitor;
    }

    /// Resets all accumulated gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| {
            for x in g.data_mut() {
                *x = 0.0;
            }
        });
    }

    /// The output dimensions produced for the given input dimensions
    /// (batch dimension included), without running a forward pass.
    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize>;

    /// Validates that this layer accepts `in_dims` and returns the output
    /// dimensions it would produce — the statically checked counterpart of
    /// [`Layer::out_dims`]. Shape-preserving layers use the default.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ShapeError`] describing the first constraint the
    /// input violates.
    fn check_shape(&self, in_dims: &[usize]) -> Result<Vec<usize>, crate::ShapeError> {
        Ok(self.out_dims(in_dims))
    }

    /// Floating-point operations for one forward pass at the given input
    /// dimensions. Used by the edge-device cost model.
    fn flops(&self, in_dims: &[usize]) -> u64;

    /// Number of trainable scalars in this layer.
    fn param_count(&self) -> usize {
        0
    }

    /// Short human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Peak bytes of *scratch* tensors an eval-mode forward allocates
    /// beyond its input and output (e.g. the matmul product a broadcast
    /// then copies, an im2col patch matrix). The default covers layers
    /// that write the output directly.
    fn workspace_bytes(&self, in_dims: &[usize]) -> u64 {
        let _ = in_dims;
        0
    }

    /// This layer's node in the static liveness cost model
    /// (`crate::cost`). Leaves use the default; containers
    /// ([`crate::Sequential`], [`crate::ShakeShakeBlock`]) override it to
    /// expose their internal tensor graph so join points are priced by
    /// real liveness, not a running sum.
    fn cost_node(&self, in_dims: &[usize]) -> crate::cost::CostNode {
        crate::cost::CostNode::leaf(
            self.name(),
            in_dims,
            &self.out_dims(in_dims),
            self.workspace_bytes(in_dims),
        )
    }

    /// Appends this layer's flat profile entries to `out`, advancing and
    /// returning the running dimensions. Containers override this to
    /// recurse so cost models see the true per-layer granularity.
    fn profile_into(
        &self,
        in_dims: &[usize],
        out: &mut Vec<crate::sequential::LayerProfile>,
    ) -> Vec<usize> {
        let out_dims = self.out_dims(in_dims);
        out.push(crate::sequential::LayerProfile {
            name: self.name(),
            flops: self.flops(in_dims),
            params: self.param_count(),
            in_dims: in_dims.to_vec(),
            out_dims: out_dims.clone(),
        });
        out_dims
    }
}

/// Total number of trainable scalars in a layer (or whole model).
pub fn param_count(layer: &dyn Layer) -> usize {
    layer.param_count()
}

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone)]
pub(crate) struct Param {
    pub value: Tensor,
    pub grad: Tensor,
}

impl Param {
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad }
    }
}

/// Fully connected layer: `y = x·W + b` with `W: [in, out]`, `b: [out]`.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero bias (the
    /// right scaling ahead of the ReLU nonlinearities every network in
    /// this workspace uses; Xavier starves gradients in the deeper MLPs).
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl rand::Rng) -> Self {
        Dense {
            weight: Param::new(Tensor::he_normal([in_dim, out_dim], in_dim, rng)),
            bias: Param::new(Tensor::zeros([out_dim])),
            cached_input: None,
        }
    }

    /// Creates a dense layer from explicit weight and bias tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is rank-2 and `bias` is rank-1 with length
    /// equal to the weight's second dimension.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.rank(), 2, "dense weight must be rank-2");
        assert_eq!(bias.dims(), &[weight.dims()[1]], "dense bias must be [out]");
        Dense {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// The weight matrix `[in, out]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 2, "Dense expects [batch, features]");
        // Cache only when a backward pass can follow: inference must match
        // the static cost model's eval allocation schedule (DESIGN.md §13).
        self.cached_input = match mode {
            Mode::Train => Some(input.clone()),
            Mode::Eval => None,
        };
        checked(input.try_matmul(&self.weight.value), "Dense forward")
            .add_row_broadcast(&self.bias.value)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Layer contract: backward() only runs after forward(). lint: allow(no-expect)
        let x = self
            .cached_input
            .as_ref()
            .expect("backward() before forward()");
        let xt = checked(x.try_transpose(), "Dense backward");
        self.weight
            .grad
            .axpy(1.0, &checked(xt.try_matmul(grad_out), "Dense backward"));
        self.bias.grad.axpy(1.0, &grad_out.sum_cols());
        let wt = checked(self.weight.value.try_transpose(), "Dense backward");
        checked(grad_out.try_matmul(&wt), "Dense backward")
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visitor(&mut self.weight.value, &mut self.weight.grad);
        visitor(&mut self.bias.value, &mut self.bias.grad);
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        vec![in_dims[0], self.out_dim()]
    }

    fn workspace_bytes(&self, in_dims: &[usize]) -> u64 {
        // `add_row_broadcast` copies the matmul product, so product and
        // output coexist for one output-sized buffer.
        crate::cost::tensor_bytes(&self.out_dims(in_dims))
    }

    fn check_shape(&self, in_dims: &[usize]) -> Result<Vec<usize>, crate::ShapeError> {
        if in_dims.len() != 2 {
            return Err(crate::ShapeError::Rank {
                layer: self.name(),
                expected: 2,
                got: in_dims.to_vec(),
            });
        }
        if in_dims[1] != self.in_dim() {
            return Err(crate::ShapeError::Axis {
                layer: self.name(),
                axis: 1,
                expected: self.in_dim(),
                got: in_dims.to_vec(),
            });
        }
        Ok(self.out_dims(in_dims))
    }

    fn flops(&self, in_dims: &[usize]) -> u64 {
        // One multiply-add per weight element per batch row, plus the bias.
        let n = in_dims[0] as u64;
        n * (2 * self.in_dim() as u64 * self.out_dim() as u64 + self.out_dim() as u64)
    }

    fn param_count(&self) -> usize {
        self.weight.value.len() + self.bias.value.len()
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

/// Rectified linear unit layer.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.mask = match mode {
            Mode::Train => Some(input.map(|x| if x > 0.0 { 1.0 } else { 0.0 })),
            Mode::Eval => None,
        };
        input.relu()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Layer contract: backward() only runs after forward(). lint: allow(no-expect)
        grad_out * self.mask.as_ref().expect("backward() before forward()")
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }

    fn flops(&self, in_dims: &[usize]) -> u64 {
        in_dims.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Hyperbolic tangent layer.
#[derive(Debug, Default)]
pub struct TanhLayer {
    output: Option<Tensor>,
}

impl TanhLayer {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        TanhLayer { output: None }
    }
}

impl Layer for TanhLayer {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let out = input.tanh();
        self.output = match mode {
            Mode::Train => Some(out.clone()),
            Mode::Eval => None,
        };
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Layer contract: backward() only runs after forward(). lint: allow(no-expect)
        let y = self.output.as_ref().expect("backward() before forward()");
        grad_out * &y.map(|v| 1.0 - v * v)
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }

    fn flops(&self, in_dims: &[usize]) -> u64 {
        // tanh ≈ a handful of flops; count 4 per element.
        4 * in_dims.iter().product::<usize>() as u64
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

/// Flattens `[n, d1, d2, ...]` into `[n, d1*d2*...]`.
#[derive(Debug, Default)]
pub struct Flatten {
    in_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { in_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.in_dims = Some(input.dims().to_vec());
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        // [n, rest] has exactly the input's volume. lint: allow(no-expect)
        input.reshape([n, rest]).expect("flatten preserves volume")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Layer contract: backward() only runs after forward(). lint: allow(no-expect)
        let dims = self.in_dims.clone().expect("backward() before forward()");
        // The cached dims have the gradient's volume. lint: allow(no-expect)
        grad_out.reshape(dims).expect("unflatten preserves volume")
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        vec![in_dims[0], in_dims[1..].iter().product()]
    }

    fn check_shape(&self, in_dims: &[usize]) -> Result<Vec<usize>, crate::ShapeError> {
        if in_dims.len() < 2 {
            return Err(crate::ShapeError::Rank {
                layer: self.name(),
                expected: 2,
                got: in_dims.to_vec(),
            });
        }
        Ok(self.out_dims(in_dims))
    }

    fn flops(&self, _in_dims: &[usize]) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_hand_computed() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.5, -0.5], [2]).unwrap();
        let mut dense = Dense::from_parts(w, b);
        let x = Tensor::from_vec(vec![1.0, 1.0], [1, 2]).unwrap();
        let y = dense.forward(&x, Mode::Eval);
        // [1,1]·[[1,2],[3,4]] = [4,6]; +bias = [4.5, 5.5]
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn dense_backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut dense = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn([4, 3], 0.0, 1.0, &mut rng);
        let y = dense.forward(&x, Mode::Train);
        let gx = dense.backward(&Tensor::ones(y.shape().clone()));

        let eps = 1e-2;
        // dL/dx[0]
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = dense.forward(&xp, Mode::Train).sum();
            let lm = dense.forward(&xm, Mode::Train).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.data()[idx]).abs() < 1e-2, "dx[{idx}]");
        }
    }

    #[test]
    fn dense_weight_grad_accumulates() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dense = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones([1, 2]);
        let y = dense.forward(&x, Mode::Train);
        let g = Tensor::ones(y.shape().clone());
        dense.backward(&g);
        let mut first = Tensor::default();
        dense.visit_params(&mut |_, grad| {
            if first.len() == 1 {
                first = grad.clone();
            }
        });
        dense.forward(&x, Mode::Train);
        dense.backward(&g);
        let mut second = Tensor::default();
        dense.visit_params(&mut |_, grad| {
            if second.len() == 1 {
                second = grad.clone();
            }
        });
        assert!(
            second.max_abs_diff(&first.scale(2.0)) < 1e-6,
            "gradient should accumulate"
        );
        dense.zero_grad();
        dense.visit_params(&mut |_, grad| assert_eq!(grad.sum(), 0.0));
    }

    #[test]
    fn relu_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0], [1, 3]).unwrap();
        let y = relu.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0]);
        let gx = relu.backward(&Tensor::ones([1, 3]));
        assert_eq!(gx.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_gradient_uses_cached_output() {
        let mut layer = TanhLayer::new();
        let x = Tensor::from_vec(vec![0.5], [1, 1]).unwrap();
        layer.forward(&x, Mode::Train);
        let gx = layer.backward(&Tensor::ones([1, 1]));
        let expected = 1.0 - 0.5f32.tanh().powi(2);
        assert!((gx.item() - expected).abs() < 1e-6);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut flat = Flatten::new();
        let x = Tensor::arange(12).into_reshaped([2, 3, 2]).unwrap();
        let y = flat.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[2, 6]);
        let gx = flat.backward(&Tensor::ones([2, 6]));
        assert_eq!(gx.dims(), &[2, 3, 2]);
    }

    #[test]
    fn flops_and_out_dims() {
        let mut rng = StdRng::seed_from_u64(3);
        let dense = Dense::new(10, 5, &mut rng);
        assert_eq!(dense.out_dims(&[8, 10]), vec![8, 5]);
        assert_eq!(dense.flops(&[8, 10]), 8 * (2 * 10 * 5 + 5));
        assert_eq!(dense.param_count(), 55);
        assert_eq!(Relu::new().out_dims(&[2, 3]), vec![2, 3]);
    }
}
