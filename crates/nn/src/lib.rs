//! # teamnet-nn
//!
//! Neural-network layers, model builders, losses, optimizers and metrics
//! for the TeamNet (ICDCS 2019) reproduction — the stand-in for the
//! TensorFlow stack the paper ran on.
//!
//! Two model families from the paper are provided out of the box:
//!
//! * [`ModelSpec::mlp`] — the MLP-2 / MLP-4 / MLP-8 digit classifiers;
//! * [`ModelSpec::shake_shake`] — the SS-8 / SS-14 / SS-26 Shake-Shake
//!   CNNs for image classification.
//!
//! Every layer implements [`Layer`] with an exact hand-written backward
//! pass (verified against finite differences in the tests), and exposes
//! FLOP counts so the edge-device cost model in `teamnet-simnet` can price
//! a forward pass on simulated hardware.
//!
//! # Examples
//!
//! ```
//! use teamnet_nn::{softmax_cross_entropy, Layer, Mode, ModelSpec, Sgd};
//! use teamnet_tensor::Tensor;
//!
//! // Build the paper's 2-layer expert MLP and take one SGD step.
//! let mut model = ModelSpec::mlp(2, 32).build(0);
//! let mut opt = Sgd::with_momentum(0.1, 0.9);
//! let x = Tensor::zeros([4, 784]);
//! let labels = [0usize, 1, 2, 3];
//!
//! let logits = model.forward(&x, Mode::Train);
//! let out = softmax_cross_entropy(&logits, &labels);
//! model.zero_grad();
//! model.backward(&out.grad);
//! opt.step(&mut model);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv_layer;
pub mod cost;
mod layer;
mod loss;
mod metrics;
mod models;
mod norm;
mod optim;
mod sequential;
mod shake;
pub mod shape_check;
mod state;

pub use conv_layer::{AvgPool2d, Conv2d, GlobalAvgPool};
pub use cost::{expert_cost, tensor_bytes, CostNode, ExpertCost, LayerCost, WireModel};
pub use layer::{param_count, Dense, Flatten, Layer, Mode, Relu, TanhLayer};
pub use loss::{mse, softmax_cross_entropy, LossOutput};
pub use metrics::{accuracy, ConfusionMatrix};
pub use models::{with_flatten, ModelSpec};
pub use norm::BatchNorm2d;
pub use optim::{Adam, Sgd};
pub use sequential::{LayerProfile, Sequential};
pub use shake::ShakeShakeBlock;
pub use shape_check::{check_model, ShapeError};
pub use state::{
    load_state, state_bytes, state_from_bytes, state_to_bytes, state_vec, StateCodecError,
};
