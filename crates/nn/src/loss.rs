//! Loss functions.
//!
//! The paper's Algorithm 3 line 4 optimizes the cross-entropy
//! `Σ_c y log f(x; θᵢ)`; [`softmax_cross_entropy`] implements the fused
//! softmax + cross-entropy with its numerically exact gradient
//! `(softmax(logits) − onehot(y)) / n`.

use teamnet_tensor::Tensor;

/// Result of a fused softmax-cross-entropy evaluation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch (natural log).
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits, `[n, classes]`.
    pub grad: Tensor,
    /// Row-wise softmax probabilities, `[n, classes]`.
    pub probs: Tensor,
}

/// Mean softmax cross-entropy of `logits` (`[n, classes]`) against integer
/// `labels` (`len == n`), with gradient.
///
/// # Panics
///
/// Panics if shapes disagree or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    assert_eq!(logits.rank(), 2, "logits must be [n, classes]");
    let (n, classes) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "label count must match batch size");

    let probs = logits.softmax_rows();
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    let inv_n = 1.0 / n as f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let p = probs.at(&[r, label]).max(1e-12);
        loss -= p.ln();
        let row = grad.row_mut(r);
        row[label] -= 1.0;
        for g in row.iter_mut() {
            *g *= inv_n;
        }
    }
    LossOutput {
        loss: loss * inv_n,
        grad,
        probs,
    }
}

/// Mean squared error between `pred` and `target` with gradient
/// `2(pred − target)/n`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert!(
        pred.shape().same_as(target.shape()),
        "mse() requires equal shapes"
    );
    let n = pred.len() as f32;
    let diff = pred - target;
    let loss = diff.norm_sq() / n;
    (loss, diff.scale(2.0 / n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(vec![100.0, 0.0, 0.0, 0.0, 100.0, 0.0], [2, 3]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(out.loss < 1e-6, "loss {}", out.loss);
        assert!(out.grad.norm_sq() < 1e-6);
    }

    #[test]
    fn uniform_logits_loss_is_log_classes() {
        let logits = Tensor::zeros([4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.2, -0.3], [2, 3]).unwrap();
        let labels = [2usize, 0];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let num = (softmax_cross_entropy(&lp, &labels).loss
                - softmax_cross_entropy(&lm, &labels).loss)
                / (2.0 * eps);
            assert!(
                (num - out.grad.data()[idx]).abs() < 1e-3,
                "grad[{idx}]: numeric {num} vs analytic {}",
                out.grad.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3]).unwrap();
        let out = softmax_cross_entropy(&logits, &[1, 2]);
        for r in 0..2 {
            let s: f32 = out.grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn vanished_probability_is_clamped_to_1e_12() {
        // The true class's softmax probability underflows to exactly 0.0
        // in f32, so without the 1e-12 clamp the loss would be +inf and
        // poison every running average downstream.
        let logits = Tensor::from_vec(vec![-200.0, 200.0], [1, 2]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0]);
        assert_eq!(out.probs.at(&[0, 0]), 0.0, "probability must underflow");
        assert!(out.loss.is_finite(), "clamp must keep the loss finite");
        let expected = -(1e-12f32).ln(); // ≈ 27.631
        assert!(
            (out.loss - expected).abs() < 1e-4,
            "loss {} should pin the 1e-12 clamp ({expected})",
            out.loss
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        softmax_cross_entropy(&Tensor::zeros([1, 3]), &[3]);
    }

    #[test]
    fn mse_basics() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let target = Tensor::from_vec(vec![0.0, 0.0], [2]).unwrap();
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }
}
