//! Model builders matching the architectures evaluated in the paper:
//! `MLP-k` for handwritten-digit recognition and `SS-k` (Shake-Shake CNNs)
//! for image classification.
//!
//! A [`ModelSpec`] is a small serializable description that every node of an
//! edge cluster can turn into an identical network from the same seed —
//! this is how expert models are "deployed" in the distributed runtime.

use crate::conv_layer::{Conv2d, GlobalAvgPool};
use crate::layer::{Dense, Flatten, Relu};
use crate::norm::BatchNorm2d;
use crate::sequential::Sequential;
use crate::shake::ShakeShakeBlock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Serializable description of a network architecture.
///
/// Building the same spec with the same seed yields bit-identical initial
/// weights on every machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// A multilayer perceptron with `layers` dense layers (the paper's
    /// MLP-2 / MLP-4 / MLP-8 family).
    Mlp {
        /// Flattened input feature count (e.g. 784 for 28×28 digits).
        input_dim: usize,
        /// Width of every hidden layer.
        hidden_dim: usize,
        /// Number of dense (weight) layers; must be ≥ 1.
        layers: usize,
        /// Number of output classes.
        classes: usize,
    },
    /// A Shake-Shake CNN of depth `6n+2` (the paper's SS-8 / SS-14 / SS-26
    /// family: n = 1, 2, 4).
    ShakeShake {
        /// Residual blocks per stage (depth = 6n+2).
        blocks_per_stage: usize,
        /// Channel count of the first stage (doubled at each of the two
        /// subsequent stages).
        base_channels: usize,
        /// Input image channels (3 for CIFAR-like data).
        in_channels: usize,
        /// Input image side length.
        image_hw: usize,
        /// Number of output classes.
        classes: usize,
    },
}

impl ModelSpec {
    /// The paper's MLP-k on 28×28 grayscale digits.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn mlp(layers: usize, hidden_dim: usize) -> Self {
        assert!(layers >= 1, "an MLP needs at least one layer");
        ModelSpec::Mlp {
            input_dim: 28 * 28,
            hidden_dim,
            layers,
            classes: 10,
        }
    }

    /// The paper's SS-k on 32×32 RGB images. `depth` must be of the form
    /// `6n+2` (8, 14, 26, ...).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is not `6n+2` for a positive `n`.
    pub fn shake_shake(depth: usize, base_channels: usize) -> Self {
        assert!(
            depth >= 8 && (depth - 2).is_multiple_of(6),
            "Shake-Shake depth must be 6n+2 (got {depth})"
        );
        ModelSpec::ShakeShake {
            blocks_per_stage: (depth - 2) / 6,
            base_channels,
            in_channels: 3,
            image_hw: 32,
            classes: 10,
        }
    }

    /// Nominal layer depth of the architecture (the number the paper's
    /// model names carry: MLP-8, SS-26, ...).
    pub fn depth(&self) -> usize {
        match self {
            ModelSpec::Mlp { layers, .. } => *layers,
            ModelSpec::ShakeShake {
                blocks_per_stage, ..
            } => 6 * blocks_per_stage + 2,
        }
    }

    /// The input dimensions (without batch axis) this model expects.
    pub fn input_dims(&self) -> Vec<usize> {
        match self {
            ModelSpec::Mlp { input_dim, .. } => vec![*input_dim],
            ModelSpec::ShakeShake {
                in_channels,
                image_hw,
                ..
            } => {
                vec![*in_channels, *image_hw, *image_hw]
            }
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        match self {
            ModelSpec::Mlp { classes, .. } | ModelSpec::ShakeShake { classes, .. } => *classes,
        }
    }

    /// Instantiates the network with weights drawn deterministically from
    /// `seed`.
    pub fn build(&self, seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            ModelSpec::Mlp {
                input_dim,
                hidden_dim,
                layers,
                classes,
            } => {
                let mut net = Sequential::new();
                if layers == 1 {
                    net.push(Dense::new(input_dim, classes, &mut rng));
                    return net;
                }
                net.push(Dense::new(input_dim, hidden_dim, &mut rng));
                net.push(Relu::new());
                for _ in 0..layers.saturating_sub(2) {
                    net.push(Dense::new(hidden_dim, hidden_dim, &mut rng));
                    net.push(Relu::new());
                }
                net.push(Dense::new(hidden_dim, classes, &mut rng));
                net
            }
            ModelSpec::ShakeShake {
                blocks_per_stage,
                base_channels,
                in_channels,
                classes,
                ..
            } => {
                let mut net = Sequential::new();
                // Stem.
                net.push(Conv2d::new(in_channels, base_channels, 3, 1, 1, &mut rng));
                net.push(BatchNorm2d::new(base_channels));
                net.push(Relu::new());
                // Three stages with channel doubling and spatial halving.
                let mut channels = base_channels;
                for stage in 0..3 {
                    for block in 0..blocks_per_stage {
                        let (in_ch, stride) = if stage > 0 && block == 0 {
                            (channels / 2, 2)
                        } else {
                            (channels, 1)
                        };
                        net.push(ShakeShakeBlock::new(in_ch, channels, stride, &mut rng));
                    }
                    if stage < 2 {
                        channels *= 2;
                    }
                }
                net.push(GlobalAvgPool::new());
                net.push(Dense::new(channels, classes, &mut rng));
                net
            }
        }
    }

    /// Builds the network and statically validates its layer wiring against
    /// [`ModelSpec::input_dims`] before returning it.
    ///
    /// The `cargo xtask check` auditor calls this for every paper
    /// configuration, so a mis-wired builder fails CI at construction time
    /// rather than on the first forward pass.
    ///
    /// # Errors
    ///
    /// Returns the [`crate::ShapeError`] naming the first mis-wired layer.
    pub fn build_checked(&self, seed: u64) -> Result<Sequential, crate::ShapeError> {
        let net = self.build(seed);
        let out = crate::shape_check::check_model(&net, &self.input_dims())?;
        debug_assert_eq!(out, vec![self.classes()]);
        Ok(net)
    }
}

/// Builds a flattening front end plus the model, for image tensors fed to
/// MLPs: `[n, c, h, w] → [n, c*h*w] → logits`.
pub fn with_flatten(spec: &ModelSpec, seed: u64) -> Sequential {
    let mut net = Sequential::new();
    net.push(Flatten::new());
    net.push_boxed(Box::new(spec.build(seed)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use teamnet_tensor::Tensor;

    #[test]
    fn mlp_depth_counting_matches_paper_names() {
        assert_eq!(ModelSpec::mlp(8, 128).depth(), 8);
        assert_eq!(ModelSpec::mlp(2, 128).depth(), 2);
        assert_eq!(ModelSpec::shake_shake(26, 16).depth(), 26);
        assert_eq!(ModelSpec::shake_shake(14, 16).depth(), 14);
        assert_eq!(ModelSpec::shake_shake(8, 16).depth(), 8);
    }

    #[test]
    #[should_panic(expected = "6n+2")]
    fn shake_shake_rejects_bad_depth() {
        ModelSpec::shake_shake(10, 16);
    }

    #[test]
    fn mlp_output_shape() {
        let spec = ModelSpec::mlp(4, 32);
        let mut net = spec.build(0);
        let x = Tensor::zeros([3, 784]);
        assert_eq!(net.forward(&x, Mode::Eval).dims(), &[3, 10]);
    }

    #[test]
    fn single_layer_mlp_is_logistic_regression() {
        let spec = ModelSpec::Mlp {
            input_dim: 4,
            hidden_dim: 99,
            layers: 1,
            classes: 3,
        };
        let net = spec.build(0);
        assert_eq!(net.param_count(), 4 * 3 + 3);
    }

    #[test]
    fn same_seed_same_weights() {
        let spec = ModelSpec::mlp(4, 32);
        let mut a = spec.build(42);
        let mut b = spec.build(42);
        let x = Tensor::ones([1, 784]);
        assert_eq!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
        let mut c = spec.build(43);
        assert_ne!(a.forward(&x, Mode::Eval), c.forward(&x, Mode::Eval));
    }

    #[test]
    fn shake_shake_builds_and_runs() {
        let spec = ModelSpec::ShakeShake {
            blocks_per_stage: 1,
            base_channels: 4,
            in_channels: 3,
            image_hw: 16,
            classes: 10,
        };
        let mut net = spec.build(0);
        let x = Tensor::zeros([2, 3, 16, 16]);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[2, 10]);
        // Stage widths: 4 → 8 → 16; classifier input must be 16.
        assert_eq!(net.out_dims(&[2, 3, 16, 16]), vec![2, 10]);
    }

    #[test]
    fn deeper_models_cost_more() {
        let shallow = ModelSpec::shake_shake(8, 8).build(0);
        let deep = ModelSpec::shake_shake(26, 8).build(0);
        let dims = [1usize, 3, 32, 32];
        assert!(deep.flops(&dims) > 2 * shallow.flops(&dims));
        assert!(deep.param_count() > 2 * shallow.param_count());
    }

    #[test]
    fn with_flatten_accepts_images() {
        let spec = ModelSpec::mlp(2, 16);
        let mut net = with_flatten(&spec, 0);
        let x = Tensor::zeros([2, 1, 28, 28]);
        assert_eq!(net.forward(&x, Mode::Eval).dims(), &[2, 10]);
    }

    #[test]
    fn every_paper_configuration_passes_the_shape_checker() {
        for spec in [
            ModelSpec::mlp(2, 128),
            ModelSpec::mlp(4, 128),
            ModelSpec::mlp(8, 128),
            ModelSpec::shake_shake(8, 16),
            ModelSpec::shake_shake(14, 16),
            ModelSpec::shake_shake(26, 16),
        ] {
            spec.build_checked(0)
                .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        }
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = ModelSpec::shake_shake(14, 32);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
