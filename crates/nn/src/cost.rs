//! Static per-expert resource certification: peak live activation bytes
//! via liveness analysis, FLOPs, parameter bytes and bytes-on-wire.
//!
//! TeamNet places NN experts on memory-starved edge devices, so the
//! scheduler needs to know — *before* deployment — whether an expert fits.
//! This module prices an eval-mode forward pass of a [`Sequential`]
//! statically, using the same dimensions the shape checker validates.
//!
//! # The liveness model
//!
//! Every [`crate::Layer`] contributes a [`CostNode`] describing the
//! tensors its eval forward allocates. The tree is *lowered* to a linear
//! schedule of alloc/free events that mirrors the real execution order
//! (`Sequential::forward` drops each intermediate after its consumer
//! finishes; [`crate::ShakeShakeBlock`] drops each branch output at its
//! last `axpy`). Peak memory is the maximum running live-byte sum over
//! that schedule — a genuine liveness analysis, not a running total.
//! Shake-Shake blocks are the forcing case: their two branch outputs and
//! the shortcut coexist at the join point, so a per-layer maximum would
//! under-count and a sum over all intermediates would grossly over-count.
//!
//! A leaf lowers to `alloc workspace → alloc output → free workspace`,
//! modelling ops (Dense, Conv2d) whose scratch buffers coexist with the
//! output. The node's own *input* is excluded — it is owned by the caller,
//! which keeps it live for the node's whole execution and emits the free —
//! so [`expert_cost`] adds the expert's input tensor on top.
//!
//! The static number is certified against reality by the allocation
//! counters in `teamnet-tensor` ([`teamnet_tensor::MemScope`]): CI runs an
//! instrumented forward for every paper-grid model and asserts
//! `static ≥ observed` within a documented slack (DESIGN.md §13).

use crate::layer::Layer;
use crate::sequential::Sequential;
use serde::Serialize;

/// Bytes per tensor element; the whole stack computes in FP32.
pub const BYTES_PER_F32: u64 = 4;

/// Bytes of a dense FP32 tensor with the given dimensions.
pub fn tensor_bytes(dims: &[usize]) -> u64 {
    dims.iter().product::<usize>() as u64 * BYTES_PER_F32
}

/// A node in the static allocation graph of one eval-mode forward pass.
///
/// Built by [`crate::Layer::cost_node`]; containers override that hook to
/// expose their internal tensor graph so join points are priced by real
/// liveness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostNode {
    /// A single op: allocates `workspace_bytes` of scratch, then its
    /// output, then releases the scratch.
    Leaf {
        /// Layer type name, for diagnostics.
        name: &'static str,
        /// Bytes of the (caller-owned) input tensor.
        in_bytes: u64,
        /// Bytes of the output tensor.
        out_bytes: u64,
        /// Peak scratch bytes coexisting with the output.
        workspace_bytes: u64,
    },
    /// An ordered pipeline; stage `k`'s output is freed once stage `k+1`
    /// completes.
    Chain {
        /// Bytes of the chain's input (fallback output for empty chains).
        in_bytes: u64,
        /// The stages, in execution order.
        children: Vec<CostNode>,
    },
    /// A two-branch residual join: both branches and the shortcut read the
    /// same input; the three outputs coexist at the merge, then the branch
    /// buffers die at their last `axpy`.
    Branch2 {
        /// First residual branch.
        branch1: Box<CostNode>,
        /// Second residual branch.
        branch2: Box<CostNode>,
        /// Projection shortcut, or `None` for identity (which clones the
        /// input into the accumulator).
        skip: Option<Box<CostNode>>,
        /// Bytes of the joined output tensor.
        out_bytes: u64,
    },
}

/// One step of the lowered allocation schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostEvent {
    /// A tensor of this many bytes becomes live.
    Alloc(u64),
    /// A tensor of this many bytes is released.
    Free(u64),
}

impl CostNode {
    /// Leaf constructor used by the default [`crate::Layer::cost_node`].
    pub fn leaf(
        name: &'static str,
        in_dims: &[usize],
        out_dims: &[usize],
        workspace_bytes: u64,
    ) -> CostNode {
        CostNode::Leaf {
            name,
            in_bytes: tensor_bytes(in_dims),
            out_bytes: tensor_bytes(out_dims),
            workspace_bytes,
        }
    }

    /// Chain constructor.
    pub fn chain(in_dims: &[usize], children: Vec<CostNode>) -> CostNode {
        CostNode::Chain {
            in_bytes: tensor_bytes(in_dims),
            children,
        }
    }

    /// Two-branch join constructor.
    pub fn branch2(
        branch1: CostNode,
        branch2: CostNode,
        skip: Option<CostNode>,
        out_bytes: u64,
    ) -> CostNode {
        CostNode::Branch2 {
            branch1: Box::new(branch1),
            branch2: Box::new(branch2),
            skip: skip.map(Box::new),
            out_bytes,
        }
    }

    /// Bytes of the node's output tensor.
    pub fn out_bytes(&self) -> u64 {
        match self {
            CostNode::Leaf { out_bytes, .. } | CostNode::Branch2 { out_bytes, .. } => *out_bytes,
            CostNode::Chain { in_bytes, children } => {
                children.last().map_or(*in_bytes, CostNode::out_bytes)
            }
        }
    }

    /// Lowers the node to its alloc/free schedule, appending to `events`,
    /// and returns the bytes of the output left live. The node's input is
    /// the caller's responsibility: it stays live throughout and its free
    /// (if any) is emitted by the caller.
    pub fn lower(&self, events: &mut Vec<CostEvent>) -> u64 {
        match self {
            CostNode::Leaf {
                out_bytes,
                workspace_bytes,
                ..
            } => {
                events.push(CostEvent::Alloc(*workspace_bytes));
                events.push(CostEvent::Alloc(*out_bytes));
                events.push(CostEvent::Free(*workspace_bytes));
                *out_bytes
            }
            CostNode::Chain { in_bytes, children } => {
                let mut prev: Option<u64> = None;
                for child in children {
                    let out = child.lower(events);
                    if let Some(bytes) = prev {
                        events.push(CostEvent::Free(bytes));
                    }
                    prev = Some(out);
                }
                match prev {
                    Some(out) => out,
                    None => {
                        // Empty pipeline: forward clones its input.
                        events.push(CostEvent::Alloc(*in_bytes));
                        *in_bytes
                    }
                }
            }
            CostNode::Branch2 {
                branch1,
                branch2,
                skip,
                out_bytes,
            } => {
                let b1 = branch1.lower(events);
                let b2 = branch2.lower(events);
                match skip {
                    Some(skip) => {
                        skip.lower(events);
                    }
                    // Identity shortcut: the accumulator starts as a clone
                    // of the block input.
                    None => events.push(CostEvent::Alloc(*out_bytes)),
                }
                // Each branch output dies at its axpy into the accumulator;
                // the final ReLU is in place.
                events.push(CostEvent::Free(b1));
                events.push(CostEvent::Free(b2));
                *out_bytes
            }
        }
    }

    /// Peak live bytes over the node's execution, *excluding* its
    /// caller-owned input tensor.
    pub fn peak_excluding_input(&self) -> u64 {
        let mut events = Vec::new();
        self.lower(&mut events);
        peak_of_schedule(&events)
    }
}

/// Maximum running live-byte sum over an alloc/free schedule.
pub fn peak_of_schedule(events: &[CostEvent]) -> u64 {
    let mut live = 0u64;
    let mut peak = 0u64;
    for event in events {
        match *event {
            CostEvent::Alloc(bytes) => {
                live += bytes;
                peak = peak.max(live);
            }
            CostEvent::Free(bytes) => live = live.saturating_sub(bytes),
        }
    }
    peak
}

/// Framing overhead of the transport, mirroring `teamnet-net`'s codec
/// (frame header `src|tag|len`, then the envelope header, then the f32s
/// payload `rank|dims|data`). Kept as plain numbers so `teamnet-nn` does
/// not depend on the net crate; a cross-check test in the workspace
/// asserts these against the real encoder's byte counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireModel {
    /// Bytes of the outer frame header (`src:u32|tag:u32|len:u32`).
    pub frame_header_bytes: u64,
    /// Bytes of the envelope header (`version|kind|reserved|round|crc`).
    pub envelope_header_bytes: u64,
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel {
            frame_header_bytes: 12,
            envelope_header_bytes: 16,
        }
    }
}

impl WireModel {
    /// Total bytes on the wire for one framed, enveloped f32 tensor:
    /// headers plus `rank:u32`, one `u32` per dimension, and the FP32
    /// payload.
    pub fn framed_tensor_bytes(&self, dims: &[usize]) -> u64 {
        self.frame_header_bytes
            + self.envelope_header_bytes
            + 4
            + 4 * dims.len() as u64
            + tensor_bytes(dims)
    }
}

/// Static cost row for one top-level layer of an expert pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LayerCost {
    /// Layer type name.
    pub name: &'static str,
    /// Forward FLOPs at the certified batch size.
    pub flops: u64,
    /// Parameter bytes (FP32).
    pub param_bytes: u64,
    /// Input tensor bytes.
    pub in_bytes: u64,
    /// Output tensor bytes.
    pub out_bytes: u64,
    /// Peak live activation bytes during this layer's forward, including
    /// its caller-held input.
    pub peak_bytes: u64,
}

/// The full static resource certificate of one expert model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExpertCost {
    /// Batch size the certificate was computed at.
    pub batch: usize,
    /// Trainable parameter count.
    pub params: usize,
    /// Parameter bytes (FP32).
    pub param_bytes: u64,
    /// Forward FLOPs for the whole pipeline.
    pub flops: u64,
    /// Input tensor bytes (batch included).
    pub input_bytes: u64,
    /// Output tensor bytes (batch included).
    pub output_bytes: u64,
    /// Peak live activation bytes over the whole eval forward, including
    /// the caller-held input tensor.
    pub peak_activation_bytes: u64,
    /// Serialized bytes on the wire for the framed input tensor.
    pub wire_input_bytes: u64,
    /// Serialized bytes on the wire for the framed `[batch, 2]` result
    /// matrix (argmax + confidence per row, `encode_results` format).
    pub wire_result_bytes: u64,
    /// Per-top-level-layer rows, in execution order.
    pub layers: Vec<LayerCost>,
}

impl ExpertCost {
    /// Bytes that must be resident to run the expert: parameters plus the
    /// peak of live activations. This is the number a device admission
    /// check compares against its capacity.
    pub fn required_resident_bytes(&self) -> u64 {
        self.param_bytes + self.peak_activation_bytes
    }
}

/// Computes the static resource certificate of `net` for inputs of shape
/// `in_dims` (batch axis included), pricing wire traffic with `wire`.
///
/// # Panics
///
/// Panics if the pipeline's layer wiring is invalid — run the shape
/// checker ([`crate::check_model`] / `ModelSpec::build_checked`) first.
pub fn expert_cost(net: &Sequential, in_dims: &[usize], wire: &WireModel) -> ExpertCost {
    let input_bytes = tensor_bytes(in_dims);
    let mut dims = in_dims.to_vec();
    let mut layers = Vec::with_capacity(net.children().len());
    for layer in net.children() {
        let out_dims = layer.out_dims(&dims);
        let in_bytes = tensor_bytes(&dims);
        layers.push(LayerCost {
            name: layer.name(),
            flops: layer.flops(&dims),
            param_bytes: layer.param_count() as u64 * BYTES_PER_F32,
            in_bytes,
            out_bytes: tensor_bytes(&out_dims),
            peak_bytes: in_bytes + layer.cost_node(&dims).peak_excluding_input(),
        });
        dims = out_dims;
    }
    let batch = in_dims.first().copied().unwrap_or(1);
    ExpertCost {
        batch,
        params: net.param_count(),
        param_bytes: net.param_count() as u64 * BYTES_PER_F32,
        flops: net.flops(in_dims),
        input_bytes,
        output_bytes: tensor_bytes(&dims),
        peak_activation_bytes: input_bytes + net.cost_node(in_dims).peak_excluding_input(),
        wire_input_bytes: wire.framed_tensor_bytes(in_dims),
        wire_result_bytes: wire.framed_tensor_bytes(&[batch, 2]),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Mode, Relu};
    use crate::models::ModelSpec;
    use crate::shake::ShakeShakeBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use teamnet_tensor::{force_sequential_scope, MemScope, Tensor};

    #[test]
    fn leaf_schedule_prices_workspace_and_output_together() {
        let leaf = CostNode::leaf("Dense", &[1, 4], &[1, 8], 32);
        // alloc ws(32) + alloc out(32) coexist.
        assert_eq!(leaf.peak_excluding_input(), 64);
        assert_eq!(leaf.out_bytes(), 32);
    }

    #[test]
    fn chain_frees_each_intermediate_after_its_consumer() {
        // Three relu-like stages 100 → 60 → 20 bytes of output, no scratch:
        // peak is out_k + out_{k+1} at the handoff, not the sum of all.
        let chain = CostNode::Chain {
            in_bytes: 200,
            children: vec![
                CostNode::Leaf {
                    name: "a",
                    in_bytes: 200,
                    out_bytes: 100,
                    workspace_bytes: 0,
                },
                CostNode::Leaf {
                    name: "b",
                    in_bytes: 100,
                    out_bytes: 60,
                    workspace_bytes: 0,
                },
                CostNode::Leaf {
                    name: "c",
                    in_bytes: 60,
                    out_bytes: 20,
                    workspace_bytes: 0,
                },
            ],
        };
        assert_eq!(chain.peak_excluding_input(), 160);
        assert_eq!(chain.out_bytes(), 20);
    }

    #[test]
    fn branch_join_counts_coexisting_outputs() {
        let leaf = |out: u64| CostNode::Leaf {
            name: "b",
            in_bytes: 40,
            out_bytes: out,
            workspace_bytes: 0,
        };
        // Identity skip: both branch outputs (40 each) plus the cloned
        // accumulator coexist at the join.
        let node = CostNode::branch2(leaf(40), leaf(40), None, 40);
        assert_eq!(node.peak_excluding_input(), 120);
        // A running sum that never frees would claim the same 120 here —
        // but with a projection shortcut chain the liveness answer drops
        // the already-freed conv scratch while the running sum keeps it.
        let proj = CostNode::chain(&[10], vec![leaf(40), leaf(40)]);
        let node = CostNode::branch2(leaf(40), leaf(40), Some(proj), 40);
        assert_eq!(node.peak_excluding_input(), 160);
    }

    #[test]
    fn empty_chain_clones_its_input() {
        let chain = CostNode::chain(&[2, 3], Vec::new());
        assert_eq!(chain.peak_excluding_input(), 24);
        assert_eq!(chain.out_bytes(), 24);
    }

    #[test]
    fn wire_model_matches_codec_layout() {
        let wire = WireModel::default();
        // 12 frame + 16 envelope + 4 rank + 2 dims * 4 + 6 floats * 4.
        assert_eq!(wire.framed_tensor_bytes(&[2, 3]), 12 + 16 + 4 + 8 + 24);
    }

    /// The certified peak must upper-bound a real instrumented eval
    /// forward — exactly the honesty contract CI enforces on the grid.
    fn assert_static_bounds_observed(net: &mut Sequential, in_dims: &[usize]) {
        let cost = expert_cost(net, in_dims, &WireModel::default());
        let observed = force_sequential_scope(|| {
            let scope = MemScope::begin();
            let x = Tensor::zeros(in_dims.to_vec());
            let y = net.forward(&x, Mode::Eval);
            let stats = scope.stats();
            drop((x, y));
            stats
        });
        assert!(
            cost.peak_activation_bytes >= observed.peak_bytes,
            "static {} < observed {} for dims {:?}",
            cost.peak_activation_bytes,
            observed.peak_bytes,
            in_dims
        );
    }

    #[test]
    fn static_peak_bounds_observed_mlp() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Dense::new(12, 32, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(32, 5, &mut rng));
        assert_static_bounds_observed(&mut net, &[3, 12]);
    }

    #[test]
    fn static_peak_bounds_observed_shake_block() {
        let mut rng = StdRng::seed_from_u64(2);
        for (in_ch, out_ch, stride) in [(4, 4, 1), (4, 8, 2)] {
            let mut net = Sequential::new();
            net.push(ShakeShakeBlock::new(in_ch, out_ch, stride, &mut rng));
            assert_static_bounds_observed(&mut net, &[2, in_ch, 8, 8]);
        }
    }

    #[test]
    fn static_peak_is_tight_for_small_shake_cnn() {
        // The bound must not be a wild over-estimate either: for a small
        // SS model the slack stays under the documented factor.
        let spec = ModelSpec::ShakeShake {
            blocks_per_stage: 1,
            base_channels: 4,
            in_channels: 3,
            image_hw: 16,
            classes: 10,
        };
        let mut net = spec.build_checked(0).unwrap_or_else(|e| panic!("{e}"));
        let dims = [1usize, 3, 16, 16];
        let cost = expert_cost(&net, &dims, &WireModel::default());
        let observed = force_sequential_scope(|| {
            let scope = MemScope::begin();
            let x = Tensor::zeros(dims.to_vec());
            let y = net.forward(&x, Mode::Eval);
            let stats = scope.stats();
            drop((x, y));
            stats
        });
        assert!(cost.peak_activation_bytes >= observed.peak_bytes);
        assert!(
            cost.peak_activation_bytes <= 2 * observed.peak_bytes,
            "static {} should be within 2x of observed {}",
            cost.peak_activation_bytes,
            observed.peak_bytes
        );
    }

    #[test]
    fn expert_cost_rows_are_consistent() {
        let spec = ModelSpec::mlp(4, 16);
        let net = spec.build_checked(0).unwrap_or_else(|e| panic!("{e}"));
        let dims = [1usize, 784];
        let cost = expert_cost(&net, &dims, &WireModel::default());
        assert_eq!(cost.layers.len(), 7); // 4 Dense + 3 Relu
        assert_eq!(cost.flops, cost.layers.iter().map(|l| l.flops).sum());
        assert_eq!(
            cost.param_bytes,
            cost.layers.iter().map(|l| l.param_bytes).sum::<u64>()
        );
        // Row chaining: each row's input is the previous row's output.
        for pair in cost.layers.windows(2) {
            assert_eq!(pair[0].out_bytes, pair[1].in_bytes);
        }
        // The pipeline peak is at least every per-layer peak.
        for row in &cost.layers {
            assert!(cost.peak_activation_bytes >= row.peak_bytes - row.in_bytes);
        }
        assert_eq!(cost.input_bytes, 784 * 4);
        assert_eq!(cost.output_bytes, 10 * 4);
        assert!(cost.required_resident_bytes() > cost.param_bytes);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::conv_layer::{AvgPool2d, Conv2d, GlobalAvgPool};
    use crate::layer::{Dense, Flatten, Mode, Relu, TanhLayer};
    use crate::norm::BatchNorm2d;
    use crate::sequential::Sequential;
    use crate::shake::ShakeShakeBlock;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};
    use teamnet_tensor::{force_sequential_scope, MemScope, Tensor};

    /// Peak tensor bytes observed during one instrumented eval forward,
    /// with the input tensor allocated inside the scope (the certificate
    /// counts it) and kernels pinned to the sequential reference schedule.
    fn observed_eval_peak(net: &mut Sequential, full_dims: &[usize]) -> u64 {
        force_sequential_scope(|| {
            let scope = MemScope::begin();
            let x = Tensor::zeros(full_dims.to_vec());
            let y = net.forward(&x, Mode::Eval);
            let stats = scope.stats();
            drop((x, y));
            stats.peak_bytes
        })
    }

    /// A random but well-formed MLP-family stack over `[input]` vectors.
    fn random_dense_stack(seed: u64, input: usize, depth: usize) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        let mut width = input;
        for _ in 0..depth {
            match rng.gen_range(0..4) {
                0 | 1 => {
                    let out = rng.gen_range(1..16);
                    net.push(Dense::new(width, out, &mut rng));
                    width = out;
                }
                2 => {
                    net.push(Relu::new());
                }
                _ => {
                    net.push(TanhLayer::new());
                }
            }
        }
        net
    }

    /// A random but well-formed conv/norm/pool stack over `[c, hw, hw]`
    /// images.
    fn random_conv_stack(seed: u64, channels: usize) -> (Sequential, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hw = 2 * rng.gen_range(2..5usize);
        let mut net = Sequential::new();
        let mut c = channels;
        for _ in 0..rng.gen_range(1..3usize) {
            let oc = rng.gen_range(1..6);
            net.push(Conv2d::new(c, oc, 3, 1, 1, &mut rng));
            c = oc;
            if rng.gen_bool(0.5) {
                net.push(BatchNorm2d::new(c));
            }
            net.push(Relu::new());
        }
        if rng.gen_bool(0.5) {
            net.push(AvgPool2d::new(2));
        }
        if rng.gen_bool(0.5) {
            net.push(GlobalAvgPool::new());
        } else {
            net.push(Flatten::new());
        }
        (net, vec![channels, hw, hw])
    }

    /// A random stack of Shake-Shake blocks — the join-point forcing case
    /// for the liveness analysis.
    fn random_shake_stack(seed: u64, channels: usize) -> (Sequential, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hw = 4 * rng.gen_range(1..3usize);
        let mut net = Sequential::new();
        let mut c = channels;
        for _ in 0..rng.gen_range(1..3usize) {
            let oc = rng.gen_range(1..6usize);
            net.push(ShakeShakeBlock::new(c, oc, 1, &mut rng));
            c = oc;
        }
        (net, vec![channels, hw, hw])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The certified peak upper-bounds a real instrumented eval
        /// forward for every random dense stack and batch size.
        #[test]
        fn static_peak_bounds_observed_on_dense_stacks(
            seed in 0u64..10_000,
            input in 1usize..24,
            depth in 1usize..7,
            n in 1usize..4,
        ) {
            let mut net = random_dense_stack(seed, input, depth);
            let cost = expert_cost(&net, &[n, input], &WireModel::default());
            let observed = observed_eval_peak(&mut net, &[n, input]);
            prop_assert!(
                cost.peak_activation_bytes >= observed,
                "static {} < observed {}", cost.peak_activation_bytes, observed
            );
        }

        /// Same bound over conv/norm/pool stacks.
        #[test]
        fn static_peak_bounds_observed_on_conv_stacks(
            seed in 0u64..10_000,
            channels in 1usize..4,
            n in 1usize..3,
        ) {
            let (mut net, in_dims) = random_conv_stack(seed, channels);
            let mut full = vec![n];
            full.extend(in_dims.iter().copied());
            let cost = expert_cost(&net, &full, &WireModel::default());
            let observed = observed_eval_peak(&mut net, &full);
            prop_assert!(
                cost.peak_activation_bytes >= observed,
                "static {} < observed {}", cost.peak_activation_bytes, observed
            );
        }

        /// Same bound over Shake-Shake join points, where a per-layer max
        /// would under-count the coexisting branch buffers.
        #[test]
        fn static_peak_bounds_observed_on_shake_stacks(
            seed in 0u64..10_000,
            channels in 1usize..4,
            n in 1usize..3,
        ) {
            let (mut net, in_dims) = random_shake_stack(seed, channels);
            let mut full = vec![n];
            full.extend(in_dims.iter().copied());
            let cost = expert_cost(&net, &full, &WireModel::default());
            let observed = observed_eval_peak(&mut net, &full);
            prop_assert!(
                cost.peak_activation_bytes >= observed,
                "static {} < observed {}", cost.peak_activation_bytes, observed
            );
        }

        /// The serialized certificate is byte-stable: two independent
        /// computations render to identical JSON.
        #[test]
        fn certificate_serialization_is_byte_stable(
            seed in 0u64..10_000,
            input in 1usize..24,
            depth in 1usize..7,
        ) {
            let net = random_dense_stack(seed, input, depth);
            let again = random_dense_stack(seed, input, depth);
            let a = expert_cost(&net, &[1, input], &WireModel::default());
            let b = expert_cost(&again, &[1, input], &WireModel::default());
            let render = |c: &ExpertCost| serde_json::to_string(c).unwrap_or_default();
            prop_assert!(!render(&a).is_empty());
            prop_assert_eq!(render(&a), render(&b));
        }
    }
}
