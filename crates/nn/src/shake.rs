//! Shake-Shake regularized residual blocks (Gastaldi, 2017), the CNN
//! architecture the paper trains on CIFAR-10 ("CNN with the Shake-Shake
//! regularization", Section VI-A).
//!
//! A block computes `relu(skip(x) + α·branch₁(x) + (1−α)·branch₂(x))` with a
//! fresh `α ~ U(0,1)` per training forward pass and an *independent*
//! `β ~ U(0,1)` replacing `α` in the backward pass (the "shake-shake" that
//! gives the method its name). At evaluation time both coefficients are
//! fixed to ½, making inference deterministic.
//!
//! The two-branch structure is also what the paper's MPI-Branch baseline
//! splits across two edge devices, so the branches are exposed via
//! [`ShakeShakeBlock::branch_flops`] for the partition planner.

use crate::conv_layer::Conv2d;
use crate::cost::{tensor_bytes, CostNode};
use crate::layer::{Layer, Mode};
use crate::norm::BatchNorm2d;
use crate::sequential::Sequential;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teamnet_tensor::Tensor;

/// A two-branch residual block with Shake-Shake regularization.
pub struct ShakeShakeBlock {
    branch1: Sequential,
    branch2: Sequential,
    skip: Option<Sequential>,
    relu_mask: Option<Tensor>,
    alpha: f32,
    last_mode: Mode,
    rng: StdRng,
}

fn branch(
    in_channels: usize,
    out_channels: usize,
    stride: usize,
    rng: &mut impl Rng,
) -> Sequential {
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(in_channels, out_channels, 3, stride, 1, rng));
    seq.push(BatchNorm2d::new(out_channels));
    seq.push(crate::layer::Relu::new());
    seq.push(Conv2d::new(out_channels, out_channels, 3, 1, 1, rng));
    seq.push(BatchNorm2d::new(out_channels));
    seq
}

impl ShakeShakeBlock {
    /// Creates a block mapping `in_channels → out_channels` feature maps,
    /// optionally downsampling spatially by `stride`.
    ///
    /// A learnable 1×1 projection shortcut is inserted automatically when
    /// the channel count or spatial size changes.
    pub fn new(in_channels: usize, out_channels: usize, stride: usize, rng: &mut impl Rng) -> Self {
        let skip = if in_channels != out_channels || stride != 1 {
            let mut s = Sequential::new();
            s.push(Conv2d::new(in_channels, out_channels, 1, stride, 0, rng));
            s.push(BatchNorm2d::new(out_channels));
            Some(s)
        } else {
            None
        };
        ShakeShakeBlock {
            branch1: branch(in_channels, out_channels, stride, rng),
            branch2: branch(in_channels, out_channels, stride, rng),
            skip,
            relu_mask: None,
            alpha: 0.5,
            last_mode: Mode::Eval,
            rng: StdRng::seed_from_u64(rng.gen()),
        }
    }

    /// Forward FLOPs of one branch at the given input dimensions — the unit
    /// of work the MPI-Branch baseline ships to a peer device.
    pub fn branch_flops(&self, in_dims: &[usize]) -> u64 {
        self.branch1.flops(in_dims)
    }

    /// Mutable access to the two residual branches — used by the
    /// MPI-Branch baseline to execute them on different devices.
    pub fn branches_mut(&mut self) -> (&mut Sequential, &mut Sequential) {
        (&mut self.branch1, &mut self.branch2)
    }

    /// Mutable access to the shortcut path (`None` when it is the
    /// identity).
    pub fn skip_mut(&mut self) -> Option<&mut Sequential> {
        self.skip.as_mut()
    }

    /// Deterministically merges precomputed branch outputs with the
    /// shortcut at evaluation coefficients (α = ½) and applies the final
    /// ReLU — the recombination step of branch-parallel inference.
    ///
    /// # Panics
    ///
    /// Panics if the three tensors' shapes differ.
    pub fn merge_eval(shortcut: &Tensor, branch1: &Tensor, branch2: &Tensor) -> Tensor {
        let mut pre = shortcut.clone();
        pre.axpy(0.5, branch1);
        pre.axpy(0.5, branch2);
        pre.relu()
    }
}

impl std::fmt::Debug for ShakeShakeBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShakeShakeBlock(branches: 2, skip: {})",
            if self.skip.is_some() {
                "projection"
            } else {
                "identity"
            }
        )
    }
}

impl Layer for ShakeShakeBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.last_mode = mode;
        self.alpha = match mode {
            Mode::Train => self.rng.gen_range(0.0..1.0),
            Mode::Eval => 0.5,
        };
        let b1 = self.branch1.forward(input, mode);
        let b2 = self.branch2.forward(input, mode);
        let shortcut = match &mut self.skip {
            Some(skip) => skip.forward(input, mode),
            None => input.clone(),
        };
        let mut pre = shortcut;
        pre.axpy(self.alpha, &b1);
        // Branch buffers die at their last consumer — the accumulation
        // order matches `merge_eval` bit-for-bit, but freeing each branch
        // eagerly is what the static liveness model (DESIGN.md §13) prices.
        drop(b1);
        pre.axpy(1.0 - self.alpha, &b2);
        drop(b2);
        match mode {
            Mode::Train => {
                self.relu_mask = Some(pre.map(|x| if x > 0.0 { 1.0 } else { 0.0 }));
                pre.relu()
            }
            Mode::Eval => {
                self.relu_mask = None;
                pre.map_inplace(|x| x.max(0.0));
                pre
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Layer contract: backward() only runs after forward(). lint: allow(no-expect)
        let mask = self
            .relu_mask
            .as_ref()
            .expect("backward() before forward()");
        let g_pre = grad_out * mask;
        // Shake: an independent coefficient on the backward pass in training.
        let beta = match self.last_mode {
            Mode::Train => self.rng.gen_range(0.0..1.0),
            Mode::Eval => 0.5,
        };
        let g1 = self.branch1.backward(&g_pre.scale(beta));
        let g2 = self.branch2.backward(&g_pre.scale(1.0 - beta));
        let g_skip = match &mut self.skip {
            Some(skip) => skip.backward(&g_pre),
            None => g_pre,
        };
        let mut gx = g_skip;
        gx.axpy(1.0, &g1);
        gx.axpy(1.0, &g2);
        gx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.branch1.visit_params(visitor);
        self.branch2.visit_params(visitor);
        if let Some(skip) = &mut self.skip {
            skip.visit_params(visitor);
        }
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        self.branch1.out_dims(in_dims)
    }

    fn check_shape(&self, in_dims: &[usize]) -> Result<Vec<usize>, crate::ShapeError> {
        let b1 = self.branch1.check_shape(in_dims)?;
        let b2 = self.branch2.check_shape(in_dims)?;
        if b1 != b2 {
            return Err(crate::ShapeError::BranchMismatch {
                layer: self.name(),
                branch: b1,
                shortcut: b2,
            });
        }
        let shortcut = match &self.skip {
            Some(skip) => skip.check_shape(in_dims)?,
            None => in_dims.to_vec(),
        };
        if shortcut != b1 {
            return Err(crate::ShapeError::BranchMismatch {
                layer: self.name(),
                branch: b1,
                shortcut,
            });
        }
        Ok(b1)
    }

    fn flops(&self, in_dims: &[usize]) -> u64 {
        let skip_flops = self.skip.as_ref().map_or(0, |s| s.flops(in_dims));
        // Two branches plus the (possibly trivial) shortcut plus the merge.
        let merge = 3 * self.out_dims(in_dims).iter().product::<usize>() as u64;
        2 * self.branch1.flops(in_dims) + skip_flops + merge
    }

    fn param_count(&self) -> usize {
        self.branch1.param_count()
            + self.branch2.param_count()
            + self.skip.as_ref().map_or(0, |s| s.param_count())
    }

    fn name(&self) -> &'static str {
        "ShakeShake"
    }

    fn cost_node(&self, in_dims: &[usize]) -> CostNode {
        CostNode::branch2(
            self.branch1.cost_node(in_dims),
            self.branch2.cost_node(in_dims),
            self.skip.as_ref().map(|s| s.cost_node(in_dims)),
            tensor_bytes(&self.out_dims(in_dims)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_skip_when_shapes_match() {
        let mut rng = StdRng::seed_from_u64(30);
        let block = ShakeShakeBlock::new(4, 4, 1, &mut rng);
        assert!(block.skip.is_none());
        assert_eq!(block.out_dims(&[1, 4, 8, 8]), vec![1, 4, 8, 8]);
    }

    #[test]
    fn projection_skip_on_channel_or_stride_change() {
        let mut rng = StdRng::seed_from_u64(31);
        let block = ShakeShakeBlock::new(4, 8, 2, &mut rng);
        assert!(block.skip.is_some());
        assert_eq!(block.out_dims(&[2, 4, 8, 8]), vec![2, 8, 4, 4]);
    }

    #[test]
    fn eval_is_deterministic_train_is_stochastic() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut block = ShakeShakeBlock::new(2, 2, 1, &mut rng);
        let x = Tensor::randn([1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let e1 = block.forward(&x, Mode::Eval);
        let e2 = block.forward(&x, Mode::Eval);
        assert_eq!(e1, e2, "eval must be deterministic");
        let t1 = block.forward(&x, Mode::Train);
        let t2 = block.forward(&x, Mode::Train);
        // Two training passes draw different α with overwhelming probability.
        assert!(t1.max_abs_diff(&t2) > 1e-6, "train should be stochastic");
    }

    #[test]
    fn backward_produces_input_shaped_gradient() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut block = ShakeShakeBlock::new(3, 6, 2, &mut rng);
        let x = Tensor::randn([2, 3, 6, 6], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train);
        let gx = block.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(gx.dims(), x.dims());
        assert!(gx.all_finite());
    }

    #[test]
    fn eval_gradient_matches_finite_differences() {
        // In eval mode α = β = ½ and batch-norm uses running stats, so the
        // block is a deterministic differentiable function — but backward()
        // requires train-mode BN caches. Instead verify the *train*-mode
        // gradient statistically: fix the RNG so α == β by construction is
        // not possible; here we only check the skip path contribution which
        // is coefficient-free.
        let mut rng = StdRng::seed_from_u64(34);
        let mut block = ShakeShakeBlock::new(2, 2, 1, &mut rng);
        let x = Tensor::randn([1, 2, 3, 3], 0.0, 0.5, &mut rng);
        let y = block.forward(&x, Mode::Train);
        let gx = block.backward(&Tensor::ones(y.shape().clone()));
        // Where the pre-activation is positive, the identity-skip path alone
        // contributes exactly 1 to the input gradient; branch contributions
        // add on top. Sanity-check magnitude is in a plausible band.
        assert!(gx.norm_sq() > 0.0);
        assert!(gx.all_finite());
    }

    #[test]
    fn param_count_covers_both_branches_and_skip() {
        let mut rng = StdRng::seed_from_u64(35);
        let plain = ShakeShakeBlock::new(4, 4, 1, &mut rng);
        let proj = ShakeShakeBlock::new(4, 8, 2, &mut rng);
        assert_eq!(plain.param_count(), 2 * plain.branch1.param_count());
        assert!(proj.param_count() > 2 * plain.branch1.param_count());
        assert!(proj.branch_flops(&[1, 4, 8, 8]) > 0);
    }
}
