//! The [`Sequential`] container: an ordered pipeline of layers.

use crate::cost::CostNode;
use crate::layer::{Layer, Mode};
use teamnet_tensor::Tensor;

/// A network composed of layers applied in order.
///
/// `Sequential` itself implements [`Layer`], so containers nest (the
/// Shake-Shake block holds two `Sequential` branches).
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use teamnet_nn::{Dense, Mode, Relu, Sequential, Layer};
/// use teamnet_tensor::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 8, &mut rng));
/// net.push(Relu::new());
/// net.push(Dense::new(8, 3, &mut rng));
///
/// let x = Tensor::zeros([2, 4]);
/// let logits = net.forward(&x, Mode::Eval);
/// assert_eq!(logits.dims(), &[2, 3]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the end of the pipeline.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of directly contained layers (containers count as one).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the pipeline contains no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Per-layer static profile for the given input dimensions: the data
    /// the edge-device cost model needs to price each pipeline stage.
    /// Nested [`Sequential`]s are flattened; composite blocks (e.g.
    /// Shake-Shake) stay as single entries.
    pub fn per_layer_profile(&self, in_dims: &[usize]) -> Vec<LayerProfile> {
        let mut out = Vec::new();
        self.profile_into(in_dims, &mut out);
        out
    }

    /// Direct children, in execution order — the granularity at which the
    /// static resource certifier reports per-layer rows.
    pub(crate) fn children(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// A one-line-per-layer summary with parameter counts.
    pub fn summary(&self, in_dims: &[usize]) -> String {
        let mut out = String::new();
        let mut dims = in_dims.to_vec();
        let mut total = 0usize;
        for layer in &self.layers {
            let next = layer.out_dims(&dims);
            let params = layer.param_count();
            total += params;
            out.push_str(&format!(
                "{:<14} {:?} -> {:?}  params={}\n",
                layer.name(),
                dims,
                next,
                params
            ));
            dims = next;
        }
        out.push_str(&format!("total params: {total}\n"));
        out
    }
}

/// Static description of one layer within a [`Sequential`] pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerProfile {
    /// Layer type name.
    pub name: &'static str,
    /// Forward FLOPs at the profiled input dimensions.
    pub flops: u64,
    /// Trainable parameter count.
    pub params: usize,
    /// Input dimensions (batch included).
    pub in_dims: Vec<usize>,
    /// Output dimensions (batch included).
    pub out_dims: Vec<usize>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        // The first layer reads the caller's tensor directly: an upfront
        // clone would put an input-sized buffer on the peak-liveness path
        // that the static cost model (DESIGN.md §13) has no reason to pay.
        let mut layers = self.layers.iter_mut();
        let mut x = match layers.next() {
            Some(first) => first.forward(input, mode),
            None => return input.clone(),
        };
        for layer in layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        let mut dims = in_dims.to_vec();
        for layer in &self.layers {
            dims = layer.out_dims(&dims);
        }
        dims
    }

    fn check_shape(&self, in_dims: &[usize]) -> Result<Vec<usize>, crate::ShapeError> {
        let mut dims = in_dims.to_vec();
        for (index, layer) in self.layers.iter().enumerate() {
            dims = layer
                .check_shape(&dims)
                .map_err(|e| crate::ShapeError::at(index, layer.name(), e))?;
        }
        Ok(dims)
    }

    fn flops(&self, in_dims: &[usize]) -> u64 {
        let mut dims = in_dims.to_vec();
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.flops(&dims);
            dims = layer.out_dims(&dims);
        }
        total
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn cost_node(&self, in_dims: &[usize]) -> CostNode {
        if self.layers.is_empty() {
            // An empty pipeline clones its input (see `forward`).
            return CostNode::leaf("Sequential", in_dims, in_dims, 0);
        }
        let mut dims = in_dims.to_vec();
        let mut children = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            children.push(layer.cost_node(&dims));
            dims = layer.out_dims(&dims);
        }
        CostNode::chain(in_dims, children)
    }

    fn profile_into(&self, in_dims: &[usize], out: &mut Vec<LayerProfile>) -> Vec<usize> {
        let mut dims = in_dims.to_vec();
        for layer in &self.layers {
            dims = layer.profile_into(&dims, out);
        }
        dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, rng));
        net.push(Relu::new());
        net.push(Dense::new(5, 2, rng));
        net
    }

    #[test]
    fn forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn([4, 3], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[4, 2]);
        let gx = net.backward(&Tensor::ones([4, 2]));
        assert_eq!(gx.dims(), &[4, 3]);
    }

    #[test]
    fn whole_network_gradient_check() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn([3, 3], 0.0, 1.0, &mut rng);
        net.forward(&x, Mode::Train);
        let gx = net.backward(&Tensor::ones([3, 2]));

        let eps = 1e-2;
        for probe in [0usize, 4, 8] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let lp = net.forward(&xp, Mode::Train).sum();
            let lm = net.forward(&xm, Mode::Train).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[probe]).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{probe}]: numeric {num} vs analytic {}",
                gx.data()[probe]
            );
        }
    }

    #[test]
    fn param_count_and_flops_aggregate() {
        let mut rng = StdRng::seed_from_u64(22);
        let net = tiny_net(&mut rng);
        assert_eq!(net.param_count(), (3 * 5 + 5) + (5 * 2 + 2));
        assert_eq!(net.out_dims(&[7, 3]), vec![7, 2]);
        let expected_flops = 7 * (2 * 3 * 5 + 5) + 7 * 5 + 7 * (2 * 5 * 2 + 2);
        assert_eq!(net.flops(&[7, 3]), expected_flops as u64);
    }

    #[test]
    fn per_layer_profile_walks_shapes() {
        let mut rng = StdRng::seed_from_u64(25);
        let net = tiny_net(&mut rng);
        let profile = net.per_layer_profile(&[4, 3]);
        assert_eq!(profile.len(), 3);
        assert_eq!(profile[0].out_dims, vec![4, 5]);
        assert_eq!(profile[1].name, "Relu");
        assert_eq!(profile[2].out_dims, vec![4, 2]);
        let total: u64 = profile.iter().map(|p| p.flops).sum();
        assert_eq!(total, net.flops(&[4, 3]));
    }

    #[test]
    fn summary_lists_layers() {
        let mut rng = StdRng::seed_from_u64(23);
        let net = tiny_net(&mut rng);
        let s = net.summary(&[1, 3]);
        assert!(s.contains("Dense"));
        assert!(s.contains("Relu"));
        assert!(s.contains("total params: 32"));
    }

    #[test]
    fn zero_grad_resets_everything() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn([2, 3], 0.0, 1.0, &mut rng);
        net.forward(&x, Mode::Train);
        net.backward(&Tensor::ones([2, 2]));
        net.zero_grad();
        net.visit_params(&mut |_, g| assert_eq!(g.norm_sq(), 0.0));
    }
}
