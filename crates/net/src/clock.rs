//! Injectable time source for every protocol-layer deadline and backoff.
//!
//! Wall-clock reads scattered through retry, collective and inference code
//! make two things impossible: replaying a seeded chaos run bit-for-bit,
//! and testing timeout logic without actually sleeping. The [`Clock`]
//! trait funnels every `now()` read and every backoff sleep through one
//! interface with two implementations:
//!
//! * [`SystemClock`] — the real wall clock, used in production. This is
//!   the **single sanctioned wall-clock read** in the workspace: the
//!   `cargo xtask audit` determinism pass rejects any other
//!   `Instant::now()` reachable from protocol paths.
//! * [`ManualClock`] — a test clock that only moves when told to (or when
//!   code under test "sleeps" on it), so backoff/deadline behaviour is
//!   asserted in virtual time and timing tests cannot flake under load.
//!
//! Receive timeouts handed to a blocking transport still elapse in real
//! time (a condition variable cannot wait on virtual time); the clock
//! governs how those deadlines are *budgeted*, which is where the
//! nondeterminism and the test flakiness lived.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A source of monotonic time plus the ability to sleep against it.
///
/// `Debug` is a supertrait so configs holding an `Arc<dyn Clock>` can keep
/// deriving `Debug`.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current instant on this clock.
    fn now(&self) -> Instant;

    /// Blocks (or virtually advances) for `duration`.
    fn sleep(&self, duration: Duration);
}

/// The real wall clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        // The one sanctioned wall-clock read (see module docs); everything
        // else must go through a Clock. lint: allow(det-clock)
        Instant::now()
    }

    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// A virtual clock for tests: time stands still until [`advance`]d, and
/// [`Clock::sleep`] advances it instantly instead of blocking.
///
/// [`advance`]: ManualClock::advance
#[derive(Debug)]
pub struct ManualClock {
    /// Arbitrary anchor so `now()` can hand out real `Instant`s; only the
    /// offset from it ever changes.
    base: Instant,
    offset: Mutex<Duration>,
    sleeps: AtomicU64,
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl ManualClock {
    /// A clock frozen at its creation instant.
    pub fn new() -> Self {
        ManualClock {
            // Anchor only; virtual time is the offset from here.
            // lint: allow(det-clock)
            base: Instant::now(),
            offset: Mutex::new(Duration::ZERO),
            sleeps: AtomicU64::new(0),
        }
    }

    /// Moves the clock forward by `duration`.
    pub fn advance(&self, duration: Duration) {
        *self.offset.lock() += duration;
    }

    /// Total virtual time elapsed since creation.
    pub fn elapsed(&self) -> Duration {
        *self.offset.lock()
    }

    /// Number of [`Clock::sleep`] calls observed (each also advances the
    /// clock by the requested duration).
    pub fn sleeps(&self) -> u64 {
        self.sleeps.load(Ordering::Relaxed)
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        self.base + *self.offset.lock()
    }

    fn sleep(&self, duration: Duration) {
        self.sleeps.fetch_add(1, Ordering::Relaxed);
        self.advance(duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn system_clock_moves_forward() {
        let clock = SystemClock;
        let a = clock.now();
        assert!(clock.now() >= a);
    }

    #[test]
    fn manual_clock_is_frozen_until_advanced() {
        let clock = ManualClock::new();
        let a = clock.now();
        assert_eq!(clock.now(), a);
        clock.advance(Duration::from_secs(3));
        assert_eq!(clock.now(), a + Duration::from_secs(3));
        assert_eq!(clock.elapsed(), Duration::from_secs(3));
    }

    #[test]
    fn manual_sleep_advances_without_blocking() {
        let clock = ManualClock::new();
        clock.sleep(Duration::from_secs(3600)); // returns immediately
        assert_eq!(clock.elapsed(), Duration::from_secs(3600));
        assert_eq!(clock.sleeps(), 1);
    }

    #[test]
    fn works_as_trait_object() {
        let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
        let t0 = clock.now();
        clock.sleep(Duration::from_millis(5));
        assert_eq!(clock.now(), t0 + Duration::from_millis(5));
    }
}
