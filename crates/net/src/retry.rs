//! Bounded retries with exponential backoff + deterministic jitter, and a
//! tiny seedable PRNG shared with the fault-injection layer.
//!
//! Edge WiFi drops sends transiently; the collectives and the inference
//! runtime retry them a bounded number of times inside a **deadline
//! budget** — the caller allots one wall-clock budget to the whole
//! operation and every retry (and its backoff sleep) draws from it, rather
//! than each attempt carrying an independent timeout that can stack up
//! unboundedly.

use crate::clock::{Clock, SystemClock};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic 64-bit PRNG (SplitMix64). Seeded fault injection and
/// backoff jitter must replay identically run-to-run, which rules out
/// entropy from the OS; SplitMix64 passes BigCrush and is four lines long.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed; the same seed replays the same
    /// sequence forever.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Retry schedule: how many attempts, and how the backoff between them
/// grows. Delays double each attempt from `base_delay` up to `max_delay`,
/// then get "equal jitter" applied (half fixed, half uniform random) so a
/// fleet of retrying nodes does not stampede in lockstep.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// Iterator-style backoff state for one operation under one deadline.
#[derive(Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    rng: DetRng,
    attempt: u32,
    deadline: Instant,
    clock: Arc<dyn Clock>,
}

impl Backoff {
    /// Starts a backoff sequence against `deadline` on the real wall
    /// clock; `seed` fixes the jitter sequence.
    pub fn new(policy: RetryPolicy, seed: u64, deadline: Instant) -> Self {
        Backoff::with_clock(policy, seed, deadline, Arc::new(SystemClock))
    }

    /// Starts a backoff sequence whose deadline budget is measured on
    /// `clock` — a [`crate::ManualClock`] makes deadline-exhaustion tests
    /// fully virtual (no real sleeping).
    pub fn with_clock(
        policy: RetryPolicy,
        seed: u64,
        deadline: Instant,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Backoff {
            policy,
            rng: DetRng::new(seed),
            attempt: 0,
            deadline,
            clock,
        }
    }

    /// Remaining deadline budget (zero once the deadline has passed).
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_duration_since(self.clock.now())
    }

    /// Called after a failed attempt: returns the delay to sleep before
    /// retrying, or `None` when the attempt budget or the deadline budget
    /// is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        self.attempt += 1;
        if self.attempt >= self.policy.max_attempts {
            return None;
        }
        let exp = self
            .policy
            .base_delay
            .saturating_mul(1u32 << (self.attempt - 1).min(16))
            .min(self.policy.max_delay);
        // Equal jitter: delay in [exp/2, exp).
        let half = exp / 2;
        let jitter = half.mul_f64(self.rng.next_f64());
        let delay = half + jitter;
        if delay >= self.remaining() {
            return None; // sleeping would blow the deadline budget
        }
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_rng_is_deterministic() {
        let mut a = DetRng::new(99);
        let mut b = DetRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(100);
        assert_ne!(DetRng::new(99).next_u64(), c.next_u64());
    }

    #[test]
    fn chance_respects_extremes() {
        let mut rng = DetRng::new(1);
        assert!((0..64).all(|_| !rng.chance(0.0)));
        assert!((0..64).all(|_| rng.chance(1.1)));
        assert_eq!(rng.below(0), 0);
        assert!((0..64).all(|_| rng.below(5) < 5));
    }

    #[test]
    fn backoff_grows_and_is_bounded() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
        };
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut backoff = Backoff::new(policy, 7, deadline);
        let delays: Vec<Duration> = std::iter::from_fn(|| backoff.next_delay()).collect();
        assert_eq!(delays.len(), 4); // 5 attempts = 4 retries
        for (i, d) in delays.iter().enumerate() {
            let exp = Duration::from_millis(10 * (1 << i)).min(Duration::from_millis(40));
            assert!(*d >= exp / 2 && *d < exp, "retry {i}: {d:?} vs cap {exp:?}");
        }
    }

    #[test]
    fn backoff_stops_at_deadline() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(50),
        };
        // Deadline already in the past: no retry may be granted.
        let mut backoff = Backoff::new(policy, 1, Instant::now());
        assert!(backoff.next_delay().is_none());
        assert_eq!(backoff.remaining(), Duration::ZERO);
    }

    #[test]
    fn no_retry_policy_yields_nothing() {
        let deadline = Instant::now() + Duration::from_secs(1);
        let mut backoff = Backoff::new(RetryPolicy::none(), 0, deadline);
        assert!(backoff.next_delay().is_none());
    }

    #[test]
    fn deadline_budget_is_exact_on_a_manual_clock() {
        use crate::clock::{Clock, ManualClock};
        let policy = RetryPolicy {
            max_attempts: 100,
            base_delay: Duration::from_millis(40),
            max_delay: Duration::from_millis(40),
        };
        let clock = Arc::new(ManualClock::new());
        let deadline = clock.now() + Duration::from_millis(100);
        let mut backoff =
            Backoff::with_clock(policy, 3, deadline, Arc::clone(&clock) as Arc<dyn Clock>);
        // Drive the backoff entirely in virtual time: each granted delay is
        // "slept" on the manual clock, so budget exhaustion is exact and
        // the test never blocks.
        let mut granted = 0;
        while let Some(delay) = backoff.next_delay() {
            assert!(delay >= Duration::from_millis(20) && delay < Duration::from_millis(40));
            clock.sleep(delay);
            granted += 1;
        }
        assert!(
            (1..=4).contains(&granted),
            "100ms budget, 20-40ms delays: got {granted}"
        );
        assert!(backoff.remaining() < Duration::from_millis(40));
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let policy = RetryPolicy::default();
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut a = Backoff::new(policy.clone(), 42, deadline);
        let mut b = Backoff::new(policy, 42, deadline);
        assert_eq!(a.next_delay(), b.next_delay());
        assert_eq!(a.next_delay(), b.next_delay());
    }
}
