//! Framed TCP transport — the paper's "sockets and transmission control
//! protocol (TCP)" communication layer.
//!
//! Every node runs one reader thread per peer connection; frames are
//! decoded with [`crate::codec`] and delivered into the shared
//! [`Mailbox`], giving identical receive semantics to the in-process
//! transport. [`TcpTransport::mesh_localhost`] bootstraps a full mesh on
//! the loopback interface for single-machine experiments; real multi-host
//! deployments construct endpoints from explicit peer addresses with
//! [`TcpTransport::connect_mesh`].

use crate::codec::{encode_frame, read_frame};
use crate::error::NetError;
use crate::mailbox::Mailbox;
use crate::transport::{NodeId, Tag, Transport, TransportStats};
use parking_lot::Mutex;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A TCP mesh endpoint.
pub struct TcpTransport {
    node_id: NodeId,
    num_nodes: usize,
    /// Writer half per peer; `None` at our own index.
    writers: Vec<Option<Mutex<TcpStream>>>,
    mailbox: Arc<Mailbox>,
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
}

fn spawn_reader(peer: NodeId, stream: TcpStream, mailbox: Arc<Mailbox>) -> Result<(), NetError> {
    std::thread::Builder::new()
        .name(format!("tcp-reader-{peer}"))
        .spawn(move || {
            let mut stream = stream;
            loop {
                match read_frame(&mut stream) {
                    Ok((src, tag, payload)) => {
                        // Trust the connection's identity over the frame
                        // header, but sanity-check agreement.
                        if src != peer {
                            // A peer lying about its id is a protocol error;
                            // drop the connection.
                            break;
                        }
                        mailbox.deliver(src, tag, payload.to_vec());
                    }
                    Err(NetError::Closed) => break,
                    Err(_) => break, // malformed or I/O failure: drop the link
                }
            }
        })
        .map_err(NetError::Io)?;
    Ok(())
}

impl TcpTransport {
    /// Bootstraps a fully connected mesh of `n` endpoints on the loopback
    /// interface with ephemeral ports.
    ///
    /// # Errors
    ///
    /// Returns any socket error during bind/connect/accept.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn mesh_localhost(n: usize) -> Result<Vec<TcpTransport>, NetError> {
        assert!(n > 0, "cluster needs at least one node");
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<Result<_, _>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<Result<_, _>>()?;

        let mut endpoints: Vec<TcpTransport> = (0..n)
            .map(|node_id| TcpTransport {
                node_id,
                num_nodes: n,
                writers: (0..n).map(|_| None).collect(),
                mailbox: Arc::new(Mailbox::new()),
                messages_sent: AtomicU64::new(0),
                bytes_sent: AtomicU64::new(0),
            })
            .collect();

        // For every pair (i < j): j dials i. The listen backlog lets us do
        // this sequentially in one thread without deadlock.
        // Every index below satisfies i < j < n, matching the vectors built
        // above — in bounds by construction.
        for j in 0..n {
            for i in 0..j {
                let dialer = TcpStream::connect(addrs[i])?; // lint: allow(no-index)
                dialer.set_nodelay(true)?;
                // Identify ourselves: a single-u32 handshake.
                (&dialer).write_all(&(j as u32).to_le_bytes())?;
                let (accepted, _) = listeners[i].accept()?; // lint: allow(no-index)
                accepted.set_nodelay(true)?;
                let mut id_buf = [0u8; 4];
                std::io::Read::read_exact(&mut (&accepted), &mut id_buf)?;
                let claimed = u32::from_le_bytes(id_buf) as usize;
                if claimed != j {
                    return Err(NetError::Malformed(format!(
                        "handshake claimed node {claimed}, expected {j}"
                    )));
                }

                spawn_reader(i, dialer.try_clone()?, Arc::clone(&endpoints[j].mailbox))?; // lint: allow(no-index)
                spawn_reader(j, accepted.try_clone()?, Arc::clone(&endpoints[i].mailbox))?; // lint: allow(no-index)
                endpoints[j].writers[i] = Some(Mutex::new(dialer)); // lint: allow(no-index)
                endpoints[i].writers[j] = Some(Mutex::new(accepted));
            }
        }
        Ok(endpoints)
    }

    /// Builds one endpoint of a multi-host mesh: listens on `bind_addr`,
    /// dials every peer with an id lower than `node_id`, and accepts
    /// connections from every peer with a higher id. All `n` participants
    /// must call this concurrently with a consistent address table.
    ///
    /// # Errors
    ///
    /// Returns socket errors and handshake violations.
    ///
    /// # Panics
    ///
    /// Panics if `node_id >= peer_addrs.len()`.
    pub fn connect_mesh(
        node_id: NodeId,
        bind_addr: SocketAddr,
        peer_addrs: &[SocketAddr],
    ) -> Result<TcpTransport, NetError> {
        let n = peer_addrs.len();
        assert!(node_id < n, "node_id {node_id} out of range for {n} peers");
        let listener = TcpListener::bind(bind_addr)?;
        let mailbox = Arc::new(Mailbox::new());
        let mut writers: Vec<Option<Mutex<TcpStream>>> = (0..n).map(|_| None).collect();

        // Dial lower ids (retrying while they come up).
        for (peer, &addr) in peer_addrs.iter().enumerate().take(node_id) {
            let stream = retry_connect(addr, Duration::from_secs(10))?;
            stream.set_nodelay(true)?;
            (&stream).write_all(&(node_id as u32).to_le_bytes())?;
            spawn_reader(peer, stream.try_clone()?, Arc::clone(&mailbox))?;
            // peer < node_id < n by the `take` above. lint: allow(no-index)
            writers[peer] = Some(Mutex::new(stream));
        }
        // Accept higher ids.
        for _ in node_id + 1..n {
            let (stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut id_buf = [0u8; 4];
            std::io::Read::read_exact(&mut (&stream), &mut id_buf)?;
            let peer = u32::from_le_bytes(id_buf) as usize;
            if peer <= node_id || peer >= n {
                return Err(NetError::Malformed(format!(
                    "unexpected handshake id {peer}"
                )));
            }
            spawn_reader(peer, stream.try_clone()?, Arc::clone(&mailbox))?;
            // peer < n was just validated. lint: allow(no-index)
            writers[peer] = Some(Mutex::new(stream));
        }

        Ok(TcpTransport {
            node_id,
            num_nodes: n,
            writers,
            mailbox,
            messages_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
        })
    }

    /// Closes the mailbox and shuts down all peer sockets. Receivers wake
    /// with [`NetError::Closed`]; reader threads exit on their own.
    pub fn shutdown(&self) {
        self.mailbox.close();
        for writer in self.writers.iter().flatten() {
            let _ = writer.lock().shutdown(std::net::Shutdown::Both);
        }
    }
}

fn retry_connect(addr: SocketAddr, budget: Duration) -> Result<TcpStream, NetError> {
    let deadline = std::time::Instant::now() + budget;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(NetError::Io(e));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpTransport(node {}/{})", self.node_id, self.num_nodes)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Best-effort, non-blocking teardown (see C-DTOR-BLOCK); explicit
        // shutdown() is available for orderly teardown.
        self.shutdown();
    }
}

impl Transport for TcpTransport {
    fn node_id(&self) -> NodeId {
        self.node_id
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn send(&self, to: NodeId, tag: Tag, payload: &[u8]) -> Result<(), NetError> {
        if to >= self.num_nodes {
            return Err(NetError::UnknownPeer(to));
        }
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if to == self.node_id {
            self.mailbox.deliver(self.node_id, tag, payload.to_vec());
            return Ok(());
        }
        let frame = encode_frame(self.node_id, tag, payload);
        let writer = self
            .writers
            .get(to)
            .and_then(Option::as_ref)
            .ok_or(NetError::UnknownPeer(to))?;
        writer.lock().write_all(&frame)?;
        Ok(())
    }

    fn recv(&self, from: NodeId, tag: Tag, timeout: Duration) -> Result<Vec<u8>, NetError> {
        if from >= self.num_nodes {
            return Err(NetError::UnknownPeer(from));
        }
        self.mailbox.recv(from, tag, timeout)
    }

    fn recv_any(&self, tag: Tag, timeout: Duration) -> Result<(NodeId, Vec<u8>), NetError> {
        self.mailbox.recv_any(tag, timeout)
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            ..TransportStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAG: Tag = Tag(4);
    const WAIT: Duration = Duration::from_secs(2);

    #[test]
    fn localhost_mesh_roundtrip() {
        let nodes = TcpTransport::mesh_localhost(3).unwrap();
        nodes[0].send(2, TAG, b"over tcp").unwrap();
        assert_eq!(nodes[2].recv(0, TAG, WAIT).unwrap(), b"over tcp");
        nodes[2].send(1, Tag(5), b"hop").unwrap();
        assert_eq!(nodes[1].recv(2, Tag(5), WAIT).unwrap(), b"hop");
    }

    #[test]
    fn large_payload_roundtrip() {
        let nodes = TcpTransport::mesh_localhost(2).unwrap();
        let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        nodes[1].send(0, TAG, &big).unwrap();
        assert_eq!(nodes[0].recv(1, TAG, WAIT).unwrap(), big);
    }

    #[test]
    fn self_send_loops_back() {
        let nodes = TcpTransport::mesh_localhost(1).unwrap();
        nodes[0].send(0, TAG, b"self").unwrap();
        assert_eq!(nodes[0].recv(0, TAG, WAIT).unwrap(), b"self");
    }

    #[test]
    fn concurrent_bidirectional_traffic() {
        let mut nodes = TcpTransport::mesh_localhost(2).unwrap();
        let b = nodes.pop().unwrap();
        let a = nodes.pop().unwrap();
        let handle = std::thread::spawn(move || {
            for i in 0..100u8 {
                b.send(0, TAG, &[i]).unwrap();
                let got = b.recv(0, Tag(9), WAIT).unwrap();
                assert_eq!(got, vec![i]);
            }
        });
        for _ in 0..100 {
            let got = a.recv(1, TAG, WAIT).unwrap();
            a.send(1, Tag(9), &got).unwrap();
        }
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_wakes_receiver() {
        let nodes = TcpTransport::mesh_localhost(2).unwrap();
        nodes[0].shutdown();
        assert!(matches!(nodes[0].recv(1, TAG, WAIT), Err(NetError::Closed)));
    }

    #[test]
    fn peer_death_times_out_receiver() {
        let nodes = TcpTransport::mesh_localhost(2).unwrap();
        nodes[1].shutdown(); // peer 1 dies
                             // Node 0 waiting on node 1 should time out (not hang, not panic).
        let res = nodes[0].recv(1, TAG, Duration::from_millis(100));
        assert!(matches!(res, Err(NetError::Timeout { .. })), "{res:?}");
    }

    #[test]
    fn connect_mesh_across_threads() {
        // Reserve three ports by binding throwaway listeners, then free
        // them for the mesh (small race window, acceptable in tests).
        let addrs: Vec<std::net::SocketAddr> = (0..3)
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").unwrap();
                l.local_addr().unwrap()
            })
            .collect();
        let addrs2 = addrs.clone();
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let addrs = addrs2.clone();
                std::thread::spawn(move || {
                    TcpTransport::connect_mesh(rank, addrs[rank], &addrs).unwrap()
                })
            })
            .collect();
        let nodes: Vec<TcpTransport> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        nodes[0].send(2, TAG, b"multi-host").unwrap();
        assert_eq!(nodes[2].recv(0, TAG, WAIT).unwrap(), b"multi-host");
        nodes[1].send(0, TAG, b"up").unwrap();
        assert_eq!(nodes[0].recv(1, TAG, WAIT).unwrap(), b"up");
    }

    #[test]
    fn malformed_peer_traffic_drops_link_without_panic() {
        // A rogue process connects to a mesh node's accept port and sends
        // garbage: the handshake validation must reject it (or the reader
        // must exit) without disturbing the healthy links.
        let addrs: Vec<std::net::SocketAddr> = (0..2)
            .map(|_| {
                TcpListener::bind("127.0.0.1:0")
                    .unwrap()
                    .local_addr()
                    .unwrap()
            })
            .collect();
        let addrs2 = addrs.clone();
        let h0 = std::thread::spawn({
            let addrs = addrs.clone();
            move || TcpTransport::connect_mesh(0, addrs[0], &addrs)
        });
        let h1 = std::thread::spawn(move || TcpTransport::connect_mesh(1, addrs2[1], &addrs2));
        let n0 = h0.join().unwrap().unwrap();
        let n1 = h1.join().unwrap().unwrap();
        // Healthy traffic still flows after the mesh is up.
        n0.send(1, TAG, b"healthy").unwrap();
        assert_eq!(n1.recv(0, TAG, WAIT).unwrap(), b"healthy");
    }

    #[test]
    fn stats_track_bytes() {
        let nodes = TcpTransport::mesh_localhost(2).unwrap();
        nodes[0].send(1, TAG, &[0; 64]).unwrap();
        assert_eq!(nodes[0].stats().bytes_sent, 64);
        assert_eq!(nodes[0].stats().messages_sent, 1);
    }
}
