//! The [`Transport`] abstraction and the in-process channel transport.
//!
//! A transport is a full mesh between `num_nodes` peers with MPI-style
//! `(source, tag)`-matched point-to-point messaging. Two implementations
//! exist: [`ChannelTransport`] (zero-copy in-process delivery, used by the
//! simulator and most tests) and [`crate::TcpTransport`] (framed sockets,
//! what an actual edge deployment uses — the paper's "sockets and TCP").

use crate::error::NetError;
use crate::mailbox::Mailbox;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a node within a cluster (0-based, dense).
pub type NodeId = usize;

/// Message tag, used for `(source, tag)` receive matching.
///
/// `Ord` so tags can key the ordered (deterministically iterable)
/// collections the mailbox uses — see the `det-map` audit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tag(pub u32);

/// Cumulative traffic counters for one transport endpoint.
///
/// The edge-device cost model converts these into modeled WiFi airtime.
/// The fault counters stay zero on real transports; fault-injection
/// decorators ([`crate::ChaosTransport`]) account every fault they inject
/// here so chaos tests can assert that faults actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Messages sent by this endpoint.
    pub messages_sent: u64,
    /// Payload bytes sent by this endpoint (excluding framing).
    pub bytes_sent: u64,
    /// Messages silently dropped by fault injection (incl. black-holing).
    pub messages_dropped: u64,
    /// Messages held back and re-ordered by fault injection.
    pub messages_delayed: u64,
    /// Messages delivered with a flipped bit by fault injection.
    pub messages_corrupted: u64,
    /// Messages delivered twice by fault injection.
    pub messages_duplicated: u64,
}

/// A point-to-point message-passing endpoint in a full mesh.
pub trait Transport: Send + Sync {
    /// This endpoint's node id.
    fn node_id(&self) -> NodeId;

    /// Total number of nodes in the cluster.
    fn num_nodes(&self) -> usize;

    /// Sends `payload` to `to` under `tag`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownPeer`] for an out-of-range destination, transport
    /// specific I/O errors otherwise.
    fn send(&self, to: NodeId, tag: Tag, payload: &[u8]) -> Result<(), NetError>;

    /// Receives the next message from `from` under `tag`, waiting up to
    /// `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] on deadline, [`NetError::Closed`] after
    /// shutdown.
    fn recv(&self, from: NodeId, tag: Tag, timeout: Duration) -> Result<Vec<u8>, NetError>;

    /// Receives the next message under `tag` from any sender.
    ///
    /// # Errors
    ///
    /// Same as [`Transport::recv`].
    fn recv_any(&self, tag: Tag, timeout: Duration) -> Result<(NodeId, Vec<u8>), NetError>;

    /// Traffic counters since creation.
    fn stats(&self) -> TransportStats;
}

struct SharedCounters {
    messages: AtomicU64,
    bytes: AtomicU64,
}

/// In-process transport: a full mesh over shared mailboxes.
///
/// Create a whole cluster at once with [`ChannelTransport::mesh`]; each
/// returned endpoint can be moved to its own thread.
pub struct ChannelTransport {
    node_id: NodeId,
    mailboxes: Arc<Vec<Arc<Mailbox>>>,
    counters: SharedCounters,
}

impl ChannelTransport {
    /// Creates a fully connected cluster of `n` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn mesh(n: usize) -> Vec<ChannelTransport> {
        assert!(n > 0, "cluster needs at least one node");
        let mailboxes: Arc<Vec<Arc<Mailbox>>> =
            Arc::new((0..n).map(|_| Arc::new(Mailbox::new())).collect());
        (0..n)
            .map(|node_id| ChannelTransport {
                node_id,
                mailboxes: Arc::clone(&mailboxes),
                counters: SharedCounters {
                    messages: AtomicU64::new(0),
                    bytes: AtomicU64::new(0),
                },
            })
            .collect()
    }

    /// Closes this endpoint's mailbox, waking any blocked receivers.
    pub fn shutdown(&self) {
        self.own_mailbox().close();
    }

    fn own_mailbox(&self) -> &Mailbox {
        // node_id < mailboxes.len() by construction in `mesh`.
        // lint: allow(no-index)
        &self.mailboxes[self.node_id]
    }
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChannelTransport(node {}/{})",
            self.node_id,
            self.mailboxes.len()
        )
    }
}

impl Transport for ChannelTransport {
    fn node_id(&self) -> NodeId {
        self.node_id
    }

    fn num_nodes(&self) -> usize {
        self.mailboxes.len()
    }

    fn send(&self, to: NodeId, tag: Tag, payload: &[u8]) -> Result<(), NetError> {
        let mailbox = self.mailboxes.get(to).ok_or(NetError::UnknownPeer(to))?;
        if mailbox.is_closed() {
            return Err(NetError::Closed);
        }
        self.counters.messages.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        mailbox.deliver(self.node_id, tag, payload.to_vec());
        Ok(())
    }

    fn recv(&self, from: NodeId, tag: Tag, timeout: Duration) -> Result<Vec<u8>, NetError> {
        if from >= self.num_nodes() {
            return Err(NetError::UnknownPeer(from));
        }
        self.own_mailbox().recv(from, tag, timeout)
    }

    fn recv_any(&self, tag: Tag, timeout: Duration) -> Result<(NodeId, Vec<u8>), NetError> {
        self.own_mailbox().recv_any(tag, timeout)
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            messages_sent: self.counters.messages.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes.load(Ordering::Relaxed),
            ..TransportStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAG: Tag = Tag(7);
    const SHORT: Duration = Duration::from_millis(100);

    #[test]
    fn mesh_roundtrip() {
        let nodes = ChannelTransport::mesh(3);
        nodes[0].send(2, TAG, b"hello").unwrap();
        let got = nodes[2].recv(0, TAG, SHORT).unwrap();
        assert_eq!(got, b"hello");
    }

    #[test]
    fn send_to_unknown_peer_fails() {
        let nodes = ChannelTransport::mesh(2);
        assert!(matches!(
            nodes[0].send(5, TAG, b"x"),
            Err(NetError::UnknownPeer(5))
        ));
        assert!(matches!(
            nodes[0].recv(5, TAG, SHORT),
            Err(NetError::UnknownPeer(5))
        ));
    }

    #[test]
    fn stats_count_sends() {
        let nodes = ChannelTransport::mesh(2);
        nodes[0].send(1, TAG, &[0u8; 10]).unwrap();
        nodes[0].send(1, TAG, &[0u8; 5]).unwrap();
        assert_eq!(
            nodes[0].stats(),
            TransportStats {
                messages_sent: 2,
                bytes_sent: 15,
                ..TransportStats::default()
            }
        );
        assert_eq!(nodes[1].stats(), TransportStats::default());
    }

    #[test]
    fn cross_thread_messaging() {
        let mut nodes = ChannelTransport::mesh(2);
        let n1 = nodes.pop().unwrap();
        let n0 = nodes.pop().unwrap();
        let handle = std::thread::spawn(move || {
            let msg = n1.recv(0, TAG, Duration::from_secs(2)).unwrap();
            n1.send(0, Tag(8), &msg).unwrap();
        });
        n0.send(1, TAG, b"ping").unwrap();
        let reply = n0.recv(1, Tag(8), Duration::from_secs(2)).unwrap();
        assert_eq!(reply, b"ping");
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_propagates_closed() {
        let nodes = ChannelTransport::mesh(2);
        nodes[1].shutdown();
        assert!(matches!(nodes[0].send(1, TAG, b"x"), Err(NetError::Closed)));
        assert!(matches!(
            nodes[1].recv(0, TAG, SHORT),
            Err(NetError::Closed)
        ));
    }

    #[test]
    fn self_send_is_allowed() {
        let nodes = ChannelTransport::mesh(1);
        nodes[0].send(0, TAG, b"loop").unwrap();
        assert_eq!(nodes[0].recv(0, TAG, SHORT).unwrap(), b"loop");
    }
}
