//! Fault-injection wrappers for resilience testing.
//!
//! Edge deployments lose packets, delay them, replay them and flip their
//! bits; [`ChaosTransport`] decorates a real transport with **seeded,
//! deterministic** versions of all four faults plus explicit per-peer
//! black-holing, so resilience tests replay identically run-to-run. The
//! historical [`LossyTransport`] name is an alias — the old drop-only
//! wrapper's API (`new`, `dropping_every`, `blackhole`, `heal`) is a
//! subset of the chaos API.
//!
//! Faults apply to the *send* side only: a wrapped endpoint mistreats its
//! own outgoing traffic, which composes cleanly when every node of a mesh
//! is wrapped. Delay is modeled deterministically as reordering — a
//! delayed message is held back and released after the next few sends —
//! so no timer threads are involved and a seeded run is exactly
//! reproducible.

use crate::error::NetError;
use crate::retry::DetRng;
use crate::transport::{NodeId, Tag, Transport, TransportStats};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::time::Duration;

/// Probabilistic fault plan for a [`ChaosTransport`], applied per outgoing
/// message. At most one fault fires per message, drawn in the order drop →
/// delay → corrupt → duplicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the fault PRNG; equal seeds replay equal fault patterns.
    pub seed: u64,
    /// Probability of silently dropping a message.
    pub drop_prob: f64,
    /// Probability of delaying (reordering) a message.
    pub delay_prob: f64,
    /// Probability of flipping one payload bit (detected by envelope CRC).
    pub corrupt_prob: f64,
    /// Probability of delivering a message twice.
    pub duplicate_prob: f64,
    /// A delayed message is released after `1..=max_delay_msgs` subsequent
    /// sends by this endpoint.
    pub max_delay_msgs: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            drop_prob: 0.0,
            delay_prob: 0.0,
            corrupt_prob: 0.0,
            duplicate_prob: 0.0,
            max_delay_msgs: 3,
        }
    }
}

/// The fate the probabilistic fault plan assigns to one offered message.
///
/// This is the *model* of [`ChaosTransport`]'s per-send decision, exported
/// so that offline tools (the `cargo xtask mc` fault adversary) can prove
/// their fault semantics match the runtime byte-for-byte. Blackholing and
/// the legacy periodic `drop_every` fault are **not** part of the
/// probabilistic plan: they short-circuit before any RNG draw and consume
/// no randomness, which is exactly why [`plan_fates`] can replay the RNG
/// stream from the seed alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultFate {
    /// Delivered unchanged.
    Deliver,
    /// Silently dropped.
    Drop,
    /// Held back and released after `hold` further offers by this endpoint.
    Delay {
        /// Offers to wait before release (`release_at = offered + hold`).
        hold: u64,
    },
    /// One payload bit flipped (global bit index into the payload bytes).
    Corrupt {
        /// Which bit is flipped: byte `bit / 8`, mask `1 << (bit % 8)`.
        bit: u64,
    },
    /// Delivered twice back-to-back.
    Duplicate,
}

/// Draws the fate for the next offered message. Exactly one fault fires
/// per message, drawn in the order drop → delay → corrupt → duplicate;
/// the corrupt draw is skipped entirely for empty payloads (no bit to
/// flip), preserving the RNG stream shape of the runtime path.
fn next_fate(rng: &mut DetRng, config: &ChaosConfig, payload_len: usize) -> FaultFate {
    if rng.chance(config.drop_prob) {
        FaultFate::Drop
    } else if rng.chance(config.delay_prob) {
        let hold = 1 + rng.below(config.max_delay_msgs.max(1));
        FaultFate::Delay { hold }
    } else if payload_len > 0 && rng.chance(config.corrupt_prob) {
        let bit = rng.below(payload_len as u64 * 8);
        FaultFate::Corrupt { bit }
    } else if rng.chance(config.duplicate_prob) {
        FaultFate::Duplicate
    } else {
        FaultFate::Deliver
    }
}

/// Replays the probabilistic fault plan for a whole schedule of offered
/// messages (identified only by their payload lengths, which gate the
/// corrupt draw) and returns the fate of each. A [`ChaosTransport`] built
/// from the same `config` assigns exactly these fates to its first
/// `payload_lens.len()` sends, provided no blackhole or `drop_every`
/// fault preempts the draw.
pub fn plan_fates(config: &ChaosConfig, payload_lens: &[usize]) -> Vec<FaultFate> {
    let mut rng = DetRng::new(config.seed);
    payload_lens
        .iter()
        .map(|&len| next_fate(&mut rng, config, len))
        .collect()
}

/// A message held back by the delay fault, due once `release_at` sends
/// have happened.
struct Delayed {
    release_at: u64,
    to: NodeId,
    tag: Tag,
    payload: Vec<u8>,
}

#[derive(Default)]
struct FaultCounters {
    dropped: u64,
    delayed: u64,
    corrupted: u64,
    duplicated: u64,
}

struct ChaosState {
    rng: DetRng,
    /// Messages offered to `send` so far (fault decisions are per-offer).
    offered: u64,
    pending: Vec<Delayed>,
    counters: FaultCounters,
}

/// A transport decorator injecting seeded drop / delay / corruption /
/// duplication faults and explicit per-peer black-holing.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    config: ChaosConfig,
    /// Drop every `drop_every`-th message (0 = disabled); the legacy
    /// deterministic-periodic fault, still useful for exact-count tests.
    drop_every: u64,
    /// Ordered set: membership tests only today, but the `det-map` audit
    /// rule keeps unordered collections out of protocol paths wholesale.
    blackholed: Mutex<BTreeSet<NodeId>>,
    state: Mutex<ChaosState>,
}

/// Backwards-compatible name for the drop-only fault wrapper: the chaos
/// layer with no probabilistic faults configured.
pub type LossyTransport<T> = ChaosTransport<T>;

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` with no faults configured (blackhole/heal still work).
    pub fn new(inner: T) -> Self {
        Self::with_config(inner, ChaosConfig::default())
    }

    /// Wraps `inner` with the given probabilistic fault plan.
    pub fn with_config(inner: T, config: ChaosConfig) -> Self {
        let seed = config.seed;
        ChaosTransport {
            inner,
            config,
            drop_every: 0,
            blackholed: Mutex::new(BTreeSet::new()),
            state: Mutex::new(ChaosState {
                rng: DetRng::new(seed),
                offered: 0,
                pending: Vec::new(),
                counters: FaultCounters::default(),
            }),
        }
    }

    /// Drops every `n`-th outgoing message (1 = drop everything).
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] if `n == 0`; use
    /// [`ChaosTransport::new`] for a fault-free wrapper.
    pub fn dropping_every(inner: T, n: u64) -> Result<Self, NetError> {
        if n == 0 {
            return Err(NetError::InvalidConfig(
                "drop_every must be positive (every 0th message is meaningless)".into(),
            ));
        }
        let mut wrapper = Self::new(inner);
        wrapper.drop_every = n;
        Ok(wrapper)
    }

    /// Starts black-holing all traffic towards `peer` (simulates the peer
    /// walking out of WiFi range).
    pub fn blackhole(&self, peer: NodeId) {
        self.blackholed.lock().insert(peer);
    }

    /// Restores delivery towards `peer`.
    pub fn heal(&self, peer: NodeId) {
        self.blackholed.lock().remove(&peer);
    }

    /// Access to the wrapped transport (e.g. for a fault-free control
    /// channel in tests).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Releases every delayed message immediately (end-of-test drain so
    /// nothing is stranded in the reorder buffer).
    pub fn flush(&self) {
        let drained: Vec<Delayed> = {
            let mut state = self.state.lock();
            state.pending.drain(..).collect()
        };
        for msg in drained {
            let _ = self.inner.send(msg.to, msg.tag, &msg.payload);
        }
    }

    /// Sends any pending messages whose release point has passed.
    fn release_due(&self, now: u64) {
        let due: Vec<Delayed> = {
            let mut state = self.state.lock();
            let mut due = Vec::new();
            let mut i = 0;
            while i < state.pending.len() {
                if state.pending.get(i).is_some_and(|m| m.release_at <= now) {
                    due.push(state.pending.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            due
        };
        for msg in due {
            // Best effort: a delayed message racing shutdown just vanishes,
            // which is exactly what real in-flight packets do.
            let _ = self.inner.send(msg.to, msg.tag, &msg.payload);
        }
    }
}

impl<T: Transport> std::fmt::Debug for ChaosTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChaosTransport(node {}, seed {}, drop_every {})",
            self.inner.node_id(),
            self.config.seed,
            self.drop_every
        )
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn send(&self, to: NodeId, tag: Tag, payload: &[u8]) -> Result<(), NetError> {
        let (fate, offered) = {
            let mut state = self.state.lock();
            state.offered += 1;
            let offered = state.offered;
            // Blackhole / periodic drops preempt the probabilistic plan
            // without consuming an RNG draw (see `FaultFate` docs).
            let fate = if self.blackholed.lock().contains(&to) {
                FaultFate::Drop
            } else if self.drop_every > 0 && offered.is_multiple_of(self.drop_every) {
                FaultFate::Drop
            } else {
                next_fate(&mut state.rng, &self.config, payload.len())
            };
            match fate {
                FaultFate::Deliver => {}
                FaultFate::Drop => state.counters.dropped += 1,
                FaultFate::Delay { hold } => {
                    state.counters.delayed += 1;
                    state.pending.push(Delayed {
                        release_at: offered + hold,
                        to,
                        tag,
                        payload: payload.to_vec(),
                    });
                }
                FaultFate::Corrupt { .. } => state.counters.corrupted += 1,
                FaultFate::Duplicate => state.counters.duplicated += 1,
            }
            (fate, offered)
        };
        self.release_due(offered);
        match fate {
            FaultFate::Deliver => self.inner.send(to, tag, payload),
            FaultFate::Drop | FaultFate::Delay { .. } => Ok(()),
            FaultFate::Corrupt { bit } => {
                let mut mutated = payload.to_vec();
                if let Some(byte) = mutated.get_mut((bit / 8) as usize) {
                    *byte ^= 1 << (bit % 8);
                }
                self.inner.send(to, tag, &mutated)
            }
            FaultFate::Duplicate => {
                self.inner.send(to, tag, payload)?;
                self.inner.send(to, tag, payload)
            }
        }
    }

    fn recv(&self, from: NodeId, tag: Tag, timeout: Duration) -> Result<Vec<u8>, NetError> {
        self.inner.recv(from, tag, timeout)
    }

    fn recv_any(&self, tag: Tag, timeout: Duration) -> Result<(NodeId, Vec<u8>), NetError> {
        self.inner.recv_any(tag, timeout)
    }

    fn stats(&self) -> TransportStats {
        let inner = self.inner.stats();
        let state = self.state.lock();
        TransportStats {
            messages_dropped: inner.messages_dropped + state.counters.dropped,
            messages_delayed: inner.messages_delayed + state.counters.delayed,
            messages_corrupted: inner.messages_corrupted + state.counters.corrupted,
            messages_duplicated: inner.messages_duplicated + state.counters.duplicated,
            ..inner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;

    const TAG: Tag = Tag(3);
    const SHORT: Duration = Duration::from_millis(50);

    #[test]
    fn blackhole_drops_and_heal_restores() {
        let mut nodes = ChannelTransport::mesh(2);
        let receiver = nodes.pop().unwrap();
        let lossy = LossyTransport::new(nodes.pop().unwrap());

        lossy.blackhole(1);
        lossy.send(1, TAG, b"lost").unwrap();
        assert!(matches!(
            receiver.recv(0, TAG, SHORT),
            Err(NetError::Timeout { .. })
        ));
        assert_eq!(lossy.stats().messages_dropped, 1);

        lossy.heal(1);
        lossy.send(1, TAG, b"found").unwrap();
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), b"found");
    }

    #[test]
    fn periodic_drops() {
        let mut nodes = ChannelTransport::mesh(2);
        let receiver = nodes.pop().unwrap();
        let lossy = LossyTransport::dropping_every(nodes.pop().unwrap(), 2).unwrap();
        for i in 0..4u8 {
            lossy.send(1, TAG, &[i]).unwrap();
        }
        // Messages 2 and 4 (1-indexed) were dropped.
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), vec![0]);
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), vec![2]);
        assert!(matches!(
            receiver.recv(0, TAG, SHORT),
            Err(NetError::Timeout { .. })
        ));
        assert_eq!(lossy.stats().messages_dropped, 2);
    }

    #[test]
    fn dropping_every_zero_is_invalid_config() {
        let mut nodes = ChannelTransport::mesh(1);
        let res = LossyTransport::dropping_every(nodes.pop().unwrap(), 0);
        assert!(matches!(res, Err(NetError::InvalidConfig(_))));
    }

    #[test]
    fn passthrough_when_no_faults() {
        let mut nodes = ChannelTransport::mesh(2);
        let receiver = nodes.pop().unwrap();
        let lossy = LossyTransport::new(nodes.pop().unwrap());
        lossy.send(1, TAG, b"clean").unwrap();
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), b"clean");
        assert_eq!(lossy.node_id(), 0);
        assert_eq!(lossy.num_nodes(), 2);
        assert_eq!(lossy.stats().messages_dropped, 0);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut nodes = ChannelTransport::mesh(2);
        let receiver = nodes.pop().unwrap();
        let chaos = ChaosTransport::with_config(
            nodes.pop().unwrap(),
            ChaosConfig {
                duplicate_prob: 1.0,
                ..ChaosConfig::default()
            },
        );
        chaos.send(1, TAG, b"echo").unwrap();
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), b"echo");
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), b"echo");
        assert_eq!(chaos.stats().messages_duplicated, 1);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut nodes = ChannelTransport::mesh(2);
        let receiver = nodes.pop().unwrap();
        let chaos = ChaosTransport::with_config(
            nodes.pop().unwrap(),
            ChaosConfig {
                corrupt_prob: 1.0,
                seed: 5,
                ..ChaosConfig::default()
            },
        );
        let original = vec![0u8; 16];
        chaos.send(1, TAG, &original).unwrap();
        let got = receiver.recv(0, TAG, SHORT).unwrap();
        let flipped: u32 = got
            .iter()
            .zip(&original)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(chaos.stats().messages_corrupted, 1);
    }

    #[test]
    fn delay_reorders_then_flush_drains() {
        let mut nodes = ChannelTransport::mesh(2);
        let receiver = nodes.pop().unwrap();
        // Seeded so the first message is delayed, later ones pass: with
        // delay_prob 1.0 every send is held, so release only happens via
        // subsequent send offers or flush().
        let chaos = ChaosTransport::with_config(
            nodes.pop().unwrap(),
            ChaosConfig {
                delay_prob: 1.0,
                max_delay_msgs: 1,
                ..ChaosConfig::default()
            },
        );
        chaos.send(1, TAG, b"first").unwrap();
        // Held: nothing delivered yet.
        assert!(receiver.recv(0, TAG, SHORT).is_err());
        // Next offer releases the first (release_at = 1 + 1 = 2).
        chaos.send(1, TAG, b"second").unwrap();
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), b"first");
        chaos.flush();
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), b"second");
        assert_eq!(chaos.stats().messages_delayed, 2);
    }

    #[test]
    fn plan_fates_predicts_send_counters() {
        // The exported plan must account for every probabilistic fate the
        // live transport assigns, including the empty-payload corrupt
        // short-circuit (frame 7 below is empty).
        let config = ChaosConfig {
            seed: 42,
            drop_prob: 0.25,
            delay_prob: 0.25,
            corrupt_prob: 0.25,
            duplicate_prob: 0.25,
            max_delay_msgs: 2,
            ..ChaosConfig::default()
        };
        let payloads: Vec<Vec<u8>> = (0..24u8)
            .map(|i| {
                if i == 7 {
                    Vec::new()
                } else {
                    vec![i; 1 + i as usize]
                }
            })
            .collect();
        let lens: Vec<usize> = payloads.iter().map(Vec::len).collect();
        let plan = plan_fates(&config, &lens);

        let mut nodes = ChannelTransport::mesh(2);
        let _receiver = nodes.pop().unwrap();
        let chaos = ChaosTransport::with_config(nodes.pop().unwrap(), config);
        for p in &payloads {
            chaos.send(1, TAG, p).unwrap();
        }
        let count = |f: fn(&FaultFate) -> bool| plan.iter().filter(|x| f(x)).count() as u64;
        let stats = chaos.stats();
        assert_eq!(stats.messages_dropped, count(|f| *f == FaultFate::Drop));
        assert_eq!(
            stats.messages_delayed,
            count(|f| matches!(f, FaultFate::Delay { .. }))
        );
        assert_eq!(
            stats.messages_corrupted,
            count(|f| matches!(f, FaultFate::Corrupt { .. }))
        );
        assert_eq!(
            stats.messages_duplicated,
            count(|f| *f == FaultFate::Duplicate)
        );
        // A fault plan this dense on a mixed schedule should exercise
        // every variant; if not, the test inputs need rework.
        assert!(plan.contains(&FaultFate::Deliver));
    }

    #[test]
    fn same_seed_replays_same_fault_pattern() {
        let deliveries = |seed: u64| -> Vec<Option<Vec<u8>>> {
            let mut nodes = ChannelTransport::mesh(2);
            let receiver = nodes.pop().unwrap();
            let chaos = ChaosTransport::with_config(
                nodes.pop().unwrap(),
                ChaosConfig {
                    seed,
                    drop_prob: 0.3,
                    delay_prob: 0.3,
                    duplicate_prob: 0.2,
                    ..ChaosConfig::default()
                },
            );
            for i in 0..20u8 {
                chaos.send(1, TAG, &[i]).unwrap();
            }
            chaos.flush();
            (0..30)
                .map(|_| receiver.recv(0, TAG, Duration::from_millis(5)).ok())
                .collect()
        };
        assert_eq!(deliveries(11), deliveries(11));
        assert_ne!(deliveries(11), deliveries(12));
    }
}
