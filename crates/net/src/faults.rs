//! Fault-injection wrappers for resilience testing.
//!
//! Edge deployments lose packets and peers; the integration tests wrap a
//! real transport in [`LossyTransport`] to verify the runtime degrades
//! gracefully (timeouts surface as errors, no hangs, no panics).

use crate::error::NetError;
use crate::transport::{NodeId, Tag, Transport, TransportStats};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::time::Duration;

/// A transport decorator that silently drops configured traffic.
pub struct LossyTransport<T: Transport> {
    inner: T,
    /// Destinations whose outgoing messages are dropped.
    blackholed: Mutex<HashSet<NodeId>>,
    /// Drop every `drop_every`-th message (0 = disabled).
    drop_every: u64,
    sent: Mutex<u64>,
}

impl<T: Transport> LossyTransport<T> {
    /// Wraps `inner` with no faults configured.
    pub fn new(inner: T) -> Self {
        LossyTransport {
            inner,
            blackholed: Mutex::new(HashSet::new()),
            drop_every: 0,
            sent: Mutex::new(0),
        }
    }

    /// Drops every `n`-th outgoing message (1 = drop everything).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; use [`LossyTransport::new`] for a fault-free
    /// wrapper.
    pub fn dropping_every(inner: T, n: u64) -> Self {
        assert!(n > 0, "drop_every must be positive");
        LossyTransport {
            inner,
            blackholed: Mutex::new(HashSet::new()),
            drop_every: n,
            sent: Mutex::new(0),
        }
    }

    /// Starts black-holing all traffic towards `peer` (simulates the peer
    /// walking out of WiFi range).
    pub fn blackhole(&self, peer: NodeId) {
        self.blackholed.lock().insert(peer);
    }

    /// Restores delivery towards `peer`.
    pub fn heal(&self, peer: NodeId) {
        self.blackholed.lock().remove(&peer);
    }

    /// Access to the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> std::fmt::Debug for LossyTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LossyTransport(node {}, drop_every {})",
            self.inner.node_id(),
            self.drop_every
        )
    }
}

impl<T: Transport> Transport for LossyTransport<T> {
    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn send(&self, to: NodeId, tag: Tag, payload: &[u8]) -> Result<(), NetError> {
        if self.blackholed.lock().contains(&to) {
            return Ok(()); // silently dropped: the peer just never hears it
        }
        if self.drop_every > 0 {
            let mut sent = self.sent.lock();
            *sent += 1;
            if (*sent).is_multiple_of(self.drop_every) {
                return Ok(());
            }
        }
        self.inner.send(to, tag, payload)
    }

    fn recv(&self, from: NodeId, tag: Tag, timeout: Duration) -> Result<Vec<u8>, NetError> {
        self.inner.recv(from, tag, timeout)
    }

    fn recv_any(&self, tag: Tag, timeout: Duration) -> Result<(NodeId, Vec<u8>), NetError> {
        self.inner.recv_any(tag, timeout)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;

    const TAG: Tag = Tag(3);
    const SHORT: Duration = Duration::from_millis(50);

    #[test]
    fn blackhole_drops_and_heal_restores() {
        let mut nodes = ChannelTransport::mesh(2);
        let receiver = nodes.pop().unwrap();
        let lossy = LossyTransport::new(nodes.pop().unwrap());

        lossy.blackhole(1);
        lossy.send(1, TAG, b"lost").unwrap();
        assert!(matches!(
            receiver.recv(0, TAG, SHORT),
            Err(NetError::Timeout { .. })
        ));

        lossy.heal(1);
        lossy.send(1, TAG, b"found").unwrap();
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), b"found");
    }

    #[test]
    fn periodic_drops() {
        let mut nodes = ChannelTransport::mesh(2);
        let receiver = nodes.pop().unwrap();
        let lossy = LossyTransport::dropping_every(nodes.pop().unwrap(), 2);
        for i in 0..4u8 {
            lossy.send(1, TAG, &[i]).unwrap();
        }
        // Messages 2 and 4 (1-indexed) were dropped.
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), vec![0]);
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), vec![2]);
        assert!(matches!(
            receiver.recv(0, TAG, SHORT),
            Err(NetError::Timeout { .. })
        ));
    }

    #[test]
    fn passthrough_when_no_faults() {
        let mut nodes = ChannelTransport::mesh(2);
        let receiver = nodes.pop().unwrap();
        let lossy = LossyTransport::new(nodes.pop().unwrap());
        lossy.send(1, TAG, b"clean").unwrap();
        assert_eq!(receiver.recv(0, TAG, SHORT).unwrap(), b"clean");
        assert_eq!(lossy.node_id(), 0);
        assert_eq!(lossy.num_nodes(), 2);
    }
}
