//! A minimal unary RPC layer — the stand-in for gRPC in the paper's
//! SG-MoE-G configuration.
//!
//! Requests carry `request_id | method | payload`; responses echo the
//! request id with either a payload or an error string. The server loop
//! ([`serve`]) dispatches to a handler closure until asked to stop, and
//! [`RpcClient`] issues blocking calls.

use crate::error::NetError;
use crate::transport::{NodeId, Tag, Transport};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tag carrying RPC requests.
pub const RPC_REQUEST: Tag = Tag(0xC100_0000);
/// Tag carrying RPC responses.
pub const RPC_RESPONSE: Tag = Tag(0xC100_0001);

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

fn encode_request(request_id: u64, method: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.extend_from_slice(&request_id.to_le_bytes());
    buf.extend_from_slice(&method.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

fn decode_request(bytes: &[u8]) -> Result<(u64, u32, &[u8]), NetError> {
    let malformed = || NetError::Malformed(format!("rpc request of {} bytes", bytes.len()));
    let (id_bytes, rest) = bytes.split_first_chunk::<8>().ok_or_else(malformed)?;
    let (method_bytes, payload) = rest.split_first_chunk::<4>().ok_or_else(malformed)?;
    Ok((
        u64::from_le_bytes(*id_bytes),
        u32::from_le_bytes(*method_bytes),
        payload,
    ))
}

fn encode_response(request_id: u64, result: &Result<Vec<u8>, String>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(9);
    buf.extend_from_slice(&request_id.to_le_bytes());
    match result {
        Ok(payload) => {
            buf.push(STATUS_OK);
            buf.extend_from_slice(payload);
        }
        Err(msg) => {
            buf.push(STATUS_ERR);
            buf.extend_from_slice(msg.as_bytes());
        }
    }
    buf
}

fn decode_response(bytes: &[u8]) -> Result<(u64, Result<Vec<u8>, String>), NetError> {
    let malformed = || NetError::Malformed(format!("rpc response of {} bytes", bytes.len()));
    let (id_bytes, rest) = bytes.split_first_chunk::<8>().ok_or_else(malformed)?;
    let (&status, body) = rest.split_first().ok_or_else(malformed)?;
    let request_id = u64::from_le_bytes(*id_bytes);
    let result = match status {
        STATUS_OK => Ok(body.to_vec()),
        STATUS_ERR => Err(String::from_utf8_lossy(body).into_owned()),
        other => return Err(NetError::Malformed(format!("unknown rpc status {other}"))),
    };
    Ok((request_id, result))
}

/// Client side of the RPC layer.
///
/// Calls are matched to responses by request id, so one client may be used
/// from one thread at a time (clone the transport's endpoint per thread for
/// concurrency).
pub struct RpcClient<'a> {
    transport: &'a dyn Transport,
    timeout: Duration,
    next_id: AtomicU64,
}

impl<'a> RpcClient<'a> {
    /// Creates a client with a 30 s call timeout.
    pub fn new(transport: &'a dyn Transport) -> Self {
        RpcClient {
            transport,
            timeout: Duration::from_secs(30),
            next_id: AtomicU64::new(1),
        }
    }

    /// Creates a client with a custom call timeout.
    pub fn with_timeout(transport: &'a dyn Transport, timeout: Duration) -> Self {
        RpcClient {
            transport,
            timeout,
            next_id: AtomicU64::new(1),
        }
    }

    /// Issues a blocking unary call of `method` on node `to`.
    ///
    /// # Errors
    ///
    /// * [`NetError::Remote`] if the handler returned an error;
    /// * [`NetError::Timeout`] if no response arrived in time;
    /// * transport errors otherwise.
    pub fn call(&self, to: NodeId, method: u32, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.transport.send(
            to,
            RPC_REQUEST,
            &encode_request(request_id, method, payload),
        )?;
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(NetError::Timeout {
                    waiting_for: format!("rpc response {request_id}"),
                });
            }
            let bytes = self.transport.recv(to, RPC_RESPONSE, remaining)?;
            let (rid, result) = decode_response(&bytes)?;
            if rid != request_id {
                // Stale response from an earlier timed-out call; skip it.
                continue;
            }
            return result.map_err(NetError::Remote);
        }
    }
}

impl std::fmt::Debug for RpcClient<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RpcClient(node {})", self.transport.node_id())
    }
}

/// Handle to stop a running [`serve`] loop.
#[derive(Debug, Clone, Default)]
pub struct ServerControl {
    stop: Arc<AtomicBool>,
}

impl ServerControl {
    /// Creates a control handle in the running state.
    pub fn new() -> Self {
        ServerControl {
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Asks the server loop to exit after its current poll interval.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// True once [`ServerControl::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// Runs an RPC server loop on `transport`, dispatching every request to
/// `handler(from, method, payload)` until `control.stop()` is called.
///
/// Handler errors are reported back to the caller as
/// [`NetError::Remote`]; they do not stop the loop.
///
/// # Errors
///
/// Returns early only on transport failure (closed mailbox).
pub fn serve(
    transport: &dyn Transport,
    control: &ServerControl,
    mut handler: impl FnMut(NodeId, u32, &[u8]) -> Result<Vec<u8>, String>,
) -> Result<(), NetError> {
    const POLL: Duration = Duration::from_millis(50);
    while !control.is_stopped() {
        match transport.recv_any(RPC_REQUEST, POLL) {
            Ok((from, bytes)) => {
                let (request_id, method, payload) = match decode_request(&bytes) {
                    Ok(parts) => parts,
                    Err(_) => continue, // drop malformed requests
                };
                let result = handler(from, method, payload);
                transport.send(from, RPC_RESPONSE, &encode_response(request_id, &result))?;
            }
            Err(NetError::Timeout { .. }) => continue,
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use crossbeam::thread;

    #[test]
    fn request_codec_roundtrip() {
        let buf = encode_request(42, 7, b"abc");
        let (id, method, payload) = decode_request(&buf).unwrap();
        assert_eq!((id, method, payload), (42, 7, &b"abc"[..]));
        assert!(matches!(
            decode_request(&buf[..5]),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn response_codec_roundtrip() {
        let ok = encode_response(1, &Ok(b"yes".to_vec()));
        assert_eq!(decode_response(&ok).unwrap(), (1, Ok(b"yes".to_vec())));
        let err = encode_response(2, &Err("boom".to_string()));
        assert_eq!(decode_response(&err).unwrap(), (2, Err("boom".to_string())));
        assert!(matches!(
            decode_response(&[0; 3]),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn call_and_response() {
        let nodes = ChannelTransport::mesh(2);
        let control = ServerControl::new();
        let control2 = control.clone();
        thread::scope(|scope| {
            scope.spawn(|_| {
                serve(&nodes[1], &control2, |from, method, payload| {
                    assert_eq!(from, 0);
                    let mut out = payload.to_vec();
                    out.push(method as u8);
                    Ok(out)
                })
                .unwrap();
            });
            let client = RpcClient::new(&nodes[0]);
            let reply = client.call(1, 9, b"hi").unwrap();
            assert_eq!(reply, b"hi\x09");
            let reply2 = client.call(1, 1, b"again").unwrap();
            assert_eq!(reply2, b"again\x01");
            control.stop();
        })
        .unwrap();
    }

    #[test]
    fn handler_errors_surface_as_remote() {
        let nodes = ChannelTransport::mesh(2);
        let control = ServerControl::new();
        let control2 = control.clone();
        thread::scope(|scope| {
            scope.spawn(|_| {
                serve(&nodes[1], &control2, |_, _, _| Err("nope".to_string())).unwrap();
            });
            let client = RpcClient::new(&nodes[0]);
            let err = client.call(1, 0, b"").unwrap_err();
            assert!(
                matches!(err, NetError::Remote(ref m) if m == "nope"),
                "{err}"
            );
            control.stop();
        })
        .unwrap();
    }

    #[test]
    fn call_times_out_without_server() {
        let nodes = ChannelTransport::mesh(2);
        let client = RpcClient::with_timeout(&nodes[0], Duration::from_millis(50));
        assert!(matches!(
            client.call(1, 0, b""),
            Err(NetError::Timeout { .. })
        ));
    }

    #[test]
    fn rpc_over_tcp() {
        let nodes = crate::tcp::TcpTransport::mesh_localhost(2).unwrap();
        let control = ServerControl::new();
        let control2 = control.clone();
        thread::scope(|scope| {
            scope.spawn(|_| {
                serve(&nodes[1], &control2, |_, _, payload| {
                    Ok(payload.iter().rev().copied().collect())
                })
                .unwrap();
            });
            let client = RpcClient::new(&nodes[0]);
            assert_eq!(client.call(1, 0, b"abc").unwrap(), b"cba");
            control.stop();
        })
        .unwrap();
    }
}
