//! A tag-and-sender-matched mailbox shared by every transport.
//!
//! MPI-style point-to-point semantics need messages matched on
//! `(source, tag)` rather than FIFO over the whole link; the mailbox is the
//! single queueing structure both the in-process and the TCP transports
//! deliver into.

use crate::error::NetError;
use crate::transport::{NodeId, Tag};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Keyed by `(source, tag)`. A `BTreeMap` rather than a hash map so that
/// [`Mailbox::recv_any`] scans candidates in a fixed (node, tag) order —
/// with a hash map, which sender wins a `recv_any` race depended on
/// hasher state, an unseeded source of run-to-run nondeterminism the
/// `det-map` audit pass now rejects in protocol paths.
#[derive(Default)]
struct Queues {
    by_key: BTreeMap<(NodeId, Tag), VecDeque<Vec<u8>>>,
}

/// A blocking, condvar-signalled multi-queue of incoming messages.
pub struct Mailbox {
    queues: Mutex<Queues>,
    available: Condvar,
    closed: AtomicBool,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox::new()
    }
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            queues: Mutex::new(Queues::default()),
            available: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    /// Delivers a message from `from` with `tag`.
    pub fn deliver(&self, from: NodeId, tag: Tag, payload: Vec<u8>) {
        let mut queues = self.queues.lock();
        queues
            .by_key
            .entry((from, tag))
            .or_default()
            .push_back(payload);
        drop(queues);
        self.available.notify_all();
    }

    /// Marks the mailbox closed; pending and future receives fail with
    /// [`NetError::Closed`] once drained.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    /// True once [`Mailbox::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Blocks until a message from `from` with `tag` arrives, up to
    /// `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] on deadline, [`NetError::Closed`] if the
    /// mailbox closes while (or before) waiting with no matching message.
    pub fn recv(&self, from: NodeId, tag: Tag, timeout: Duration) -> Result<Vec<u8>, NetError> {
        // Receive timeouts are wall-clock by design: the condvar can only
        // wait on real time, and the caller's *deadline budgeting* (the
        // deterministic part) happens upstream on an injected Clock.
        // lint: allow(det-clock)
        let deadline = Instant::now() + timeout;
        let mut queues = self.queues.lock();
        loop {
            if let Some(q) = queues.by_key.get_mut(&(from, tag)) {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
            }
            if self.is_closed() {
                return Err(NetError::Closed);
            }
            // Same wall-clock contract as the deadline above.
            // lint: allow(det-clock)
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout {
                    waiting_for: format!("message from node {from} tag {}", tag.0),
                });
            }
            self.available.wait_until(&mut queues, deadline);
        }
    }

    /// Blocks until a message with `tag` arrives from *any* sender.
    ///
    /// # Errors
    ///
    /// Same as [`Mailbox::recv`].
    pub fn recv_any(&self, tag: Tag, timeout: Duration) -> Result<(NodeId, Vec<u8>), NetError> {
        // Wall-clock receive deadline, as in `recv`. lint: allow(det-clock)
        let deadline = Instant::now() + timeout;
        let mut queues = self.queues.lock();
        loop {
            // BTreeMap order: ties between waiting senders resolve to the
            // lowest (node, tag) key, deterministically.
            let hit = queues
                .by_key
                .iter_mut()
                .find(|((_, t), queue)| *t == tag && !queue.is_empty())
                .and_then(|(&(from, _), queue)| queue.pop_front().map(|msg| (from, msg)));
            if let Some(hit) = hit {
                return Ok(hit);
            }
            if self.is_closed() {
                return Err(NetError::Closed);
            }
            // Same wall-clock contract. lint: allow(det-clock)
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout {
                    waiting_for: format!("any message with tag {}", tag.0),
                });
            }
            self.available.wait_until(&mut queues, deadline);
        }
    }

    /// Number of queued messages across all keys (diagnostics).
    pub fn pending(&self) -> usize {
        self.queues.lock().by_key.values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const TAG: Tag = Tag(1);

    #[test]
    fn deliver_then_recv() {
        let mb = Mailbox::new();
        mb.deliver(3, TAG, vec![1, 2, 3]);
        assert_eq!(
            mb.recv(3, TAG, Duration::from_millis(10)).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn recv_matches_sender_and_tag() {
        let mb = Mailbox::new();
        mb.deliver(1, Tag(9), vec![9]);
        mb.deliver(2, TAG, vec![2]);
        mb.deliver(1, TAG, vec![1]);
        assert_eq!(mb.recv(1, TAG, Duration::from_millis(10)).unwrap(), vec![1]);
        assert_eq!(mb.recv(2, TAG, Duration::from_millis(10)).unwrap(), vec![2]);
        assert_eq!(
            mb.recv(1, Tag(9), Duration::from_millis(10)).unwrap(),
            vec![9]
        );
    }

    #[test]
    fn recv_preserves_fifo_per_key() {
        let mb = Mailbox::new();
        mb.deliver(0, TAG, vec![1]);
        mb.deliver(0, TAG, vec![2]);
        assert_eq!(mb.recv(0, TAG, Duration::from_millis(10)).unwrap(), vec![1]);
        assert_eq!(mb.recv(0, TAG, Duration::from_millis(10)).unwrap(), vec![2]);
    }

    #[test]
    fn recv_times_out() {
        let mb = Mailbox::new();
        let err = mb.recv(0, TAG, Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }));
    }

    #[test]
    fn recv_any_tie_break_is_lowest_sender_first() {
        // With several senders waiting, recv_any must drain them in key
        // order — the same order every run (no hasher-dependent winner).
        let mb = Mailbox::new();
        for from in [9, 2, 7, 0] {
            mb.deliver(from, TAG, vec![from as u8]);
        }
        let order: Vec<NodeId> = (0..4)
            .map(|_| mb.recv_any(TAG, Duration::from_millis(10)).unwrap().0)
            .collect();
        assert_eq!(order, vec![0, 2, 7, 9]);
    }

    #[test]
    fn recv_any_returns_sender() {
        let mb = Mailbox::new();
        mb.deliver(5, TAG, vec![7]);
        let (from, msg) = mb.recv_any(TAG, Duration::from_millis(10)).unwrap();
        assert_eq!(from, 5);
        assert_eq!(msg, vec![7]);
    }

    #[test]
    fn blocked_recv_wakes_on_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv(1, TAG, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        mb.deliver(1, TAG, vec![42]);
        assert_eq!(handle.join().unwrap().unwrap(), vec![42]);
    }

    #[test]
    fn close_unblocks_waiters() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv(1, TAG, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        mb.close();
        assert!(matches!(handle.join().unwrap(), Err(NetError::Closed)));
    }

    #[test]
    fn pending_counts_messages() {
        let mb = Mailbox::new();
        assert_eq!(mb.pending(), 0);
        mb.deliver(0, TAG, vec![]);
        mb.deliver(1, Tag(2), vec![]);
        assert_eq!(mb.pending(), 2);
    }
}
