//! Wire codecs: length-prefixed frames and raw `f32` payloads.
//!
//! The frame layout is `src: u32 | tag: u32 | len: u32 | payload`, all
//! little-endian. Activations and model weights travel as raw `f32` slices
//! with a dimension header, which is what makes the byte counts in the
//! traffic statistics physically meaningful.

use crate::error::NetError;
use crate::transport::{NodeId, Tag};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::Read;

/// Upper bound on a single frame payload (guards against malformed length
/// headers taking down a node).
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

/// Size of the fixed frame header in bytes.
pub const FRAME_HEADER_LEN: usize = 12;

/// A decoded frame: `(source node, tag, payload)`.
pub type Frame = (NodeId, Tag, Bytes);

/// Encodes a frame into a fresh buffer.
///
/// # Panics
///
/// Panics if `src` does not fit the `u32` header field or the payload
/// exceeds [`MAX_FRAME_LEN`] — both are sender-side programming errors
/// that would otherwise truncate on the wire and mis-frame every byte
/// that follows.
pub fn encode_frame(src: NodeId, tag: Tag, payload: &[u8]) -> BytesMut {
    assert!(
        u32::try_from(src).is_ok(),
        "node id {src} does not fit the u32 frame header"
    );
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "payload of {} bytes exceeds MAX_FRAME_LEN",
        payload.len()
    );
    let mut buf = BytesMut::with_capacity(FRAME_HEADER_LEN + payload.len());
    // In range by the asserts above. lint: allow(cast-truncate)
    buf.put_u32_le(src as u32);
    buf.put_u32_le(tag.0);
    // MAX_FRAME_LEN < u32::MAX, asserted above. lint: allow(cast-truncate)
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    buf
}

/// Reads exactly one frame from a blocking reader.
///
/// # Errors
///
/// * [`NetError::Closed`] on clean EOF at a frame boundary;
/// * [`NetError::Malformed`] for an oversized length header or EOF inside a
///   frame;
/// * [`NetError::Io`] for transport errors.
pub fn read_frame(reader: &mut impl Read) -> Result<Frame, NetError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Distinguish clean EOF (no bytes) from a truncated header.
    let mut filled = 0usize;
    while filled < FRAME_HEADER_LEN {
        // filled < FRAME_HEADER_LEN by the loop condition. lint: allow(no-index)
        let n = reader.read(&mut header[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Err(NetError::Closed)
            } else {
                Err(NetError::Malformed(format!(
                    "eof after {filled} header bytes"
                )))
            };
        }
        filled += n;
    }
    let mut cursor = header.as_slice();
    let src = cursor.get_u32_le() as NodeId;
    let tag = Tag(cursor.get_u32_le());
    let len = cursor.get_u32_le() as usize;
    if len > MAX_FRAME_LEN {
        return Err(NetError::Malformed(format!(
            "frame length {len} exceeds cap {MAX_FRAME_LEN}"
        )));
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => {
                NetError::Malformed(format!("eof inside {len}-byte payload"))
            }
            _ => NetError::Io(e),
        })?;
    Ok((src, tag, Bytes::from(payload)))
}

/// Encodes a shaped `f32` buffer: `rank: u32 | dims: u32×rank | data`.
///
/// # Panics
///
/// Panics if `data` disagrees with the `dims` volume, the rank exceeds
/// the decoder's plausibility cap of 8, or a dimension does not fit the
/// `u32` header field — each would otherwise truncate in the header and
/// decode as a different shape.
pub fn encode_f32s(dims: &[usize], data: &[f32]) -> Vec<u8> {
    let volume: usize = dims.iter().product();
    assert_eq!(volume, data.len(), "data length must match dims volume");
    assert!(dims.len() <= 8, "rank {} exceeds decoder cap 8", dims.len());
    let mut buf = Vec::with_capacity(4 + dims.len() * 4 + data.len() * 4);
    // Rank ≤ 8, asserted above. lint: allow(cast-truncate)
    buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        assert!(
            u32::try_from(d).is_ok(),
            "dimension {d} does not fit the u32 header field"
        );
        // In range by the assert above. lint: allow(cast-truncate)
        buf.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &x in data {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    buf
}

/// Decodes a buffer produced by [`encode_f32s`] into `(dims, data)`.
///
/// # Errors
///
/// Returns [`NetError::Malformed`] for truncated or inconsistent buffers.
pub fn decode_f32s(bytes: &[u8]) -> Result<(Vec<usize>, Vec<f32>), NetError> {
    let take_u32 = |at: usize| -> Result<u32, NetError> {
        bytes
            .get(at..)
            .and_then(|rest| rest.first_chunk::<4>())
            .map(|b| u32::from_le_bytes(*b))
            .ok_or_else(|| NetError::Malformed(format!("truncated f32 buffer at offset {at}")))
    };
    let rank = take_u32(0)? as usize;
    if rank > 8 {
        return Err(NetError::Malformed(format!(
            "implausible tensor rank {rank}"
        )));
    }
    let mut dims = Vec::with_capacity(rank);
    for i in 0..rank {
        dims.push(take_u32(4 + 4 * i)? as usize);
    }
    let volume: usize = dims.iter().product();
    let data_start = 4 + 4 * rank;
    let expected = data_start + 4 * volume;
    if bytes.len() != expected {
        return Err(NetError::Malformed(format!(
            "expected {expected} bytes for dims {dims:?}, got {}",
            bytes.len()
        )));
    }
    let data = bytes
        .get(data_start..)
        .unwrap_or_default()
        .chunks_exact(4)
        .filter_map(|b| b.first_chunk::<4>())
        .map(|b| f32::from_le_bytes(*b))
        .collect();
    Ok((dims, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let buf = encode_frame(3, Tag(99), b"payload");
        let (src, tag, payload) = read_frame(&mut Cursor::new(&buf[..])).unwrap();
        assert_eq!(src, 3);
        assert_eq!(tag, Tag(99));
        assert_eq!(&payload[..], b"payload");
    }

    #[test]
    fn consecutive_frames_parse_in_order() {
        let mut buf = encode_frame(0, Tag(1), b"a");
        buf.extend_from_slice(&encode_frame(1, Tag(2), b"bb"));
        let mut cursor = Cursor::new(&buf[..]);
        assert_eq!(read_frame(&mut cursor).unwrap().2.as_ref(), b"a");
        assert_eq!(read_frame(&mut cursor).unwrap().2.as_ref(), b"bb");
        assert!(matches!(read_frame(&mut cursor), Err(NetError::Closed)));
    }

    #[test]
    fn truncated_header_is_malformed() {
        let buf = encode_frame(0, Tag(1), b"abc");
        let res = read_frame(&mut Cursor::new(&buf[..5]));
        assert!(matches!(res, Err(NetError::Malformed(_))), "{res:?}");
    }

    #[test]
    fn truncated_payload_is_malformed() {
        let buf = encode_frame(0, Tag(1), b"abcdef");
        let res = read_frame(&mut Cursor::new(&buf[..buf.len() - 2]));
        assert!(matches!(res, Err(NetError::Malformed(_))), "{res:?}");
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = encode_frame(0, Tag(1), b"");
        // Overwrite the length field with a huge value.
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let res = read_frame(&mut Cursor::new(&buf[..]));
        assert!(matches!(res, Err(NetError::Malformed(_))), "{res:?}");
    }

    #[test]
    fn empty_payload_frame() {
        let buf = encode_frame(1, Tag(0), b"");
        let (_, _, payload) = read_frame(&mut Cursor::new(&buf[..])).unwrap();
        assert!(payload.is_empty());
    }

    #[test]
    fn f32_roundtrip() {
        let dims = vec![2, 3];
        let data = vec![1.0f32, -2.5, 0.0, 3.25, f32::MIN_POSITIVE, 1e30];
        let buf = encode_f32s(&dims, &data);
        let (d2, x2) = decode_f32s(&buf).unwrap();
        assert_eq!(d2, dims);
        assert_eq!(x2, data);
    }

    #[test]
    fn f32_scalar_rank0() {
        let buf = encode_f32s(&[], &[7.5]);
        let (dims, data) = decode_f32s(&buf).unwrap();
        assert!(dims.is_empty());
        assert_eq!(data, vec![7.5]);
    }

    #[test]
    fn f32_rejects_truncation_and_excess() {
        let buf = encode_f32s(&[2], &[1.0, 2.0]);
        assert!(matches!(
            decode_f32s(&buf[..buf.len() - 1]),
            Err(NetError::Malformed(_))
        ));
        let mut extended = buf.clone();
        extended.push(0);
        assert!(matches!(
            decode_f32s(&extended),
            Err(NetError::Malformed(_))
        ));
        assert!(matches!(decode_f32s(&[]), Err(NetError::Malformed(_))));
    }

    #[test]
    fn f32_rejects_implausible_rank() {
        let mut buf = vec![];
        buf.extend_from_slice(&100u32.to_le_bytes());
        assert!(matches!(decode_f32s(&buf), Err(NetError::Malformed(_))));
    }

    #[test]
    #[should_panic(expected = "must match dims volume")]
    fn encode_validates_volume() {
        encode_f32s(&[3], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds decoder cap")]
    fn encode_rejects_implausible_rank() {
        encode_f32s(&[1; 9], &[1.0]);
    }

    #[test]
    fn framed_tensor_size_matches_the_static_wire_model() {
        // The static cost model (`teamnet_nn::cost::WireModel`) prices a
        // framed, enveloped tensor as
        //     12 (frame) + 16 (envelope) + 4 (rank) + 4·rank + 4·volume.
        // Assert that arithmetic against the real encoders so the two can
        // never drift apart silently; `tests/cost_honesty.rs` closes the
        // loop from the nn side.
        for dims in [vec![1usize, 784], vec![1, 3, 32, 32], vec![7, 2]] {
            let volume: usize = dims.iter().product();
            let payload = encode_f32s(&dims, &vec![0.0; volume]);
            let enveloped =
                crate::envelope::Envelope::new(3, crate::envelope::PayloadKind::Input, payload)
                    .encode();
            let framed = encode_frame(1, Tag(4), &enveloped);
            assert_eq!(
                framed.len(),
                12 + 16 + 4 + 4 * dims.len() + 4 * volume,
                "dims {dims:?}"
            );
        }
    }
}
