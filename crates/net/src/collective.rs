//! MPI-style collective operations over any [`Transport`].
//!
//! The paper's MPI baselines (MPI-Matrix, MPI-Branch, MPI-Kernel) and the
//! TeamNet runtime itself are built from exactly these primitives:
//! broadcast, scatter, gather, all-gather, all-reduce and barrier. All
//! collectives here use a flat root-relay topology — the right model for a
//! handful of edge devices on one WiFi BSS, where every transmission shares
//! the same medium anyway.

use crate::clock::{Clock, SystemClock};
use crate::error::NetError;
use crate::retry::{Backoff, RetryPolicy};
use crate::transport::{NodeId, Tag, Transport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Base of the tag space reserved for collective plumbing. User code must
/// not send on tags at or above this value.
pub const COLLECTIVE_TAG_BASE: u32 = 0xC000_0000;

const BCAST: Tag = Tag(COLLECTIVE_TAG_BASE);
const GATHER: Tag = Tag(COLLECTIVE_TAG_BASE + 1);
const SCATTER: Tag = Tag(COLLECTIVE_TAG_BASE + 2);
const REDUCE: Tag = Tag(COLLECTIVE_TAG_BASE + 3);
const BARRIER_UP: Tag = Tag(COLLECTIVE_TAG_BASE + 4);
const BARRIER_DOWN: Tag = Tag(COLLECTIVE_TAG_BASE + 5);

/// A view over a transport providing collective operations.
///
/// Every node of the cluster must call the *same* collectives in the *same*
/// order (standard MPI contract); mismatched calls deadlock until the
/// deadline budget fires.
///
/// Each collective call is driven by one **deadline budget** (the
/// `budget` duration): every send retry, backoff sleep and receive leg of
/// that call draws from the same wall-clock allowance, so a collective can
/// never take longer than its budget no matter how many peers straggle or
/// how many retries fire. Failed sends are retried with exponential
/// backoff and deterministic jitter per [`RetryPolicy`].
pub struct Communicator<'a> {
    transport: &'a dyn Transport,
    budget: Duration,
    retry: RetryPolicy,
    clock: Arc<dyn Clock>,
}

impl<'a> Communicator<'a> {
    /// Wraps a transport with the default 30 s deadline budget and the
    /// default retry policy.
    pub fn new(transport: &'a dyn Transport) -> Self {
        Communicator {
            transport,
            budget: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            clock: Arc::new(SystemClock),
        }
    }

    /// Overrides the per-collective deadline budget.
    pub fn with_timeout(transport: &'a dyn Transport, budget: Duration) -> Self {
        let mut comm = Communicator::new(transport);
        comm.budget = budget;
        comm
    }

    /// Overrides the send retry policy (builder style).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the clock that measures deadline budgets and runs
    /// backoff sleeps (builder style); tests inject a
    /// [`crate::ManualClock`] to exercise budget exhaustion virtually.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// This node's rank.
    pub fn rank(&self) -> NodeId {
        self.transport.node_id()
    }

    /// Cluster size.
    pub fn size(&self) -> usize {
        self.transport.num_nodes()
    }

    /// The deadline for a collective op starting now.
    fn deadline(&self) -> Instant {
        self.clock.now() + self.budget
    }

    /// Sends with bounded retries + backoff, all inside `deadline`.
    fn send_retrying(
        &self,
        to: NodeId,
        tag: Tag,
        payload: &[u8],
        deadline: Instant,
    ) -> Result<(), NetError> {
        // Jitter seed mixes rank and destination so concurrently retrying
        // nodes desynchronize, yet a rerun replays identically.
        let seed = (self.rank() as u64) << 32 | to as u64 ^ u64::from(tag.0);
        let mut backoff =
            Backoff::with_clock(self.retry.clone(), seed, deadline, Arc::clone(&self.clock));
        loop {
            match self.transport.send(to, tag, payload) {
                Ok(()) => return Ok(()),
                // Permanent failures: retrying cannot help.
                Err(e @ (NetError::UnknownPeer(_) | NetError::Closed)) => return Err(e),
                Err(e) => match backoff.next_delay() {
                    Some(delay) => self.clock.sleep(delay),
                    None => return Err(e),
                },
            }
        }
    }

    /// Receives against the remaining deadline budget.
    fn recv_deadline(
        &self,
        from: NodeId,
        tag: Tag,
        deadline: Instant,
    ) -> Result<Vec<u8>, NetError> {
        let remaining = deadline.saturating_duration_since(self.clock.now());
        self.transport.recv(from, tag, remaining)
    }

    /// Broadcasts `data` from `root` to every node; all nodes receive the
    /// payload (the root receives its own copy back).
    ///
    /// Non-root callers pass `None`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; the root errors if called without data.
    pub fn broadcast(&self, root: NodeId, data: Option<&[u8]>) -> Result<Vec<u8>, NetError> {
        let deadline = self.deadline();
        if self.rank() == root {
            let data = data.ok_or_else(|| {
                NetError::Malformed("broadcast root must supply data".to_string())
            })?;
            for peer in 0..self.size() {
                if peer != root {
                    self.send_retrying(peer, BCAST, data, deadline)?;
                }
            }
            Ok(data.to_vec())
        } else {
            self.recv_deadline(root, BCAST, deadline)
        }
    }

    /// Gathers every node's `mine` at `root`; returns `Some(parts)` (rank
    /// indexed) at the root and `None` elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and timeouts on missing contributions.
    pub fn gather(&self, root: NodeId, mine: &[u8]) -> Result<Option<Vec<Vec<u8>>>, NetError> {
        let deadline = self.deadline();
        if self.rank() == root {
            let mut parts = vec![Vec::new(); self.size()];
            // root == rank() here and rank() < size() always. lint: allow(no-index)
            parts[root] = mine.to_vec();
            for (peer, part) in parts.iter_mut().enumerate() {
                if peer != root {
                    *part = self.recv_deadline(peer, GATHER, deadline)?;
                }
            }
            Ok(Some(parts))
        } else {
            self.send_retrying(root, GATHER, mine, deadline)?;
            Ok(None)
        }
    }

    /// Scatters one payload per rank from `root`; each node receives its
    /// own part. Non-root callers pass `None`.
    ///
    /// # Errors
    ///
    /// The root errors unless it supplies exactly `size()` parts.
    pub fn scatter(&self, root: NodeId, parts: Option<&[Vec<u8>]>) -> Result<Vec<u8>, NetError> {
        let deadline = self.deadline();
        if self.rank() == root {
            let parts = parts
                .ok_or_else(|| NetError::Malformed("scatter root must supply parts".to_string()))?;
            if parts.len() != self.size() {
                return Err(NetError::Malformed(format!(
                    "scatter needs {} parts, got {}",
                    self.size(),
                    parts.len()
                )));
            }
            for (peer, part) in parts.iter().enumerate() {
                if peer != root {
                    self.send_retrying(peer, SCATTER, part, deadline)?;
                }
            }
            // parts.len() == size() was just checked; root == rank() < size().
            // lint: allow(no-index)
            Ok(parts[root].clone())
        } else {
            self.recv_deadline(root, SCATTER, deadline)
        }
    }

    /// Gathers every node's `mine` on every node (rank-indexed).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn all_gather(&self, mine: &[u8]) -> Result<Vec<Vec<u8>>, NetError> {
        let gathered = self.gather(0, mine)?;
        let encoded = match gathered {
            Some(parts) => {
                // Flatten with length prefixes for the broadcast leg.
                let mut buf = Vec::new();
                for part in &parts {
                    buf.extend_from_slice(&(part.len() as u32).to_le_bytes());
                    buf.extend_from_slice(part);
                }
                self.broadcast(0, Some(&buf))?
            }
            None => self.broadcast(0, None)?,
        };
        let mut parts = Vec::with_capacity(self.size());
        let mut at = 0usize;
        for _ in 0..self.size() {
            let len_bytes = encoded
                .get(at..)
                .and_then(|rest| rest.first_chunk::<4>())
                .ok_or_else(|| NetError::Malformed("truncated all_gather envelope".into()))?;
            let len = u32::from_le_bytes(*len_bytes) as usize;
            at += 4;
            let part = encoded
                .get(at..at + len)
                .ok_or_else(|| NetError::Malformed("truncated all_gather part".into()))?;
            parts.push(part.to_vec());
            at += len;
        }
        Ok(parts)
    }

    /// Element-wise sum of every node's `data`, the result replacing
    /// `data` on all nodes.
    ///
    /// # Errors
    ///
    /// Errors if contributions disagree in length or transport fails.
    pub fn all_reduce_sum(&self, data: &mut [f32]) -> Result<(), NetError> {
        let deadline = self.deadline();
        let bytes: Vec<u8> = data.iter().flat_map(|x| x.to_le_bytes()).collect();
        let reduced = if self.rank() == 0 {
            let mut acc = data.to_vec();
            for peer in 1..self.size() {
                let part = self.recv_deadline(peer, REDUCE, deadline)?;
                if part.len() != bytes.len() {
                    return Err(NetError::Malformed(format!(
                        "all_reduce contribution of {} bytes, expected {}",
                        part.len(),
                        bytes.len()
                    )));
                }
                let words = part.chunks_exact(4).filter_map(|c| c.first_chunk::<4>());
                for (a, chunk) in acc.iter_mut().zip(words) {
                    *a += f32::from_le_bytes(*chunk);
                }
            }
            let out: Vec<u8> = acc.iter().flat_map(|x| x.to_le_bytes()).collect();
            self.broadcast(0, Some(&out))?
        } else {
            self.send_retrying(0, REDUCE, &bytes, deadline)?;
            self.broadcast(0, None)?
        };
        let words = reduced.chunks_exact(4).filter_map(|c| c.first_chunk::<4>());
        for (x, chunk) in data.iter_mut().zip(words) {
            *x = f32::from_le_bytes(*chunk);
        }
        Ok(())
    }

    /// Blocks until every node has entered the barrier.
    ///
    /// # Errors
    ///
    /// Times out if any node never arrives.
    pub fn barrier(&self) -> Result<(), NetError> {
        let deadline = self.deadline();
        if self.rank() == 0 {
            for peer in 1..self.size() {
                self.recv_deadline(peer, BARRIER_UP, deadline)?;
            }
            for peer in 1..self.size() {
                self.send_retrying(peer, BARRIER_DOWN, &[], deadline)?;
            }
        } else {
            self.send_retrying(0, BARRIER_UP, &[], deadline)?;
            self.recv_deadline(0, BARRIER_DOWN, deadline)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Communicator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Communicator(rank {}/{})", self.rank(), self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use crossbeam::thread;

    /// Runs `f` on every rank of an in-process mesh, panicking if any rank
    /// panics.
    fn run_cluster(n: usize, f: impl Fn(Communicator<'_>) + Sync) {
        let nodes = ChannelTransport::mesh(n);
        thread::scope(|scope| {
            for node in &nodes {
                let f = &f;
                scope.spawn(move |_| f(Communicator::new(node)));
            }
        })
        .unwrap();
    }

    #[test]
    fn broadcast_reaches_everyone() {
        run_cluster(4, |comm| {
            let data = if comm.rank() == 1 {
                Some(&b"payload"[..])
            } else {
                None
            };
            let got = comm.broadcast(1, data).unwrap();
            assert_eq!(got, b"payload");
        });
    }

    #[test]
    fn gather_collects_rank_indexed() {
        run_cluster(3, |comm| {
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            let parts = comm.gather(0, &mine).unwrap();
            match comm.rank() {
                0 => {
                    let parts = parts.unwrap();
                    assert_eq!(parts.len(), 3);
                    for (rank, part) in parts.iter().enumerate() {
                        assert_eq!(part, &vec![rank as u8; rank + 1]);
                    }
                }
                _ => assert!(parts.is_none()),
            }
        });
    }

    #[test]
    fn scatter_delivers_own_part() {
        run_cluster(3, |comm| {
            let parts: Vec<Vec<u8>> = (0..3).map(|r| vec![r as u8 * 10]).collect();
            let root_parts = if comm.rank() == 0 {
                Some(&parts[..])
            } else {
                None
            };
            let mine = comm.scatter(0, root_parts).unwrap();
            assert_eq!(mine, vec![comm.rank() as u8 * 10]);
        });
    }

    #[test]
    fn all_gather_everyone_sees_everything() {
        run_cluster(4, |comm| {
            let mine = vec![comm.rank() as u8 + 1];
            let parts = comm.all_gather(&mine).unwrap();
            assert_eq!(parts, vec![vec![1u8], vec![2], vec![3], vec![4]]);
        });
    }

    #[test]
    fn all_reduce_sums_elementwise() {
        run_cluster(3, |comm| {
            let mut data = vec![comm.rank() as f32, 1.0];
            comm.all_reduce_sum(&mut data).unwrap();
            assert_eq!(data, vec![0.0 + 1.0 + 2.0, 3.0]);
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrivals = AtomicUsize::new(0);
        run_cluster(4, |comm| {
            arrivals.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier, every rank must have arrived.
            assert_eq!(arrivals.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn gather_times_out_when_a_peer_is_missing() {
        // Only rank 0 participates: the gather must time out, not hang.
        let nodes = ChannelTransport::mesh(2);
        let comm = Communicator::with_timeout(&nodes[0], Duration::from_millis(50));
        let res = comm.gather(0, b"mine");
        assert!(matches!(res, Err(NetError::Timeout { .. })), "{res:?}");
    }

    #[test]
    fn broadcast_root_without_data_errors() {
        let nodes = ChannelTransport::mesh(1);
        let comm = Communicator::new(&nodes[0]);
        assert!(matches!(
            comm.broadcast(0, None),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn scatter_wrong_part_count_errors() {
        let nodes = ChannelTransport::mesh(1);
        let comm = Communicator::new(&nodes[0]);
        let parts = vec![vec![1u8], vec![2u8]];
        assert!(matches!(
            comm.scatter(0, Some(&parts)),
            Err(NetError::Malformed(_))
        ));
    }

    /// A transport whose sends fail transiently for the first `failures`
    /// attempts — exercises the retry+backoff path of the collectives.
    struct FlakySends {
        inner: ChannelTransport,
        failures: std::sync::atomic::AtomicU32,
    }

    impl Transport for FlakySends {
        fn node_id(&self) -> NodeId {
            self.inner.node_id()
        }
        fn num_nodes(&self) -> usize {
            self.inner.num_nodes()
        }
        fn send(&self, to: NodeId, tag: Tag, payload: &[u8]) -> Result<(), NetError> {
            use std::sync::atomic::Ordering;
            if self.failures.load(Ordering::SeqCst) > 0 {
                self.failures.fetch_sub(1, Ordering::SeqCst);
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "transient",
                )));
            }
            self.inner.send(to, tag, payload)
        }
        fn recv(&self, from: NodeId, tag: Tag, timeout: Duration) -> Result<Vec<u8>, NetError> {
            self.inner.recv(from, tag, timeout)
        }
        fn recv_any(&self, tag: Tag, timeout: Duration) -> Result<(NodeId, Vec<u8>), NetError> {
            self.inner.recv_any(tag, timeout)
        }
        fn stats(&self) -> crate::TransportStats {
            self.inner.stats()
        }
    }

    #[test]
    fn sends_retry_through_transient_failures() {
        let mut nodes = ChannelTransport::mesh(2);
        let receiver = nodes.pop().unwrap();
        let flaky = FlakySends {
            inner: nodes.pop().unwrap(),
            failures: std::sync::atomic::AtomicU32::new(2),
        };
        let comm = Communicator::with_timeout(&flaky, Duration::from_secs(5));
        // Default policy allows 3 attempts: two transient failures recover.
        let got = comm.broadcast(0, Some(b"persist")).unwrap();
        assert_eq!(got, b"persist");
        assert_eq!(
            receiver.recv(0, BCAST, Duration::from_secs(1)).unwrap(),
            b"persist"
        );
    }

    #[test]
    fn retries_are_bounded_by_policy() {
        let mut nodes = ChannelTransport::mesh(2);
        let _receiver = nodes.pop().unwrap();
        let flaky = FlakySends {
            inner: nodes.pop().unwrap(),
            failures: std::sync::atomic::AtomicU32::new(100),
        };
        let comm = Communicator::with_timeout(&flaky, Duration::from_secs(5)).retry_policy(
            crate::RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
            },
        );
        let res = comm.broadcast(0, Some(b"doomed"));
        assert!(matches!(res, Err(NetError::Io(_))), "{res:?}");
        use std::sync::atomic::Ordering;
        // 2 attempts consumed, not all 100 failures.
        assert_eq!(flaky.failures.load(Ordering::SeqCst), 98);
    }

    #[test]
    fn collectives_over_tcp() {
        let nodes = crate::tcp::TcpTransport::mesh_localhost(3).unwrap();
        thread::scope(|scope| {
            for node in &nodes {
                scope.spawn(move |_| {
                    let comm = Communicator::new(node);
                    let data = if comm.rank() == 0 {
                        Some(&b"tcp-bcast"[..])
                    } else {
                        None
                    };
                    assert_eq!(comm.broadcast(0, data).unwrap(), b"tcp-bcast");
                    let mut xs = vec![1.0f32];
                    comm.all_reduce_sum(&mut xs).unwrap();
                    assert_eq!(xs, vec![3.0]);
                });
            }
        })
        .unwrap();
    }
}
