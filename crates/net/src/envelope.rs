//! Versioned, round-stamped, checksummed message envelopes.
//!
//! The fault-tolerant inference protocol wraps every application payload
//! (input batches, result matrices, probes) in an [`Envelope`] so the
//! receiver can (a) reject traffic from an incompatible protocol version,
//! (b) attribute a message to the inference round that produced it —
//! discarding late replies instead of mis-scoring them against the wrong
//! batch — and (c) detect bit corruption in flight via a CRC-32 over the
//! payload.
//!
//! Wire layout (little-endian), 16 bytes of header:
//!
//! ```text
//! version: u16 | kind: u8 | reserved: u8 | round: u64 | crc32(payload): u32 | payload
//! ```

use crate::error::NetError;

/// Current envelope wire version. Bumped on incompatible layout changes;
/// a receiver rejects any other value with [`NetError::Malformed`].
pub const ENVELOPE_VERSION: u16 = 1;

/// Size of the fixed envelope header in bytes.
pub const ENVELOPE_HEADER_LEN: usize = 16;

/// What an envelope carries. The kind travels on the wire as one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// A broadcast input batch (master → worker).
    Input,
    /// A per-row result matrix (worker → master).
    Result,
    /// A liveness probe sent to a quarantined peer (master → worker).
    /// Carries no payload; deliberately tiny so probing stays cheap.
    Probe,
    /// Acknowledgement of a [`PayloadKind::Probe`] (worker → master).
    ProbeAck,
    /// Recovery control message (master → worker): offer to host a
    /// migrated expert (architecture spec + transfer manifest), release a
    /// hosted expert on hand-back, or abort an in-flight transfer.
    LoadExpert,
    /// One chunk of a migrated expert's serialized parameter state
    /// (master → worker), part of a chunked, resumable transfer.
    LoadChunk,
    /// Worker's acknowledgement in the expert-transfer protocol
    /// (worker → master): accept/refuse an offer, per-chunk progress
    /// cursor, completion, or a mid-transfer error.
    LoadAck,
}

impl PayloadKind {
    fn to_wire(self) -> u8 {
        match self {
            PayloadKind::Input => 0,
            PayloadKind::Result => 1,
            PayloadKind::Probe => 2,
            PayloadKind::ProbeAck => 3,
            PayloadKind::LoadExpert => 4,
            PayloadKind::LoadChunk => 5,
            PayloadKind::LoadAck => 6,
        }
    }

    fn from_wire(b: u8) -> Result<Self, NetError> {
        match b {
            0 => Ok(PayloadKind::Input),
            1 => Ok(PayloadKind::Result),
            2 => Ok(PayloadKind::Probe),
            3 => Ok(PayloadKind::ProbeAck),
            4 => Ok(PayloadKind::LoadExpert),
            5 => Ok(PayloadKind::LoadChunk),
            6 => Ok(PayloadKind::LoadAck),
            other => Err(NetError::Malformed(format!(
                "unknown envelope payload kind {other}"
            ))),
        }
    }
}

/// A decoded protocol message: round stamp, payload kind and the verified
/// payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Monotonic inference-round identifier assigned by the master. A
    /// worker echoes the round of the input it is answering.
    pub round: u64,
    /// What the payload is.
    pub kind: PayloadKind,
    /// The application payload (already checksum-verified on decode).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Builds an envelope around `payload` for `round`.
    pub fn new(round: u64, kind: PayloadKind, payload: Vec<u8>) -> Self {
        Envelope {
            round,
            kind,
            payload,
        }
    }

    /// Serializes the envelope into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(ENVELOPE_HEADER_LEN + self.payload.len());
        buf.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
        buf.push(self.kind.to_wire());
        buf.push(0); // reserved
        buf.extend_from_slice(&self.round.to_le_bytes());
        buf.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Checks that this envelope belongs to the round the receiver is
    /// currently collecting.
    ///
    /// # Errors
    ///
    /// [`NetError::Stale`] when the stamp disagrees — a late reply from an
    /// earlier round, or a duplicate of one already consumed. Receivers
    /// discard such traffic instead of scoring it against the wrong batch.
    pub fn expect_round(&self, current: u64) -> Result<(), NetError> {
        if self.round == current {
            Ok(())
        } else {
            Err(NetError::Stale {
                got: self.round,
                current,
            })
        }
    }

    /// Parses and integrity-checks an envelope.
    ///
    /// # Errors
    ///
    /// * [`NetError::Malformed`] for a truncated header, an unknown
    ///   version, or an unknown payload kind;
    /// * [`NetError::Corrupt`] when the payload CRC disagrees with the
    ///   header (a flipped bit anywhere in the payload).
    pub fn decode(bytes: &[u8]) -> Result<Envelope, NetError> {
        let header = bytes.get(..ENVELOPE_HEADER_LEN).ok_or_else(|| {
            NetError::Malformed(format!(
                "envelope shorter than header: {} bytes",
                bytes.len()
            ))
        })?;
        let take = |at: usize, len: usize| header.get(at..at + len).unwrap_or_default();
        let version = u16::from_le_bytes(take(0, 2).try_into().unwrap_or_default());
        if version != ENVELOPE_VERSION {
            return Err(NetError::Malformed(format!(
                "envelope version {version}, this node speaks {ENVELOPE_VERSION}"
            )));
        }
        let kind = PayloadKind::from_wire(header.get(2).copied().unwrap_or_default())?;
        let round = u64::from_le_bytes(take(4, 8).try_into().unwrap_or_default());
        let expected = u32::from_le_bytes(take(12, 4).try_into().unwrap_or_default());
        let payload = bytes.get(ENVELOPE_HEADER_LEN..).unwrap_or_default();
        let got = crc32(payload);
        if got != expected {
            return Err(NetError::Corrupt { expected, got });
        }
        Ok(Envelope {
            round,
            kind,
            payload: payload.to_vec(),
        })
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum Ethernet and zlib use. Bitwise implementation: the payloads
/// here are small enough that a lookup table buys nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip() {
        let env = Envelope::new(42, PayloadKind::Result, vec![1, 2, 3, 255]);
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(decoded, env);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let env = Envelope::new(7, PayloadKind::Probe, Vec::new());
        assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }

    #[test]
    fn flipped_bit_is_corrupt() {
        let mut bytes = Envelope::new(3, PayloadKind::Input, vec![0u8; 32]).encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        let res = Envelope::decode(&bytes);
        assert!(matches!(res, Err(NetError::Corrupt { .. })), "{res:?}");
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = Envelope::new(1, PayloadKind::Input, vec![9]).encode();
        bytes[0] = 0xFF;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut bytes = Envelope::new(1, PayloadKind::Input, Vec::new()).encode();
        bytes[2] = 200;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        let bytes = Envelope::new(1, PayloadKind::Result, vec![5; 8]).encode();
        assert!(matches!(
            Envelope::decode(&bytes[..10]),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn expect_round_rejects_other_rounds() {
        let env = Envelope::new(41, PayloadKind::Result, Vec::new());
        assert!(env.expect_round(41).is_ok());
        let err = env.expect_round(42).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Stale {
                    got: 41,
                    current: 42
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn recovery_kinds_roundtrip() {
        for kind in [
            PayloadKind::LoadExpert,
            PayloadKind::LoadChunk,
            PayloadKind::LoadAck,
        ] {
            let env = Envelope::new(17, kind, vec![0xAB; 5]);
            let back = Envelope::decode(&env.encode()).unwrap();
            assert_eq!(back.kind, kind);
            assert_eq!(back, env);
        }
    }

    #[test]
    fn round_stamp_survives() {
        for round in [0u64, 1, u64::MAX] {
            let env = Envelope::new(round, PayloadKind::ProbeAck, vec![1]);
            assert_eq!(Envelope::decode(&env.encode()).unwrap().round, round);
        }
    }
}
