//! Versioned, round-stamped, checksummed message envelopes.
//!
//! The fault-tolerant inference protocol wraps every application payload
//! (input batches, result matrices, probes) in an [`Envelope`] so the
//! receiver can (a) reject traffic from an incompatible protocol version,
//! (b) attribute a message to the inference round that produced it —
//! discarding late replies instead of mis-scoring them against the wrong
//! batch — and (c) detect bit corruption in flight via a CRC-32 over the
//! payload.
//!
//! Wire layout (little-endian), 16 bytes of header:
//!
//! ```text
//! version: u16 | kind: u8 | flags: u8 | round: u64 | crc32(ext || payload): u32 | [ext] | payload
//! ```
//!
//! Byte 3 (written as zero since v1, never previously validated) is now a
//! flags byte. The only assigned bit is [`FLAG_TRACE`]: when set, a
//! 16-byte trace extension ([`TraceContext`]: trace id + parent span id)
//! sits between the header and the payload, and the CRC covers the
//! extension *and* the payload. A frame with no flags set is
//! byte-for-byte identical to a v1 frame, so the certified wire-cost
//! model (DESIGN.md §13) stays honest for untraced traffic. Unknown flag
//! bits are rejected on decode — they are this header's versioning lane.

use crate::error::NetError;

/// Current envelope wire version. Bumped on incompatible layout changes;
/// a receiver rejects any other value with [`NetError::Malformed`].
pub const ENVELOPE_VERSION: u16 = 1;

/// Size of the fixed envelope header in bytes.
pub const ENVELOPE_HEADER_LEN: usize = 16;

/// Flags-byte bit marking the presence of a [`TraceContext`] extension
/// between the header and the payload.
pub const FLAG_TRACE: u8 = 0x01;

/// All flag bits this node understands; anything else is rejected.
const KNOWN_FLAGS: u8 = FLAG_TRACE;

/// Size of the serialized [`TraceContext`] extension in bytes.
pub const TRACE_EXT_LEN: usize = 16;

/// The causal trace context a frame can carry: which distributed trace
/// the message belongs to and which span on the *sender* caused it.
///
/// Both ids are deterministically derived (see [`derive_trace_id`]) — no
/// wall clock, no unseeded randomness — so two identical seeded runs
/// stamp identical contexts. The receiver uses `parent_span` to parent
/// its own processing span on the sender's, which is how
/// `cargo xtask trace-assemble` stitches per-node traces into one
/// cross-node causal DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Distributed trace id (one per inference round or serve request).
    pub trace_id: u64,
    /// Span id, in the sender's tracer, of the span that sent the frame.
    pub parent_span: u64,
}

impl TraceContext {
    fn to_wire(self) -> [u8; TRACE_EXT_LEN] {
        let mut out = [0u8; TRACE_EXT_LEN];
        let (id_half, span_half) = out.split_at_mut(8);
        id_half.copy_from_slice(&self.trace_id.to_le_bytes());
        span_half.copy_from_slice(&self.parent_span.to_le_bytes());
        out
    }

    fn from_wire(bytes: &[u8]) -> Option<Self> {
        Some(TraceContext {
            trace_id: u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?),
            parent_span: u64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?),
        })
    }
}

/// Reads the trace context off an encoded envelope without a full decode
/// (no CRC pass, no payload copy). `None` when the frame is untraced,
/// truncated, or not an envelope at all — callers wanting validation use
/// [`Envelope::decode`]; this is for IO shells annotating recv events.
pub fn peek_trace(bytes: &[u8]) -> Option<TraceContext> {
    let header = bytes.get(..ENVELOPE_HEADER_LEN)?;
    let version = u16::from_le_bytes(header.get(..2)?.try_into().ok()?);
    if version != ENVELOPE_VERSION || header.get(3)? & FLAG_TRACE == 0 {
        return None;
    }
    TraceContext::from_wire(bytes.get(ENVELOPE_HEADER_LEN..ENVELOPE_HEADER_LEN + TRACE_EXT_LEN)?)
}

/// Derives a trace id from a session seed and a session-local round
/// index with a SplitMix64 finalizer: deterministic, well-mixed, and
/// collision-free for distinct `(seed, round)` pairs up to mixing.
pub fn derive_trace_id(seed: u64, round: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(round)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What an envelope carries. The kind travels on the wire as one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// A broadcast input batch (master → worker).
    Input,
    /// A per-row result matrix (worker → master).
    Result,
    /// A liveness probe sent to a quarantined peer (master → worker).
    /// Carries no payload; deliberately tiny so probing stays cheap.
    Probe,
    /// Acknowledgement of a [`PayloadKind::Probe`] (worker → master).
    ProbeAck,
    /// Recovery control message (master → worker): offer to host a
    /// migrated expert (architecture spec + transfer manifest), release a
    /// hosted expert on hand-back, or abort an in-flight transfer.
    LoadExpert,
    /// One chunk of a migrated expert's serialized parameter state
    /// (master → worker), part of a chunked, resumable transfer.
    LoadChunk,
    /// Worker's acknowledgement in the expert-transfer protocol
    /// (worker → master): accept/refuse an offer, per-chunk progress
    /// cursor, completion, or a mid-transfer error.
    LoadAck,
}

impl PayloadKind {
    fn to_wire(self) -> u8 {
        match self {
            PayloadKind::Input => 0,
            PayloadKind::Result => 1,
            PayloadKind::Probe => 2,
            PayloadKind::ProbeAck => 3,
            PayloadKind::LoadExpert => 4,
            PayloadKind::LoadChunk => 5,
            PayloadKind::LoadAck => 6,
        }
    }

    fn from_wire(b: u8) -> Result<Self, NetError> {
        match b {
            0 => Ok(PayloadKind::Input),
            1 => Ok(PayloadKind::Result),
            2 => Ok(PayloadKind::Probe),
            3 => Ok(PayloadKind::ProbeAck),
            4 => Ok(PayloadKind::LoadExpert),
            5 => Ok(PayloadKind::LoadChunk),
            6 => Ok(PayloadKind::LoadAck),
            other => Err(NetError::Malformed(format!(
                "unknown envelope payload kind {other}"
            ))),
        }
    }
}

/// A decoded protocol message: round stamp, payload kind and the verified
/// payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Monotonic inference-round identifier assigned by the master. A
    /// worker echoes the round of the input it is answering.
    pub round: u64,
    /// What the payload is.
    pub kind: PayloadKind,
    /// The application payload (already checksum-verified on decode).
    pub payload: Vec<u8>,
    /// Causal trace context, when the frame carries the [`FLAG_TRACE`]
    /// extension. `None` encodes byte-identically to a v1 frame.
    pub trace: Option<TraceContext>,
}

impl Envelope {
    /// Builds an envelope around `payload` for `round`.
    pub fn new(round: u64, kind: PayloadKind, payload: Vec<u8>) -> Self {
        Envelope {
            round,
            kind,
            payload,
            trace: None,
        }
    }

    /// Attaches a trace context, consuming and returning the envelope so
    /// send sites can stamp inline: `Envelope::new(..).with_trace(ctx)`.
    #[must_use]
    pub fn with_trace(mut self, ctx: TraceContext) -> Self {
        self.trace = Some(ctx);
        self
    }

    /// Serializes the envelope into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let ext = self.trace.map(TraceContext::to_wire);
        let ext_bytes = ext.as_ref().map(|e| e.as_slice()).unwrap_or_default();
        let mut buf =
            Vec::with_capacity(ENVELOPE_HEADER_LEN + ext_bytes.len() + self.payload.len());
        buf.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
        buf.push(self.kind.to_wire());
        buf.push(if ext.is_some() { FLAG_TRACE } else { 0 });
        buf.extend_from_slice(&self.round.to_le_bytes());
        let mut crc: u32 = !0;
        for &b in ext_bytes.iter().chain(&self.payload) {
            crc = crc32_step(crc, b);
        }
        buf.extend_from_slice(&(!crc).to_le_bytes());
        buf.extend_from_slice(ext_bytes);
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Checks that this envelope belongs to the round the receiver is
    /// currently collecting.
    ///
    /// # Errors
    ///
    /// [`NetError::Stale`] when the stamp disagrees — a late reply from an
    /// earlier round, or a duplicate of one already consumed. Receivers
    /// discard such traffic instead of scoring it against the wrong batch.
    pub fn expect_round(&self, current: u64) -> Result<(), NetError> {
        if self.round == current {
            Ok(())
        } else {
            Err(NetError::Stale {
                got: self.round,
                current,
            })
        }
    }

    /// Parses and integrity-checks an envelope.
    ///
    /// # Errors
    ///
    /// * [`NetError::Malformed`] for a truncated header, an unknown
    ///   version, an unknown payload kind, an unknown flag bit, or a
    ///   flagged trace extension the frame is too short to carry;
    /// * [`NetError::Corrupt`] when the CRC disagrees with the header (a
    ///   flipped bit anywhere in the extension or payload).
    pub fn decode(bytes: &[u8]) -> Result<Envelope, NetError> {
        let header = bytes.get(..ENVELOPE_HEADER_LEN).ok_or_else(|| {
            NetError::Malformed(format!(
                "envelope shorter than header: {} bytes",
                bytes.len()
            ))
        })?;
        let take = |at: usize, len: usize| header.get(at..at + len).unwrap_or_default();
        let version = u16::from_le_bytes(take(0, 2).try_into().unwrap_or_default());
        if version != ENVELOPE_VERSION {
            return Err(NetError::Malformed(format!(
                "envelope version {version}, this node speaks {ENVELOPE_VERSION}"
            )));
        }
        let kind = PayloadKind::from_wire(header.get(2).copied().unwrap_or_default())?;
        let flags = header.get(3).copied().unwrap_or_default();
        if flags & !KNOWN_FLAGS != 0 {
            return Err(NetError::Malformed(format!(
                "envelope carries unknown flag bits {:#04x}",
                flags & !KNOWN_FLAGS
            )));
        }
        let round = u64::from_le_bytes(take(4, 8).try_into().unwrap_or_default());
        let expected = u32::from_le_bytes(take(12, 4).try_into().unwrap_or_default());
        // The CRC covers everything after the header — extension included
        // — so corruption is caught before the extension is interpreted.
        let body = bytes.get(ENVELOPE_HEADER_LEN..).unwrap_or_default();
        let got = crc32(body);
        if got != expected {
            return Err(NetError::Corrupt { expected, got });
        }
        let (trace, payload) = if flags & FLAG_TRACE != 0 {
            let ctx = body.get(..TRACE_EXT_LEN).and_then(TraceContext::from_wire);
            match ctx {
                Some(ctx) => (Some(ctx), body.get(TRACE_EXT_LEN..).unwrap_or_default()),
                None => {
                    return Err(NetError::Malformed(format!(
                        "envelope flags a trace extension but carries {} body bytes",
                        body.len()
                    )))
                }
            }
        } else {
            (None, body)
        };
        Ok(Envelope {
            round,
            kind,
            payload: payload.to_vec(),
            trace,
        })
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum Ethernet and zlib use. Bitwise implementation: the payloads
/// here are small enough that a lookup table buys nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc = crc32_step(crc, b);
    }
    !crc
}

/// One byte of the CRC-32 state machine, for callers hashing
/// non-contiguous regions without concatenating them first.
fn crc32_step(mut crc: u32, b: u8) -> u32 {
    crc ^= u32::from(b);
    for _ in 0..8 {
        let mask = (crc & 1).wrapping_neg();
        crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip() {
        let env = Envelope::new(42, PayloadKind::Result, vec![1, 2, 3, 255]);
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(decoded, env);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let env = Envelope::new(7, PayloadKind::Probe, Vec::new());
        assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }

    #[test]
    fn flipped_bit_is_corrupt() {
        let mut bytes = Envelope::new(3, PayloadKind::Input, vec![0u8; 32]).encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        let res = Envelope::decode(&bytes);
        assert!(matches!(res, Err(NetError::Corrupt { .. })), "{res:?}");
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = Envelope::new(1, PayloadKind::Input, vec![9]).encode();
        bytes[0] = 0xFF;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut bytes = Envelope::new(1, PayloadKind::Input, Vec::new()).encode();
        bytes[2] = 200;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        let bytes = Envelope::new(1, PayloadKind::Result, vec![5; 8]).encode();
        assert!(matches!(
            Envelope::decode(&bytes[..10]),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn expect_round_rejects_other_rounds() {
        let env = Envelope::new(41, PayloadKind::Result, Vec::new());
        assert!(env.expect_round(41).is_ok());
        let err = env.expect_round(42).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Stale {
                    got: 41,
                    current: 42
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn recovery_kinds_roundtrip() {
        for kind in [
            PayloadKind::LoadExpert,
            PayloadKind::LoadChunk,
            PayloadKind::LoadAck,
        ] {
            let env = Envelope::new(17, kind, vec![0xAB; 5]);
            let back = Envelope::decode(&env.encode()).unwrap();
            assert_eq!(back.kind, kind);
            assert_eq!(back, env);
        }
    }

    #[test]
    fn round_stamp_survives() {
        for round in [0u64, 1, u64::MAX] {
            let env = Envelope::new(round, PayloadKind::ProbeAck, vec![1]);
            assert_eq!(Envelope::decode(&env.encode()).unwrap().round, round);
        }
    }

    #[test]
    fn untraced_encoding_is_byte_identical_to_v1() {
        // The certified wire-cost model (DESIGN.md §13) pins the v1
        // layout; an untraced envelope must not drift from it.
        let env = Envelope::new(42, PayloadKind::Result, vec![1, 2, 3, 255]);
        let bytes = env.encode();
        let mut v1 = Vec::new();
        v1.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
        v1.push(1); // Result
        v1.push(0); // no flags
        v1.extend_from_slice(&42u64.to_le_bytes());
        v1.extend_from_slice(&crc32(&[1, 2, 3, 255]).to_le_bytes());
        v1.extend_from_slice(&[1, 2, 3, 255]);
        assert_eq!(bytes, v1);
    }

    #[test]
    fn traced_roundtrip() {
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            parent_span: 31,
        };
        let env = Envelope::new(9, PayloadKind::Input, vec![7; 11]).with_trace(ctx);
        let bytes = env.encode();
        assert_eq!(bytes.len(), ENVELOPE_HEADER_LEN + TRACE_EXT_LEN + 11);
        let back = Envelope::decode(&bytes).unwrap();
        assert_eq!(back, env);
        assert_eq!(back.trace, Some(ctx));
        assert_eq!(back.payload, vec![7; 11]);
    }

    #[test]
    fn traced_empty_payload_roundtrip() {
        let ctx = TraceContext {
            trace_id: 1,
            parent_span: 0,
        };
        let env = Envelope::new(3, PayloadKind::Probe, Vec::new()).with_trace(ctx);
        assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }

    #[test]
    fn unknown_flag_bits_rejected() {
        let mut bytes = Envelope::new(1, PayloadKind::Input, vec![9]).encode();
        bytes[3] = 0x80;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn corrupt_trace_extension_detected() {
        let ctx = TraceContext {
            trace_id: 55,
            parent_span: 8,
        };
        let mut bytes = Envelope::new(2, PayloadKind::Result, vec![4; 6])
            .with_trace(ctx)
            .encode();
        // Flip a bit inside the extension region, not the payload.
        bytes[ENVELOPE_HEADER_LEN + 2] ^= 0x01;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(NetError::Corrupt { .. })
        ));
    }

    #[test]
    fn flagged_but_truncated_extension_rejected() {
        // A frame whose flags claim a trace extension but whose body is
        // shorter than one. CRC must be made consistent so the length
        // check is what fires.
        let mut buf = Vec::new();
        buf.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
        buf.push(0); // Input
        buf.push(FLAG_TRACE);
        buf.extend_from_slice(&5u64.to_le_bytes());
        let body = [0xAAu8; 4];
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        buf.extend_from_slice(&body);
        assert!(matches!(
            Envelope::decode(&buf),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn peek_trace_reads_without_full_decode() {
        let ctx = TraceContext {
            trace_id: 12,
            parent_span: 34,
        };
        let traced = Envelope::new(1, PayloadKind::Input, vec![5]).with_trace(ctx);
        assert_eq!(peek_trace(&traced.encode()), Some(ctx));
        let plain = Envelope::new(1, PayloadKind::Input, vec![5]);
        assert_eq!(peek_trace(&plain.encode()), None);
        assert_eq!(peek_trace(&[1, 2, 3]), None);
        // Truncated right after the header: flagged but no extension.
        assert_eq!(peek_trace(&traced.encode()[..ENVELOPE_HEADER_LEN]), None);
    }

    #[test]
    fn derive_trace_id_is_deterministic_and_mixes() {
        assert_eq!(derive_trace_id(7, 3), derive_trace_id(7, 3));
        assert_ne!(derive_trace_id(7, 3), derive_trace_id(7, 4));
        assert_ne!(derive_trace_id(7, 3), derive_trace_id(8, 3));
        // Zero inputs still yield a non-trivial id.
        assert_ne!(derive_trace_id(0, 0), 0);
    }
}
