//! # teamnet-net
//!
//! The message-passing substrate of the TeamNet (ICDCS 2019) reproduction:
//! the stand-in for the paper's three communication stacks — raw TCP
//! sockets (TeamNet itself), MPI (the model-parallel baselines) and gRPC
//! (SG-MoE-G).
//!
//! * [`Transport`] — `(source, tag)`-matched point-to-point messaging with
//!   two implementations: [`ChannelTransport`] (in-process, used by the
//!   simulator and tests) and [`TcpTransport`] (framed sockets over real
//!   TCP, loopback or multi-host);
//! * [`Communicator`] — MPI-style collectives (broadcast / scatter /
//!   gather / all-gather / all-reduce / barrier);
//! * [`rpc`] — a minimal unary RPC layer (the gRPC stand-in);
//! * [`ChaosTransport`] — seeded, deterministic fault injection (drop /
//!   delay / corruption / duplication / black-holing) for resilience
//!   tests; [`LossyTransport`] is its backwards-compatible alias;
//! * [`Envelope`] — versioned, round-stamped, CRC-checked message
//!   envelopes for the fault-tolerant inference protocol;
//! * [`RetryPolicy`] / [`Backoff`] — bounded retries with exponential
//!   backoff and deterministic jitter under a deadline budget;
//! * [`codec`] — the wire formats, including the raw-`f32` tensor payload
//!   encoding whose byte counts drive the WiFi cost model.
//!
//! # Examples
//!
//! ```
//! use teamnet_net::{ChannelTransport, Communicator};
//!
//! // A 2-node in-process cluster: rank 0 broadcasts to rank 1.
//! let nodes = ChannelTransport::mesh(2);
//! let result = crossbeam::thread::scope(|scope| {
//!     scope.spawn(|_| {
//!         Communicator::new(&nodes[1]).broadcast(0, None).unwrap()
//!     });
//!     Communicator::new(&nodes[0]).broadcast(0, Some(b"sensor data")).unwrap()
//! });
//! assert_eq!(result.unwrap(), b"sensor data");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
pub mod codec;
mod collective;
mod envelope;
mod error;
mod faults;
mod mailbox;
mod retry;
pub mod rpc;
mod tcp;
mod transport;

pub use clock::{Clock, ManualClock, SystemClock};
pub use collective::{Communicator, COLLECTIVE_TAG_BASE};
pub use envelope::{
    crc32, derive_trace_id, peek_trace, Envelope, PayloadKind, TraceContext, ENVELOPE_HEADER_LEN,
    ENVELOPE_VERSION, FLAG_TRACE, TRACE_EXT_LEN,
};
pub use error::NetError;
pub use faults::{plan_fates, ChaosConfig, ChaosTransport, FaultFate, LossyTransport};
pub use mailbox::Mailbox;
pub use retry::{Backoff, DetRng, RetryPolicy};
pub use tcp::TcpTransport;
pub use transport::{ChannelTransport, NodeId, Tag, Transport, TransportStats};
