//! Error type for the message-passing substrate.

use std::error::Error;
use std::fmt;

/// Error produced by transports, collectives and RPC.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket/file error.
    Io(std::io::Error),
    /// No matching message arrived within the deadline.
    Timeout {
        /// What the caller was waiting for.
        waiting_for: String,
    },
    /// The peer is not part of this cluster.
    UnknownPeer(usize),
    /// A frame failed to decode.
    Malformed(String),
    /// The transport has been shut down.
    Closed,
    /// The remote handler reported an application-level failure.
    Remote(String),
    /// A frame decoded structurally but failed its integrity checksum
    /// (bit corruption in flight).
    Corrupt {
        /// CRC stored in the envelope header.
        expected: u32,
        /// CRC recomputed over the received payload.
        got: u32,
    },
    /// A message carried a round stamp other than the one the receiver is
    /// currently collecting (a late reply from an earlier round, or a
    /// duplicate of an already-consumed one).
    Stale {
        /// Round stamped on the message.
        got: u64,
        /// Round the receiver is collecting.
        current: u64,
    },
    /// A constructor or configuration value was rejected before any I/O.
    InvalidConfig(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o failure: {e}"),
            NetError::Timeout { waiting_for } => write!(f, "timed out waiting for {waiting_for}"),
            NetError::UnknownPeer(id) => write!(f, "unknown peer node {id}"),
            NetError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            NetError::Closed => write!(f, "transport closed"),
            NetError::Remote(msg) => write!(f, "remote error: {msg}"),
            NetError::Corrupt { expected, got } => {
                write!(
                    f,
                    "corrupt frame: crc {got:#010x}, header said {expected:#010x}"
                )
            }
            NetError::Stale { got, current } => {
                write!(
                    f,
                    "stale message: stamped round {got}, collecting round {current}"
                )
            }
            NetError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NetError::Timeout {
            waiting_for: "gather from node 2".into()
        }
        .to_string()
        .contains("gather from node 2"));
        assert!(NetError::UnknownPeer(7).to_string().contains('7'));
        assert!(!NetError::Closed.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
