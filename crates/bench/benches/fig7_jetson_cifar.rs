//! Benchmark for **Figure 7** (Jetson TX2, image classification): the
//! per-node forward cost of SS-26 versus the SS-14 and SS-8 experts — the
//! compute asymmetry behind the figure's latency panel — plus the
//! simulated figure rows on both compute units.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teamnet_bench::suites::{cifar_baseline_spec, cifar_expert_spec, Scale};
use teamnet_bench::tables::cifar_workload;
use teamnet_core::build_expert;
use teamnet_nn::{Layer, Mode};
use teamnet_partition::{simulate, Strategy};
use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster};
use teamnet_tensor::Tensor;

fn bench_shake_shake_forwards(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut group = c.benchmark_group("fig7/model_forward");
    group.sample_size(20);
    let image = Tensor::rand_uniform(
        [1, 3, 32, 32],
        0.0,
        1.0,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6),
    );
    for (name, spec) in [
        ("ss26_baseline", cifar_baseline_spec(&scale)),
        ("ss14_expert", cifar_expert_spec(&scale, 2)),
        ("ss8_expert", cifar_expert_spec(&scale, 4)),
    ] {
        let mut model = build_expert(&spec, 0);
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.forward(black_box(&image), Mode::Eval)))
        });
    }
    group.finish();
}

fn bench_simulated_figure(c: &mut Criterion) {
    let scale = Scale::full();
    let mut group = c.benchmark_group("fig7/simulated");
    for (unit, unit_name, profile) in [
        (ComputeUnit::Cpu, "cpu", DeviceProfile::jetson_tx2_cpu()),
        (ComputeUnit::Gpu, "gpu", DeviceProfile::jetson_tx2_gpu()),
    ] {
        for (name, strategy, nodes) in [
            ("baseline", Strategy::Baseline, 1usize),
            ("teamnet_x2", Strategy::TeamNet { k: 2 }, 2),
            ("teamnet_x4", Strategy::TeamNet { k: 4 }, 4),
        ] {
            let w = cifar_workload(&scale, nodes.max(2));
            let cluster = SimCluster::homogeneous(profile.clone(), nodes);
            group.bench_function(format!("{unit_name}_{name}"), |b| {
                b.iter(|| black_box(simulate(strategy, &w, &cluster, unit)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_shake_shake_forwards, bench_simulated_figure);
criterion_main!(benches);
