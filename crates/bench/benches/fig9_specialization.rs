//! Benchmark for **Figure 9** (expert specialization): the cost of the
//! collaborative evaluation pass that produces the per-class win-rate
//! heat map, for K = 2 and K = 4 teams on the synthetic object dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teamnet_core::{build_expert, TeamNet};
use teamnet_data::synth_objects;
use teamnet_nn::ModelSpec;

fn bench_specialization_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/team_evaluate");
    group.sample_size(10);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
    let test = synth_objects(50, &mut rng);
    let spec = ModelSpec::ShakeShake {
        blocks_per_stage: 1,
        base_channels: 4,
        in_channels: 3,
        image_hw: 32,
        classes: 10,
    };
    for k in [2usize, 4] {
        let experts = (0..k as u64).map(|i| build_expert(&spec, i)).collect();
        let mut team = TeamNet::from_experts(spec.clone(), experts);
        group.bench_function(format!("k{k}_50_images"), |b| {
            b.iter(|| {
                let eval = team.evaluate(&test);
                black_box(eval.specialization())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_specialization_eval);
criterion_main!(benches);
