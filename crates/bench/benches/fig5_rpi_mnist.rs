//! Benchmark for **Figure 5** (Raspberry Pi 3B+, digit recognition): the
//! per-inference cost of the baseline MLP-8 versus TeamNet's 2×MLP-4 and
//! 4×MLP-2 — the figure's claim is that more, smaller experts shrink
//! per-node latency, memory and CPU load.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teamnet_bench::suites::{mnist_baseline_spec, mnist_expert_spec, Scale};
use teamnet_bench::tables::mnist_workload;
use teamnet_core::build_expert;
use teamnet_nn::{Layer, Mode};
use teamnet_partition::{simulate, Strategy};
use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster};
use teamnet_tensor::Tensor;

fn bench_per_node_work(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut group = c.benchmark_group("fig5/per_node_forward");
    let image = Tensor::rand_uniform(
        [1, 1, 28, 28],
        0.0,
        1.0,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3),
    );
    // What one node actually executes per inference under each setup.
    for (name, spec) in [
        ("mlp8_baseline", mnist_baseline_spec(&scale)),
        ("mlp4_expert", mnist_expert_spec(&scale, 2)),
        ("mlp2_expert", mnist_expert_spec(&scale, 4)),
    ] {
        let mut model = build_expert(&spec, 0);
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.forward(black_box(&image), Mode::Eval)))
        });
    }
    group.finish();
}

fn bench_simulated_figure(c: &mut Criterion) {
    let scale = Scale::full();
    let mut group = c.benchmark_group("fig5/simulated_rpi");
    let device = DeviceProfile::raspberry_pi_3b_plus();
    for (name, strategy, nodes) in [
        ("baseline", Strategy::Baseline, 1usize),
        ("teamnet_x2", Strategy::TeamNet { k: 2 }, 2),
        ("teamnet_x4", Strategy::TeamNet { k: 4 }, 4),
    ] {
        let w = mnist_workload(&scale, nodes.max(2));
        let cluster = SimCluster::homogeneous(device.clone(), nodes);
        group.bench_function(name, |b| {
            b.iter(|| black_box(simulate(strategy, &w, &cluster, ComputeUnit::Cpu)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_node_work, bench_simulated_figure);
criterion_main!(benches);
