//! Benchmark for **Table II** (Jetson TX2, image classification): real
//! forward-pass latency of the Shake-Shake models and the distributed
//! primitives each strategy is built from, plus the table's cost-model
//! simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teamnet_bench::suites::{cifar_baseline_spec, cifar_expert_spec, Scale};
use teamnet_bench::tables::cifar_workload;
use teamnet_core::{build_expert, TeamNet};
use teamnet_net::ChannelTransport;
use teamnet_nn::{Layer, Mode, ShakeShakeBlock};
use teamnet_partition::{
    branch_parallel_forward, serve_branch_worker, shutdown_branch_worker, simulate, Strategy,
};
use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster};
use teamnet_tensor::Tensor;

fn cifar_image() -> Tensor {
    Tensor::rand_uniform(
        [1, 3, 32, 32],
        0.0,
        1.0,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2),
    )
}

fn bench_model_forwards(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut group = c.benchmark_group("table2/real");
    group.sample_size(20);
    let image = cifar_image();

    let mut ss26 = build_expert(&cifar_baseline_spec(&scale), 0);
    group.bench_function("baseline_ss26_forward", |b| {
        b.iter(|| black_box(ss26.forward(black_box(&image), Mode::Eval)))
    });

    for k in [2usize, 4] {
        let spec = cifar_expert_spec(&scale, k);
        let depth = spec.depth();
        let experts = (0..k as u64).map(|i| build_expert(&spec, i)).collect();
        let mut team = TeamNet::from_experts(spec, experts);
        group.bench_function(format!("teamnet_x{k}_ss{depth}_predict"), |b| {
            b.iter(|| black_box(team.predict(black_box(&image))))
        });
    }

    // MPI-Branch primitive: branch-parallel evaluation of one block over an
    // in-process 2-node mesh, per iteration.
    group.bench_function("mpi_branch_block_roundtrip", |b| {
        b.iter(|| {
            let mesh = ChannelTransport::mesh(2);
            let make = || {
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
                ShakeShakeBlock::new(3, 4, 1, &mut rng)
            };
            crossbeam::thread::scope(|scope| {
                let node1 = &mesh[1];
                scope.spawn(move |_| {
                    let mut block = make();
                    serve_branch_worker(node1, 0, &mut block).unwrap();
                });
                let mut block = make();
                let out = branch_parallel_forward(
                    &mesh[0],
                    1,
                    &mut block,
                    &cifar_image(),
                    std::time::Duration::from_secs(5),
                )
                .unwrap();
                shutdown_branch_worker(&mesh[0], 1).unwrap();
                black_box(out);
            })
            .unwrap();
        })
    });
    group.finish();
}

fn bench_simulated_table(c: &mut Criterion) {
    let scale = Scale::full();
    let mut group = c.benchmark_group("table2/simulated");
    for (name, strategy, nodes) in [
        ("baseline", Strategy::Baseline, 1usize),
        ("teamnet_x2", Strategy::TeamNet { k: 2 }, 2),
        ("mpi_branch", Strategy::MpiBranch, 2),
        ("mpi_kernel_x4", Strategy::MpiKernel { nodes: 4 }, 4),
    ] {
        let w = cifar_workload(&scale, nodes.max(2));
        let cluster = SimCluster::homogeneous(DeviceProfile::jetson_tx2_cpu(), nodes);
        group.bench_function(format!("simulate_{name}"), |b| {
            b.iter(|| black_box(simulate(strategy, &w, &cluster, ComputeUnit::Cpu)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_forwards, bench_simulated_table);
criterion_main!(benches);
