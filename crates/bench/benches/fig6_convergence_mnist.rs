//! Benchmark for **Figure 6** (convergence of data-assignment proportions,
//! digits): the cost of the dynamic gate (Algorithm 2) per training batch
//! — the machinery whose convergence the figure plots — for K = 2 and
//! K = 4, plus a full TeamNet training iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teamnet_core::{DynamicGate, GateConfig, TrainConfig, Trainer};
use teamnet_data::synth_digits;
use teamnet_nn::ModelSpec;
use teamnet_tensor::Tensor;

fn bench_gate_assign(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/gate_assign");
    for k in [2usize, 4] {
        let entropy = Tensor::rand_uniform(
            [64, k],
            0.05,
            2.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4),
        );
        group.bench_function(format!("k{k}_batch64"), |b| {
            let mut gate = DynamicGate::new(k, GateConfig::default(), 0);
            b.iter(|| black_box(gate.assign(black_box(&entropy))))
        });
    }
    group.finish();
}

fn bench_training_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/train_epoch");
    group.sample_size(10);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let data = synth_digits(128, &mut rng);
    for k in [2usize, 4] {
        group.bench_function(format!("k{k}_epoch_128ex"), |b| {
            b.iter(|| {
                let config = TrainConfig {
                    epochs: 1,
                    batch_size: 64,
                    ..TrainConfig::default()
                };
                let mut trainer = Trainer::new(ModelSpec::mlp(2, 32), k, config);
                trainer.train_epoch(&data);
                black_box(trainer.history().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gate_assign, bench_training_iteration);
criterion_main!(benches);
