//! Benchmark for **Figure 8** (convergence of data-assignment proportions,
//! images): the dynamic gate at CNN-training batch shapes, and one
//! TeamNet training iteration on the synthetic object dataset with SS-8
//! experts — the loop whose assignment shares the figure tracks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teamnet_core::{DynamicGate, GateConfig, TrainConfig, Trainer};
use teamnet_data::synth_objects;
use teamnet_nn::ModelSpec;
use teamnet_tensor::Tensor;

fn bench_gate_at_cnn_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/gate_assign");
    for k in [2usize, 4] {
        let entropy = Tensor::rand_uniform(
            [64, k],
            0.05,
            2.3,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7),
        );
        group.bench_function(format!("k{k}_batch64"), |b| {
            let mut gate = DynamicGate::new(k, GateConfig::default(), 0);
            b.iter(|| black_box(gate.assign(black_box(&entropy))))
        });
    }
    group.finish();
}

fn bench_cnn_training_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/train_iteration");
    group.sample_size(10);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(8);
    let data = synth_objects(32, &mut rng);
    let spec = ModelSpec::ShakeShake {
        blocks_per_stage: 1,
        base_channels: 4,
        in_channels: 3,
        image_hw: 32,
        classes: 10,
    };
    group.bench_function("k2_ss8_batch32", |b| {
        b.iter(|| {
            let config = TrainConfig {
                epochs: 1,
                batch_size: 32,
                ..TrainConfig::default()
            };
            let mut trainer = Trainer::new(spec.clone(), 2, config);
            trainer.train_epoch(&data);
            black_box(trainer.history().len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gate_at_cnn_scale,
    bench_cnn_training_iteration
);
criterion_main!(benches);
