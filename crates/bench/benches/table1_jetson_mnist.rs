//! Benchmark for **Table I** (Jetson TX2, handwritten digits): real
//! wall-clock latency of every strategy's inference path on the host CPU,
//! plus the cost-model simulation that produces the table itself.
//!
//! The absolute numbers are host-CPU numbers (the paper's are Jetson
//! numbers); the *relative* ordering — TeamNet's one-shot protocol beating
//! MPI-Matrix's per-layer collectives, SG-MoE paying its gate first — is
//! the reproduced quantity.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teamnet_bench::suites::{mnist_baseline_spec, mnist_expert_spec, Scale};
use teamnet_bench::tables::mnist_workload;
use teamnet_core::{build_expert, TeamNet};
use teamnet_moe::{SgMoe, SgMoeConfig};
use teamnet_net::{ChannelTransport, Communicator};
use teamnet_nn::{state_vec, Layer, Mode};
use teamnet_partition::{mpi_matrix_forward, shard_mlp, simulate, Strategy};
use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster};
use teamnet_tensor::Tensor;

fn image_batch(n: usize) -> Tensor {
    Tensor::rand_uniform(
        [n, 1, 28, 28],
        0.0,
        1.0,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1),
    )
}

fn bench_real_paths(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut group = c.benchmark_group("table1/real");
    let image = image_batch(1);

    // Baseline: one deep MLP forward.
    let mut baseline = build_expert(&mnist_baseline_spec(&scale), 0);
    group.bench_function("baseline_mlp8_forward", |b| {
        b.iter(|| black_box(baseline.forward(black_box(&image), Mode::Eval)))
    });

    // TeamNet: K experts + arg-min entropy selection (in-process).
    for k in [2usize, 4] {
        let spec = mnist_expert_spec(&scale, k);
        let experts = (0..k as u64).map(|i| build_expert(&spec, i)).collect();
        let mut team = TeamNet::from_experts(spec, experts);
        group.bench_function(format!("teamnet_x{k}_predict"), |b| {
            b.iter(|| black_box(team.predict(black_box(&image))))
        });
    }

    // SG-MoE: gate + sparse expert evaluation.
    for k in [2usize, 4] {
        let spec = mnist_expert_spec(&scale, k);
        let config = SgMoeConfig {
            top_k: (k / 2).max(1),
            ..SgMoeConfig::default()
        };
        let mut moe = SgMoe::new(spec, k, config);
        group.bench_function(format!("sgmoe_x{k}_predict"), |b| {
            b.iter(|| black_box(moe.predict_proba(black_box(&image))))
        });
    }

    // MPI-Matrix over an in-process 2-node mesh (worker on a real thread).
    {
        let spec = mnist_baseline_spec(&scale);
        let mut model = build_expert(&spec, 0);
        // Strip the Flatten front end: shards operate on the raw MLP state.
        let state = state_vec(&mut model);
        let flat = image.reshape([1, 28 * 28]).expect("flatten");
        group.bench_function("mpi_matrix_2node_forward", |b| {
            b.iter(|| {
                let mesh = ChannelTransport::mesh(2);
                crossbeam::thread::scope(|scope| {
                    let shards1 = shard_mlp(&spec, &state, 1, 2);
                    let node1 = &mesh[1];
                    scope.spawn(move |_| {
                        let comm = Communicator::new(node1);
                        mpi_matrix_forward(&comm, &shards1, None).unwrap();
                    });
                    let shards0 = shard_mlp(&spec, &state, 0, 2);
                    let comm = Communicator::new(&mesh[0]);
                    black_box(mpi_matrix_forward(&comm, &shards0, Some(&flat)).unwrap());
                })
                .unwrap();
            })
        });
    }
    group.finish();
}

fn bench_simulated_table(c: &mut Criterion) {
    let scale = Scale::full();
    let mut group = c.benchmark_group("table1/simulated");
    let strategies = [
        ("baseline", Strategy::Baseline, 1usize),
        ("teamnet_x2", Strategy::TeamNet { k: 2 }, 2),
        ("mpi_matrix_x2", Strategy::MpiMatrix { nodes: 2 }, 2),
        ("sgmoe_rpc_x4", Strategy::SgMoeRpc { k: 4, top_k: 2 }, 4),
    ];
    for (name, strategy, nodes) in strategies {
        let w = mnist_workload(&scale, nodes.max(2));
        let cluster = SimCluster::homogeneous(DeviceProfile::jetson_tx2_cpu(), nodes);
        group.bench_function(format!("simulate_{name}"), |b| {
            b.iter(|| black_box(simulate(strategy, &w, &cluster, ComputeUnit::Cpu)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_real_paths, bench_simulated_table);
criterion_main!(benches);
