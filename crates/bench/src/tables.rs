//! Generators for Tables I and II.

use crate::suites::{
    cifar_baseline_spec, cifar_expert_spec, mnist_baseline_spec, mnist_expert_spec, CifarSuite,
    MnistSuite, Scale,
};
use serde::{Deserialize, Serialize};
use teamnet_core::build_expert;
use teamnet_partition::{simulate, ModelCost, Strategy, Workload};
use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster};

/// One row of a paper-style comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Strategy label (e.g. `TeamNet (x2)`).
    pub name: String,
    /// Number of edge nodes occupied.
    pub nodes: usize,
    /// Held-out accuracy in percent.
    pub accuracy_pct: f64,
    /// Modeled end-to-end inference latency in milliseconds.
    pub inference_ms: f64,
    /// Modeled resident-memory share on the most loaded node (percent).
    pub memory_pct: f64,
    /// Modeled average CPU utilization (percent, master node).
    pub cpu_pct: f64,
    /// Modeled average GPU utilization (percent, master node; 0 on
    /// CPU-only configurations).
    pub gpu_pct: f64,
    /// Messages per inference across the medium.
    pub messages: u64,
}

/// Renders rows as an aligned text table (with a GPU column when any row
/// uses one).
pub fn render(rows: &[TableRow], title: &str) -> String {
    let gpu = rows.iter().any(|r| r.gpu_pct > 0.0);
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!(
        "{:<22} {:>5} {:>9} {:>12} {:>9} {:>8}{}  {:>8}\n",
        "strategy",
        "nodes",
        "acc(%)",
        "latency(ms)",
        "mem(%)",
        "cpu(%)",
        if gpu { "   gpu(%)" } else { "" },
        "msgs"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>5} {:>9.1} {:>12.1} {:>9.1} {:>8.1}{}  {:>8}\n",
            r.name,
            r.nodes,
            r.accuracy_pct,
            r.inference_ms,
            r.memory_pct,
            r.cpu_pct,
            if gpu {
                format!(" {:>8.1}", r.gpu_pct)
            } else {
                String::new()
            },
            r.messages
        ));
    }
    out
}

fn workload(full_spec: &teamnet_nn::ModelSpec, expert_spec: &teamnet_nn::ModelSpec) -> Workload {
    let full = build_expert(full_spec, 0);
    let expert = build_expert(expert_spec, 0);
    let mut input = vec![1usize];
    input.extend(full_spec.input_dims());
    Workload {
        full: ModelCost::measure(&full, &full_spec.input_dims()),
        expert: ModelCost::measure(&expert, &expert_spec.input_dims()),
        result_bytes: 20,
    }
}

fn row(
    name: &str,
    accuracy: f64,
    strategy: Strategy,
    w: &Workload,
    cluster: &SimCluster,
    unit: ComputeUnit,
) -> TableRow {
    let report = simulate(strategy, w, cluster, unit);
    TableRow {
        name: name.to_string(),
        nodes: strategy.nodes(),
        accuracy_pct: accuracy * 100.0,
        inference_ms: report.sim.makespan.as_millis_f64(),
        memory_pct: report.memory_percent,
        cpu_pct: report.sim.cpu_percent[0],
        gpu_pct: report.sim.gpu_percent[0],
        messages: report.sim.messages_sent,
    }
}

/// Table I: Jetson TX2, handwritten digits. `unit` selects (a) CPU-only
/// or (b) GPU+CPU.
pub fn table1(suite: &MnistSuite, unit: ComputeUnit) -> Vec<TableRow> {
    let scale = &suite.scale;
    let device = match unit {
        ComputeUnit::Cpu => DeviceProfile::jetson_tx2_cpu(),
        ComputeUnit::Gpu => DeviceProfile::jetson_tx2_gpu(),
    };
    let base_spec = mnist_baseline_spec(scale);
    let mut rows = Vec::new();

    let w_base = workload(&base_spec, &base_spec);
    let one = SimCluster::homogeneous(device.clone(), 1);
    rows.push(row(
        "Baseline",
        suite.baseline_accuracy,
        Strategy::Baseline,
        &w_base,
        &one,
        unit,
    ));

    for &k in &[2usize, 4] {
        let cluster = SimCluster::homogeneous(device.clone(), k);
        let w = workload(&base_spec, &mnist_expert_spec(scale, k));
        let (team_acc, moe_acc) = if k == 2 {
            (suite.team2.accuracy, suite.moe2.1)
        } else {
            (suite.team4.accuracy, suite.moe4.1)
        };
        let tag = if k == 2 { "x2" } else { "x4" };
        rows.push(row(
            &format!("TeamNet ({tag})"),
            team_acc,
            Strategy::TeamNet { k },
            &w,
            &cluster,
            unit,
        ));
        rows.push(row(
            &format!("MPI-Matrix ({tag})"),
            suite.baseline_accuracy, // exact same function, see partition tests
            Strategy::MpiMatrix { nodes: k },
            &w_base,
            &cluster,
            unit,
        ));
        rows.push(row(
            &format!("SG-MoE-G ({tag})"),
            moe_acc,
            Strategy::SgMoeRpc {
                k,
                top_k: (k / 2).max(1),
            },
            &w,
            &cluster,
            unit,
        ));
        rows.push(row(
            &format!("SG-MoE-M ({tag})"),
            moe_acc,
            Strategy::SgMoeP2p {
                k,
                top_k: (k / 2).max(1),
            },
            &w,
            &cluster,
            unit,
        ));
    }
    rows
}

/// Table II: Jetson TX2, image classification (Shake-Shake CNNs).
pub fn table2(suite: &CifarSuite, unit: ComputeUnit) -> Vec<TableRow> {
    let scale = &suite.scale;
    let device = match unit {
        ComputeUnit::Cpu => DeviceProfile::jetson_tx2_cpu(),
        ComputeUnit::Gpu => DeviceProfile::jetson_tx2_gpu(),
    };
    let base_spec = cifar_baseline_spec(scale);
    let w_base = workload(&base_spec, &base_spec);
    let one = SimCluster::homogeneous(device.clone(), 1);
    let mut rows = Vec::new();
    rows.push(row(
        "Baseline",
        suite.baseline_accuracy,
        Strategy::Baseline,
        &w_base,
        &one,
        unit,
    ));

    for &k in &[2usize, 4] {
        let cluster = SimCluster::homogeneous(device.clone(), k);
        let w = workload(&base_spec, &cifar_expert_spec(scale, k));
        let (team_acc, moe_acc) = if k == 2 {
            (suite.team2.accuracy, suite.moe2.1)
        } else {
            (suite.team4.accuracy, suite.moe4.1)
        };
        let tag = if k == 2 { "x2" } else { "x4" };
        rows.push(row(
            &format!("TeamNet ({tag})"),
            team_acc,
            Strategy::TeamNet { k },
            &w,
            &cluster,
            unit,
        ));
        rows.push(row(
            &format!("MPI-Kernel ({tag})"),
            suite.baseline_accuracy,
            Strategy::MpiKernel { nodes: k },
            &w_base,
            &cluster,
            unit,
        ));
        if k == 2 {
            rows.push(row(
                "MPI-Branch (x2)",
                suite.baseline_accuracy,
                Strategy::MpiBranch,
                &w_base,
                &cluster,
                unit,
            ));
        }
        rows.push(row(
            &format!("SG-MoE-G ({tag})"),
            moe_acc,
            Strategy::SgMoeRpc {
                k,
                top_k: (k / 2).max(1),
            },
            &w,
            &cluster,
            unit,
        ));
        rows.push(row(
            &format!("SG-MoE-M ({tag})"),
            moe_acc,
            Strategy::SgMoeP2p {
                k,
                top_k: (k / 2).max(1),
            },
            &w,
            &cluster,
            unit,
        ));
    }
    rows
}

/// Convenience: builds the MNIST Table I workload pair for ad-hoc
/// simulation (used by the criterion benches).
pub fn mnist_workload(scale: &Scale, k: usize) -> Workload {
    workload(&mnist_baseline_spec(scale), &mnist_expert_spec(scale, k))
}

/// Convenience: builds the CIFAR Table II workload pair.
pub fn cifar_workload(scale: &Scale, k: usize) -> Workload {
    workload(&cifar_baseline_spec(scale), &cifar_expert_spec(scale, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::Scale;

    #[test]
    fn table1_shapes_hold_at_quick_scale() {
        let suite = MnistSuite::train(Scale::quick());
        let rows = table1(&suite, ComputeUnit::Cpu);
        assert_eq!(rows.len(), 9);
        let find = |n: &str| rows.iter().find(|r| r.name == n).expect(n).clone();
        let baseline = find("Baseline");
        let team2 = find("TeamNet (x2)");
        let mpi2 = find("MPI-Matrix (x2)");
        // The paper's headline orderings.
        assert!(mpi2.inference_ms > 10.0 * team2.inference_ms);
        assert!(team2.inference_ms < baseline.inference_ms * 1.5);
        assert!(team2.memory_pct < baseline.memory_pct);
        // Text rendering includes every row.
        let text = render(&rows, "Table I(a)");
        assert!(text.contains("TeamNet (x2)"));
        assert!(text.lines().count() >= 11);
    }

    #[test]
    fn table1_gpu_variant_reports_gpu_column() {
        let suite = MnistSuite::train(Scale::quick());
        let rows = table1(&suite, ComputeUnit::Gpu);
        assert!(rows.iter().any(|r| r.gpu_pct > 0.0));
        // Paper Table I(b): on the GPU the baseline beats TeamNet.
        let find = |n: &str| rows.iter().find(|r| r.name == n).expect(n).clone();
        assert!(find("Baseline").inference_ms < find("TeamNet (x2)").inference_ms);
    }
}
