//! Trained model suites shared by every table and figure.
//!
//! A suite trains, once, every contender a table needs: the single deep
//! baseline, TeamNet with 2 and 4 experts, and SG-MoE with 2 and 4
//! experts. Training really runs (on the synthetic datasets, or on the
//! real MNIST IDX files when the `MNIST_DIR` environment variable points
//! at them), so the accuracy columns are measured, not modeled.

use rand::rngs::StdRng;
use rand::SeedableRng;
use teamnet_core::{TeamNet, TrainConfig, Trainer, TrainingHistory};
use teamnet_data::{mnist_from_dir, synth_digits, synth_objects, Dataset};
use teamnet_moe::{SgMoe, SgMoeConfig};
use teamnet_nn::{accuracy, softmax_cross_entropy, Layer, Mode, ModelSpec, Sequential, Sgd};

/// Experiment scale: `full()` for paper-shaped runs, `quick()` for tests
/// and smoke runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Training examples for the MNIST-side experiments.
    pub train: usize,
    /// Training examples for the CIFAR-side experiments (CNNs are ~100×
    /// costlier per example, so this is smaller).
    pub train_cifar: usize,
    /// Held-out test examples.
    pub test: usize,
    /// Training epochs for the MNIST-side models.
    pub epochs_mnist: usize,
    /// Training epochs for the CIFAR-side models.
    pub epochs_cifar: usize,
    /// Hidden width of every MLP.
    pub mlp_hidden: usize,
    /// Base channel count of every Shake-Shake model.
    pub ss_channels: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Paper-shaped scale (minutes of training on a laptop CPU).
    pub fn full() -> Self {
        Scale {
            train: 6_000,
            train_cifar: 2_500,
            test: 1_500,
            epochs_mnist: 8,
            epochs_cifar: 5,
            mlp_hidden: 256,
            ss_channels: 8,
            seed: 7,
        }
    }

    /// Tiny scale for tests (seconds).
    pub fn quick() -> Self {
        Scale {
            train: 600,
            train_cifar: 200,
            test: 150,
            epochs_mnist: 3,
            epochs_cifar: 1,
            mlp_hidden: 64,
            ss_channels: 4,
            seed: 7,
        }
    }
}

/// Trains a plain single model (the paper's baseline column).
fn train_baseline(
    spec: &ModelSpec,
    data: &Dataset,
    epochs: usize,
    seed: u64,
    augment_shift: usize,
) -> Sequential {
    let mut model = teamnet_core::build_expert(spec, seed);
    // The deep baselines need a gentler rate than the shallow experts.
    let mut opt = Sgd::with_momentum(0.01, 0.9);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA5E);
    for _ in 0..epochs {
        let shuffled = data.shuffled(&mut rng);
        for mut batch in shuffled.batches(64) {
            if augment_shift > 0 {
                batch.images = teamnet_data::augment_batch(&batch.images, augment_shift, &mut rng);
            }
            let logits = model.forward(&batch.images, Mode::Train);
            let out = softmax_cross_entropy(&logits, &batch.labels);
            model.zero_grad();
            model.backward(&out.grad);
            opt.step(&mut model);
        }
    }
    model
}

/// One trained TeamNet plus its training trace.
pub struct TrainedTeam {
    /// The deployable team.
    pub team: TeamNet,
    /// Assignment-share trajectory (Figures 6/8).
    pub history: TrainingHistory,
    /// Held-out accuracy.
    pub accuracy: f64,
}

fn train_team(
    spec: &ModelSpec,
    k: usize,
    train: &Dataset,
    test: &Dataset,
    epochs: usize,
    seed: u64,
    learning_rate: f32,
    augment_shift: usize,
) -> TrainedTeam {
    let config = TrainConfig {
        epochs,
        batch_size: 64,
        seed,
        learning_rate,
        augment_shift,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(spec.clone(), k, config);
    trainer.train(train);
    let history = trainer.history().clone();
    let mut team = trainer.into_calibrated_team(train);
    let accuracy = team.evaluate(test).accuracy;
    TrainedTeam {
        team,
        history,
        accuracy,
    }
}

fn train_moe(
    spec: &ModelSpec,
    k: usize,
    train: &Dataset,
    test: &Dataset,
    epochs: usize,
    seed: u64,
    learning_rate: f32,
) -> (SgMoe, f64) {
    let config = SgMoeConfig {
        // Sparse routing (half the experts per example), matching the
        // paper's "data examples are randomly assigned to experts" regime;
        // top_k = K would be a dense ensemble, not SG-MoE.
        top_k: (k / 2).max(1),
        epochs,
        batch_size: 64,
        seed,
        learning_rate,
        ..SgMoeConfig::default()
    };
    let mut moe = SgMoe::new(spec.clone(), k, config);
    moe.train(train);
    let acc = moe.evaluate(test);
    (moe, acc)
}

/// Every trained contender for the MNIST-side experiments (Figure 5,
/// Tables I, Figure 6).
pub struct MnistSuite {
    /// Scale the suite was trained at.
    pub scale: Scale,
    /// Held-out test set.
    pub test: Dataset,
    /// The 8-layer baseline MLP and its accuracy.
    pub baseline: Sequential,
    /// Baseline held-out accuracy.
    pub baseline_accuracy: f64,
    /// TeamNet with two 4-layer experts.
    pub team2: TrainedTeam,
    /// TeamNet with four 2-layer experts.
    pub team4: TrainedTeam,
    /// SG-MoE with two 4-layer experts and its accuracy.
    pub moe2: (SgMoe, f64),
    /// SG-MoE with four 2-layer experts and its accuracy.
    pub moe4: (SgMoe, f64),
}

/// Architecture of the MNIST baseline (MLP-8).
pub fn mnist_baseline_spec(scale: &Scale) -> ModelSpec {
    ModelSpec::mlp(8, scale.mlp_hidden)
}

/// Architecture of the K-expert MNIST TeamNet (2×MLP-4 / 4×MLP-2).
pub fn mnist_expert_spec(scale: &Scale, k: usize) -> ModelSpec {
    ModelSpec::mlp(8 / k, scale.mlp_hidden)
}

/// The MNIST-side dataset: real MNIST when `MNIST_DIR` is set, synthetic
/// digits otherwise.
pub fn mnist_dataset(scale: &Scale) -> Dataset {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    if let Ok(dir) = std::env::var("MNIST_DIR") {
        if let Ok(full) = mnist_from_dir(&dir) {
            let shuffled = full.shuffled(&mut rng);
            let take = (scale.train + scale.test).min(shuffled.len());
            let indices: Vec<usize> = (0..take).collect();
            return shuffled.subset(&indices);
        }
    }
    synth_digits(scale.train + scale.test, &mut rng)
}

impl MnistSuite {
    /// Trains every MNIST contender at `scale`.
    pub fn train(scale: Scale) -> Self {
        let data = mnist_dataset(&scale);
        let (train, test) = data.split(data.len() - scale.test.min(data.len() / 5));
        let baseline_spec = mnist_baseline_spec(&scale);
        let baseline = train_baseline(&baseline_spec, &train, scale.epochs_mnist, scale.seed, 0);
        let mut baseline_model = baseline;
        let logits = baseline_model.forward(test.images(), Mode::Eval);
        let baseline_accuracy = accuracy(&logits, test.labels());

        let team2 = train_team(
            &mnist_expert_spec(&scale, 2),
            2,
            &train,
            &test,
            scale.epochs_mnist,
            scale.seed,
            0.1,
            0,
        );
        let team4 = train_team(
            &mnist_expert_spec(&scale, 4),
            4,
            &train,
            &test,
            scale.epochs_mnist,
            scale.seed + 1,
            0.1,
            0,
        );
        let moe2 = train_moe(
            &mnist_expert_spec(&scale, 2),
            2,
            &train,
            &test,
            scale.epochs_mnist,
            scale.seed + 2,
            0.1,
        );
        let moe4 = train_moe(
            &mnist_expert_spec(&scale, 4),
            4,
            &train,
            &test,
            scale.epochs_mnist,
            scale.seed + 3,
            0.1,
        );
        MnistSuite {
            scale,
            test,
            baseline: baseline_model,
            baseline_accuracy,
            team2,
            team4,
            moe2,
            moe4,
        }
    }
}

/// Every trained contender for the CIFAR-side experiments (Figure 7,
/// Tables II, Figures 8 and 9).
pub struct CifarSuite {
    /// Scale the suite was trained at.
    pub scale: Scale,
    /// Held-out test set.
    pub test: Dataset,
    /// The SS-26 baseline and its accuracy.
    pub baseline: Sequential,
    /// Baseline held-out accuracy.
    pub baseline_accuracy: f64,
    /// TeamNet with two SS-14 experts.
    pub team2: TrainedTeam,
    /// TeamNet with four SS-8 experts.
    pub team4: TrainedTeam,
    /// SG-MoE with two SS-14 experts and its accuracy.
    pub moe2: (SgMoe, f64),
    /// SG-MoE with four SS-8 experts and its accuracy.
    pub moe4: (SgMoe, f64),
}

/// Architecture of the CIFAR baseline (SS-26).
pub fn cifar_baseline_spec(scale: &Scale) -> ModelSpec {
    ModelSpec::shake_shake(26, scale.ss_channels)
}

/// Architecture of the K-expert CIFAR TeamNet (2×SS-14 / 4×SS-8).
pub fn cifar_expert_spec(scale: &Scale, k: usize) -> ModelSpec {
    let depth = if k >= 4 { 8 } else { 14 };
    ModelSpec::shake_shake(depth, scale.ss_channels)
}

/// The CIFAR-side dataset (synthetic objects with CIFAR-10 semantics).
pub fn cifar_dataset(scale: &Scale) -> Dataset {
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xC1FA);
    let test = scale.test.min(scale.train_cifar / 2).max(100);
    synth_objects(scale.train_cifar + test, &mut rng)
}

impl CifarSuite {
    /// Trains every CIFAR contender at `scale`.
    pub fn train(scale: Scale) -> Self {
        let data = cifar_dataset(&scale);
        let (train, test) = data.split(scale.train_cifar.min(data.len() - 100));
        let baseline_spec = cifar_baseline_spec(&scale);
        // CNNs: gentle rate + the standard flip/shift augmentation.
        let mut baseline =
            train_baseline(&baseline_spec, &train, scale.epochs_cifar, scale.seed, 2);
        let logits = baseline.forward(test.images(), Mode::Eval);
        let baseline_accuracy = accuracy(&logits, test.labels());

        let team2 = train_team(
            &cifar_expert_spec(&scale, 2),
            2,
            &train,
            &test,
            scale.epochs_cifar,
            scale.seed,
            0.01,
            2,
        );
        let team4 = train_team(
            &cifar_expert_spec(&scale, 4),
            4,
            &train,
            &test,
            scale.epochs_cifar,
            scale.seed + 1,
            0.01,
            2,
        );
        let moe2 = train_moe(
            &cifar_expert_spec(&scale, 2),
            2,
            &train,
            &test,
            scale.epochs_cifar,
            scale.seed + 2,
            0.01,
        );
        let moe4 = train_moe(
            &cifar_expert_spec(&scale, 4),
            4,
            &train,
            &test,
            scale.epochs_cifar,
            scale.seed + 3,
            0.01,
        );
        CifarSuite {
            scale,
            test,
            baseline,
            baseline_accuracy,
            team2,
            team4,
            moe2,
            moe4,
        }
    }
}
