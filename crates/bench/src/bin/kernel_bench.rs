//! Kernel micro-benchmarks for the parallel compute backend.
//!
//! ```text
//! kernel_bench [--smoke] [--out PATH] [--force-oversubscribed]
//! ```
//!
//! Times the three parallelized kernels — matmul (64³/256³/512³), conv2d
//! forward + backward on Shake-Shake CIFAR shapes, and the per-expert
//! team-forward fan-out at K=2/4 — at 1, 2 and 4 threads, and verifies
//! on every configuration that the parallel result is **bit-identical**
//! to the sequential one (the determinism contract of
//! `teamnet_tensor::pool`).
//!
//! Results are written as JSON (default `BENCH_kernels.json`). The file
//! records `host_threads` (`std::thread::available_parallelism`). Timing
//! a thread count the host cannot actually run in parallel measures
//! scheduling overhead, not speedup, so those rows' timing fields are
//! written as `null` (the bit-identity checks still run — they are
//! hardware-independent). `--force-oversubscribed` times them anyway for
//! scheduler-overhead studies; the per-row `timed` flag says which
//! regime produced the numbers.
//!
//! `--smoke` shrinks every problem so CI can run the full matrix in
//! seconds while still exercising the bit-identity checks.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use teamnet_core::{build_expert, TeamNet};
use teamnet_nn::ModelSpec;
use teamnet_obs::{Histogram, HistogramSnapshot, MetricsRegistry, Obs};
use teamnet_tensor::conv::{conv2d_backward_with, conv2d_with, Conv2dSpec};
use teamnet_tensor::{ParallelConfig, Tensor};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Serialize)]
struct MatmulRow {
    size: usize,
    threads: usize,
    iters: u32,
    /// False when the host could not run this thread count in parallel
    /// and timing was therefore refused; the timing fields are `null`.
    timed: bool,
    ms_per_iter: Option<f64>,
    gflops: Option<f64>,
    bit_identical_to_seq: bool,
    latency_ns: Option<HistogramSnapshot>,
}

#[derive(Serialize)]
struct ConvRow {
    input: Vec<usize>,
    weight: Vec<usize>,
    threads: usize,
    iters: u32,
    timed: bool,
    forward_ms: Option<f64>,
    backward_ms: Option<f64>,
    bit_identical_to_seq: bool,
    forward_ns: Option<HistogramSnapshot>,
    backward_ns: Option<HistogramSnapshot>,
}

#[derive(Serialize)]
struct TeamRow {
    k: usize,
    batch: usize,
    threads: usize,
    iters: u32,
    timed: bool,
    ms_per_iter: Option<f64>,
    bit_identical_to_seq: bool,
    latency_ns: Option<HistogramSnapshot>,
}

#[derive(Serialize)]
struct Report {
    host_threads: usize,
    smoke: bool,
    /// Thread counts above this were not timed (their timing fields are
    /// `null`): equal to `host_threads` unless `--force-oversubscribed`.
    timing_thread_cap: usize,
    caveat: &'static str,
    /// Cost of one disabled `Obs::span()` call (the NullSink path), in
    /// nanoseconds — the overhead the runtime pays when tracing is off.
    null_span_ns_per_call: f64,
    matmul: Vec<MatmulRow>,
    conv2d: Vec<ConvRow>,
    team_forward: Vec<TeamRow>,
}

/// Times `iters` runs of `f`, feeding each run's nanoseconds into `hist`
/// (the shared `teamnet-obs` log2-bucket machinery — the same snapshot
/// format the trace-report tool prints). Returns the mean ms per iter.
fn time_iters(iters: u32, hist: &Histogram, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    let mut last = start;
    for _ in 0..iters {
        f();
        let now = Instant::now();
        let ns = now.duration_since(last).as_nanos();
        hist.observe(u64::try_from(ns).unwrap_or(u64::MAX));
        last = now;
    }
    last.duration_since(start).as_secs_f64() * 1e3 / f64::from(iters)
}

/// Measures the per-call cost of a span against a disabled tracer: one
/// branch, no clock read, no lock. Reported in the JSON so "NullSink adds
/// no measurable overhead" is a number, not a claim.
fn measure_null_span_overhead() -> f64 {
    let obs = Obs::disabled();
    let iters = 1_000_000u32;
    let start = Instant::now();
    for _ in 0..iters {
        let _g = obs.span("bench.noop", &[]);
    }
    start.elapsed().as_secs_f64() * 1e9 / f64::from(iters)
}

fn dims_key(dims: &[usize]) -> String {
    dims.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

fn bench_matmul(
    sizes: &[usize],
    iters: u32,
    time_cap: usize,
    metrics: &MetricsRegistry,
) -> Vec<MatmulRow> {
    let mut rows = Vec::new();
    for &size in sizes {
        let mut rng = StdRng::seed_from_u64(size as u64);
        let a = Tensor::randn([size, size], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([size, size], 0.0, 1.0, &mut rng);
        let reference = a
            .try_matmul_with(&b, ParallelConfig::sequential())
            .expect("square matmul");
        for threads in THREAD_COUNTS {
            let cfg = ParallelConfig::with_threads(threads);
            let out = a.try_matmul_with(&b, cfg).expect("square matmul");
            let identical = bits(&out) == bits(&reference);
            let flops = 2.0 * (size as f64).powi(3);
            if threads > time_cap {
                println!("matmul {size:>3}^3  threads={threads}  (timing refused: host has {time_cap} thread(s))  bit-identical={identical}");
                rows.push(MatmulRow {
                    size,
                    threads,
                    iters: 0,
                    timed: false,
                    ms_per_iter: None,
                    gflops: None,
                    bit_identical_to_seq: identical,
                    latency_ns: None,
                });
                continue;
            }
            let hist = metrics.histogram(&format!("bench.matmul.n{size}.t{threads}.ns"));
            let ms = time_iters(iters, &hist, || {
                let _ = a.try_matmul_with(&b, cfg).expect("square matmul");
            });
            rows.push(MatmulRow {
                size,
                threads,
                iters,
                timed: true,
                ms_per_iter: Some(ms),
                gflops: Some(flops / (ms * 1e6)),
                bit_identical_to_seq: identical,
                latency_ns: Some(hist.snapshot()),
            });
            println!(
                "matmul {size:>3}^3  threads={threads}  {ms:8.3} ms  ({:6.2} GFLOP/s)  bit-identical={identical}",
                flops / (ms * 1e6)
            );
        }
    }
    rows
}

fn bench_conv(
    shapes: &[(Vec<usize>, Vec<usize>)],
    iters: u32,
    time_cap: usize,
    metrics: &MetricsRegistry,
) -> Vec<ConvRow> {
    let spec = Conv2dSpec::new(3, 1, 1);
    let mut rows = Vec::new();
    for (in_dims, w_dims) in shapes {
        let mut rng = StdRng::seed_from_u64(in_dims.iter().sum::<usize>() as u64);
        let input = Tensor::randn(in_dims.clone(), 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(w_dims.clone(), 0.0, 0.1, &mut rng);
        let bias = Tensor::randn([w_dims[0]], 0.0, 0.1, &mut rng);
        let seq = ParallelConfig::sequential();
        let fwd_ref = conv2d_with(&input, &weight, &bias, spec, seq);
        let grad_out = Tensor::randn(fwd_ref.dims().to_vec(), 0.0, 1.0, &mut rng);
        let bwd_ref = conv2d_backward_with(&input, &weight, &grad_out, spec, seq);
        for threads in THREAD_COUNTS {
            let cfg = ParallelConfig::with_threads(threads);
            let fwd = conv2d_with(&input, &weight, &bias, spec, cfg);
            let bwd = conv2d_backward_with(&input, &weight, &grad_out, spec, cfg);
            let identical = bits(&fwd) == bits(&fwd_ref)
                && bits(&bwd.0) == bits(&bwd_ref.0)
                && bits(&bwd.1) == bits(&bwd_ref.1)
                && bits(&bwd.2) == bits(&bwd_ref.2);
            if threads > time_cap {
                println!(
                    "conv2d {in_dims:?} * {w_dims:?}  threads={threads}  (timing refused: host has {time_cap} thread(s))  bit-identical={identical}"
                );
                rows.push(ConvRow {
                    input: in_dims.clone(),
                    weight: w_dims.clone(),
                    threads,
                    iters: 0,
                    timed: false,
                    forward_ms: None,
                    backward_ms: None,
                    bit_identical_to_seq: identical,
                    forward_ns: None,
                    backward_ns: None,
                });
                continue;
            }
            let key = dims_key(in_dims);
            let fwd_hist = metrics.histogram(&format!("bench.conv2d.fwd.{key}.t{threads}.ns"));
            let bwd_hist = metrics.histogram(&format!("bench.conv2d.bwd.{key}.t{threads}.ns"));
            let forward_ms = time_iters(iters, &fwd_hist, || {
                let _ = conv2d_with(&input, &weight, &bias, spec, cfg);
            });
            let backward_ms = time_iters(iters, &bwd_hist, || {
                let _ = conv2d_backward_with(&input, &weight, &grad_out, spec, cfg);
            });
            println!(
                "conv2d {in_dims:?} * {w_dims:?}  threads={threads}  fwd {forward_ms:8.3} ms  bwd {backward_ms:8.3} ms  bit-identical={identical}"
            );
            rows.push(ConvRow {
                input: in_dims.clone(),
                weight: w_dims.clone(),
                threads,
                iters,
                timed: true,
                forward_ms: Some(forward_ms),
                backward_ms: Some(backward_ms),
                bit_identical_to_seq: identical,
                forward_ns: Some(fwd_hist.snapshot()),
                backward_ns: Some(bwd_hist.snapshot()),
            });
        }
    }
    rows
}

fn bench_team(
    ks: &[usize],
    batch: usize,
    layers: usize,
    hidden: usize,
    iters: u32,
    time_cap: usize,
    metrics: &MetricsRegistry,
) -> Vec<TeamRow> {
    let mut rows = Vec::new();
    for &k in ks {
        let spec = ModelSpec::mlp(layers, hidden);
        let experts = (0..k).map(|i| build_expert(&spec, i as u64)).collect();
        let mut team = TeamNet::from_experts(spec, experts);
        let mut rng = StdRng::seed_from_u64(k as u64);
        let images = Tensor::rand_uniform([batch, 1, 28, 28], 0.0, 1.0, &mut rng);
        team.set_parallelism(ParallelConfig::sequential());
        let reference = team.predict(&images);
        for threads in THREAD_COUNTS {
            team.set_parallelism(ParallelConfig::with_threads(threads));
            let out = team.predict(&images);
            let identical = reference.len() == out.len()
                && reference.iter().zip(&out).all(|(a, b)| {
                    a.label == b.label
                        && a.expert == b.expert
                        && a.entropy.to_bits() == b.entropy.to_bits()
                });
            if threads > time_cap {
                println!(
                    "team-forward K={k} batch={batch}  threads={threads}  (timing refused: host has {time_cap} thread(s))  bit-identical={identical}"
                );
                rows.push(TeamRow {
                    k,
                    batch,
                    threads,
                    iters: 0,
                    timed: false,
                    ms_per_iter: None,
                    bit_identical_to_seq: identical,
                    latency_ns: None,
                });
                continue;
            }
            let hist = metrics.histogram(&format!("bench.team.k{k}.t{threads}.ns"));
            let ms = time_iters(iters, &hist, || {
                let _ = team.predict(&images);
            });
            println!(
                "team-forward K={k} batch={batch}  threads={threads}  {ms:8.3} ms  bit-identical={identical}"
            );
            rows.push(TeamRow {
                k,
                batch,
                threads,
                iters,
                timed: true,
                ms_per_iter: Some(ms),
                bit_identical_to_seq: identical,
                latency_ns: Some(hist.snapshot()),
            });
        }
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let force_oversubscribed = args.iter().any(|a| a == "--force-oversubscribed");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_kernels.json", String::as_str);

    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let time_cap = if force_oversubscribed {
        usize::MAX
    } else {
        host_threads
    };
    println!("kernel bench — host_threads={host_threads} smoke={smoke}");
    if host_threads < *THREAD_COUNTS.iter().max().unwrap_or(&1) && !force_oversubscribed {
        println!(
            "NOTE: refusing to time thread counts above {host_threads} — oversubscribed rows \
             would measure scheduling overhead, not speedup. Bit-identity is still checked \
             at every thread count. Pass --force-oversubscribed to time them anyway."
        );
    }
    println!();

    // Shake-Shake residual-branch shapes on CIFAR 32x32: the 16-channel
    // full-resolution stage and the 32-channel half-resolution stage.
    let (matmul_sizes, conv_shapes, team_batch, team_iters): (Vec<usize>, Vec<_>, usize, u32) =
        if smoke {
            (vec![64], vec![(vec![2, 8, 8, 8], vec![8, 8, 3, 3])], 4, 2)
        } else {
            (
                vec![64, 256, 512],
                vec![
                    (vec![8, 16, 32, 32], vec![16, 16, 3, 3]),
                    (vec![8, 32, 16, 16], vec![32, 32, 3, 3]),
                ],
                64,
                10,
            )
        };
    let matmul_iters = if smoke { 2 } else { 5 };
    let conv_iters = if smoke { 2 } else { 5 };

    let null_span_ns_per_call = measure_null_span_overhead();
    println!("disabled span() overhead: {null_span_ns_per_call:.2} ns/call\n");

    let metrics = MetricsRegistry::new();
    let matmul = bench_matmul(&matmul_sizes, matmul_iters, time_cap, &metrics);
    println!();
    let conv2d = bench_conv(&conv_shapes, conv_iters, time_cap, &metrics);
    println!();
    let team_forward = bench_team(&[2, 4], team_batch, 3, 32, team_iters, time_cap, &metrics);
    println!("\n{}", metrics.snapshot().summary());

    let all_identical = matmul.iter().all(|r| r.bit_identical_to_seq)
        && conv2d.iter().all(|r| r.bit_identical_to_seq)
        && team_forward.iter().all(|r| r.bit_identical_to_seq);

    let report = Report {
        host_threads,
        smoke,
        timing_thread_cap: time_cap.min(*THREAD_COUNTS.iter().max().unwrap_or(&1)),
        caveat: "Timings are from this host. Rows with timed=false exceeded the host's \
                 parallelism and were NOT timed (fields are null): on an oversubscribed \
                 host they would measure scheduling overhead, not speedup. The \
                 bit_identical_to_seq flags are hardware-independent and checked at every \
                 thread count regardless. Per-row *_ns fields are teamnet-obs log2-bucket \
                 histogram snapshots (quantiles are bucket upper bounds, honest to within \
                 2x). null_span_ns_per_call is the cost of a span against a disabled \
                 tracer — single-digit nanoseconds, i.e. no measurable overhead on kernels \
                 that run for microseconds or more.",
        null_span_ns_per_call,
        matmul,
        conv2d,
        team_forward,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Err(e) = std::fs::write(out_path, json + "\n") {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");
    assert!(
        all_identical,
        "determinism contract violated: some configuration was not bit-identical"
    );
}
