//! Regenerates every table and figure of the TeamNet paper.
//!
//! ```text
//! reproduce [--quick] [all|fig5|fig6|fig7|fig8|fig9|table1a|table1b|table2a|table2b|tcp]
//! ```
//!
//! * `--quick` uses the test-scale configuration (seconds instead of
//!   minutes; numbers are noisier).
//! * `tcp` additionally measures *real* end-to-end wall-clock latency of
//!   the implemented protocols over loopback TCP, as a sanity check of the
//!   cost model's orderings.
//!
//! Each artifact is printed and also written as JSON under `results/`.

use std::time::{Duration, Instant};
use teamnet_bench::figures::{
    fig5, fig6, fig7, fig8, fig9, render_convergence, render_specialization,
};
use teamnet_bench::suites::{mnist_expert_spec, CifarSuite, MnistSuite, Scale};
use teamnet_bench::tables::{render, table1, table2};
use teamnet_core::build_expert;
use teamnet_core::runtime::{master_infer, serve_worker, shutdown_workers, MasterConfig};
use teamnet_nn::{load_state, state_vec};
use teamnet_simnet::ComputeUnit;
use teamnet_tensor::Tensor;

struct Lazy<T> {
    value: Option<T>,
}

impl<T> Lazy<T> {
    fn new() -> Self {
        Lazy { value: None }
    }
    fn ensure(&mut self, build: impl FnOnce() -> T) {
        if self.value.is_none() {
            self.value = Some(build());
        }
    }
    fn get_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("ensure() not called")
    }
}

fn write_json(name: &str, value: &impl serde::Serialize) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
        }
    }
}

/// Measures real loopback-TCP end-to-end latency of the TeamNet protocol
/// with `k` nodes running the MNIST expert models.
fn measure_teamnet_tcp(scale: &Scale, k: usize, trained: &mut teamnet_core::TeamNet) -> Duration {
    let spec = mnist_expert_spec(scale, k);
    let states: Vec<Vec<Tensor>> = (0..k).map(|i| state_vec(trained.expert_mut(i))).collect();
    let nodes = teamnet_net::TcpTransport::mesh_localhost(k).expect("loopback mesh");
    let image = Tensor::rand_uniform(
        [1, 1, 28, 28],
        0.0,
        1.0,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1),
    );
    crossbeam::thread::scope(|scope| {
        for (i, node) in nodes.iter().enumerate().skip(1) {
            let spec = spec.clone();
            let state = states[i].clone();
            scope.spawn(move |_| {
                let mut expert = build_expert(&spec, 0);
                load_state(&mut expert, &state);
                serve_worker(node, 0, &mut expert).ok();
            });
        }
        let mut master = build_expert(&spec, 0);
        load_state(&mut master, &states[0]);
        let config = MasterConfig::default();
        // Warm up, then time 50 inferences.
        for _ in 0..5 {
            master_infer(&nodes[0], &mut master, &image, &config).expect("warmup inference");
        }
        let start = Instant::now();
        const ROUNDS: u32 = 50;
        for _ in 0..ROUNDS {
            master_infer(&nodes[0], &mut master, &image, &config).expect("timed inference");
        }
        let elapsed = start.elapsed() / ROUNDS;
        shutdown_workers(&nodes[0]).ok();
        elapsed
    })
    .expect("tcp measurement threads")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let wanted = if wanted.is_empty() {
        vec!["all"]
    } else {
        wanted
    };
    let everything = wanted.contains(&"all");
    let want = |name: &str| everything || wanted.contains(&name);

    let scale = if quick { Scale::quick() } else { Scale::full() };
    println!(
        "TeamNet reproduction — scale: {} (train {}, test {})\n",
        if quick { "quick" } else { "full" },
        scale.train,
        scale.test
    );

    let mut mnist: Lazy<MnistSuite> = Lazy::new();
    let mut cifar: Lazy<CifarSuite> = Lazy::new();
    let scale_m = scale.clone();
    let scale_c = scale.clone();
    let mnist_suite = |m: &mut Lazy<MnistSuite>| {
        m.ensure(|| {
            println!("[training MNIST-side suite: baseline, TeamNet x2/x4, SG-MoE x2/x4 ...]");
            let t0 = Instant::now();
            let s = MnistSuite::train(scale_m.clone());
            println!("[MNIST suite trained in {:?}]\n", t0.elapsed());
            s
        });
    };
    let cifar_suite = |c: &mut Lazy<CifarSuite>| {
        c.ensure(|| {
            println!("[training CIFAR-side suite: SS-26, TeamNet 2xSS-14 / 4xSS-8, SG-MoE ...]");
            let t0 = Instant::now();
            let s = CifarSuite::train(scale_c.clone());
            println!("[CIFAR suite trained in {:?}]\n", t0.elapsed());
            s
        });
    };

    if want("fig5") {
        mnist_suite(&mut mnist);
        let suite = mnist.get_mut();
        let rows = fig5(suite);
        println!(
            "{}",
            render(&rows, "Figure 5 — Raspberry Pi 3B+, handwritten digits")
        );
        write_json("fig5", &rows);
    }
    if want("table1a") {
        mnist_suite(&mut mnist);
        let suite = mnist.get_mut();
        let rows = table1(suite, ComputeUnit::Cpu);
        println!(
            "{}",
            render(
                &rows,
                "Table I(a) — Jetson TX2 CPU only, handwritten digits"
            )
        );
        write_json("table1a", &rows);
    }
    if want("table1b") {
        mnist_suite(&mut mnist);
        let suite = mnist.get_mut();
        let rows = table1(suite, ComputeUnit::Gpu);
        println!(
            "{}",
            render(
                &rows,
                "Table I(b) — Jetson TX2 GPU + CPU, handwritten digits"
            )
        );
        write_json("table1b", &rows);
    }
    if want("fig6") {
        mnist_suite(&mut mnist);
        let suite = mnist.get_mut();
        let series = fig6(suite);
        println!(
            "{}",
            render_convergence(&series, "Figure 6 — convergence of data shares (digits)")
        );
        write_json("fig6", &series);
    }
    if want("fig7") {
        cifar_suite(&mut cifar);
        let suite = cifar.get_mut();
        for (unit, tag) in [(ComputeUnit::Cpu, "CPU"), (ComputeUnit::Gpu, "GPU")] {
            let rows = fig7(suite, unit);
            println!(
                "{}",
                render(
                    &rows,
                    &format!("Figure 7 — Jetson TX2 {tag}, image classification")
                )
            );
            write_json(&format!("fig7_{}", tag.to_lowercase()), &rows);
        }
    }
    if want("table2a") {
        cifar_suite(&mut cifar);
        let suite = cifar.get_mut();
        let rows = table2(suite, ComputeUnit::Cpu);
        println!(
            "{}",
            render(
                &rows,
                "Table II(a) — Jetson TX2 CPU only, image classification"
            )
        );
        write_json("table2a", &rows);
    }
    if want("table2b") {
        cifar_suite(&mut cifar);
        let suite = cifar.get_mut();
        let rows = table2(suite, ComputeUnit::Gpu);
        println!(
            "{}",
            render(
                &rows,
                "Table II(b) — Jetson TX2 GPU + CPU, image classification"
            )
        );
        write_json("table2b", &rows);
    }
    if want("fig8") {
        cifar_suite(&mut cifar);
        let suite = cifar.get_mut();
        let series = fig8(suite);
        println!(
            "{}",
            render_convergence(&series, "Figure 8 — convergence of data shares (images)")
        );
        write_json("fig8", &series);
    }
    if want("fig9") {
        cifar_suite(&mut cifar);
        let suite = cifar.get_mut();
        for k in [2usize, 4] {
            let map = fig9(suite, k);
            println!(
                "{}",
                render_specialization(&map, "Figure 9 — expert specialization")
            );
            write_json(&format!("fig9_k{k}"), &map);
        }
    }
    if want("ablations") {
        use teamnet_bench::ablations::{combiner_comparison, gain_sweep, link_sweep, load_sweep};
        println!("== Ablation A1 — proportional-controller gain a ==");
        let gains = gain_sweep(scale.seed);
        println!(
            "{:<6} {:>24} {:>22}",
            "a", "theory resid @100", "measured imbalance"
        );
        for r in &gains {
            println!(
                "{:<6} {:>24.4} {:>22.3}",
                r.gain, r.theory_imbalance_at_100, r.measured_imbalance
            );
        }
        write_json("ablation_gain", &gains);

        println!("\n== Ablation A2 — link quality (MNIST workload, 2 nodes) ==");
        let links = link_sweep(&scale);
        println!(
            "{:<16} {:>12} {:>14} {:>16}",
            "link", "baseline(ms)", "teamnet x2(ms)", "mpi-matrix(ms)"
        );
        for r in &links {
            println!(
                "{:<16} {:>12.1} {:>14.1} {:>16.1}",
                r.link, r.baseline_ms, r.teamnet_x2_ms, r.mpi_matrix_x2_ms
            );
        }
        write_json("ablation_link", &links);

        println!("\n== Ablation A3 — inference combiner (Section V) ==");
        mnist_suite(&mut mnist);
        let suite = mnist.get_mut();
        let combiners = combiner_comparison(suite);
        println!(
            "{:<4} {:>18} {:>18}",
            "K", "argmin acc(%)", "majority acc(%)"
        );
        for r in &combiners {
            println!(
                "{:<4} {:>18.1} {:>18.1}",
                r.k,
                r.argmin_accuracy * 100.0,
                r.majority_accuracy * 100.0
            );
        }
        write_json("ablation_combiner", &combiners);

        println!("\n== Ablation A4 — response time under Poisson load (M/D/1) ==");
        let loads = load_sweep(&scale, scale.seed);
        println!(
            "{:<10} {:>16} {:>16} {:>12} {:>12}",
            "rate(Hz)", "baseline(ms)", "teamnet(ms)", "rho base", "rho team"
        );
        for r in &loads {
            println!(
                "{:<10} {:>16.1} {:>16.1} {:>12.2} {:>12.2}",
                r.rate_hz,
                r.baseline_mean_ms,
                r.teamnet_mean_ms,
                r.baseline_utilization,
                r.teamnet_utilization
            );
        }
        write_json("ablation_load", &loads);

        println!("\n== Ablation A5 — heterogeneous clusters ==");
        let mixed = teamnet_bench::ablations::mixed_cluster_sweep(&scale);
        println!(
            "{:<16} {:>16} {:>22}",
            "cluster", "teamnet x2(ms)", "slowest compute(ms)"
        );
        for r in &mixed {
            println!(
                "{:<16} {:>16.1} {:>22.1}",
                r.cluster, r.teamnet_x2_ms, r.slowest_compute_ms
            );
        }
        write_json("ablation_mixed", &mixed);
        println!();
    }
    if want("tcp") {
        println!("== Appendix — real loopback-TCP end-to-end latency (TeamNet protocol) ==");
        mnist_suite(&mut mnist);
        let suite = mnist.get_mut();
        let t2 = measure_teamnet_tcp(&suite.scale.clone(), 2, &mut suite.team2.team);
        println!("TeamNet x2 over TCP: {t2:?} per inference");
        let t4 = measure_teamnet_tcp(&suite.scale.clone(), 4, &mut suite.team4.team);
        println!("TeamNet x4 over TCP: {t4:?} per inference");
        write_json(
            "tcp_appendix",
            &serde_json::json!({
                "teamnet_x2_us": t2.as_micros() as u64,
                "teamnet_x4_us": t4.as_micros() as u64,
            }),
        );
    }
    println!("done. JSON artifacts in ./results/");
}
