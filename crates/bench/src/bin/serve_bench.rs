//! Serving-latency benchmark: p50/p99 latency and sustained throughput
//! versus offered load, for several batch caps.
//!
//! ```text
//! serve_bench [--smoke] [--out PATH]
//! ```
//!
//! Drives the *real* admission/batching state machine
//! ([`teamnet_serve::Batcher`], dual trigger: 8 ms deadline or the batch
//! cap) in virtual time with Poisson arrivals from
//! [`teamnet_simnet::poisson_schedule`], against a modeled collaborative
//! round: a fixed per-round overhead (broadcast + gather + argmin fold)
//! plus a per-row forward cost. The model isolates what batching itself
//! buys — amortizing the round overhead across coalesced rows — from
//! hardware noise, so the numbers are deterministic per seed and the
//! "throughput at fixed p99 rises with the batch cap" claim is checkable
//! in CI.
//!
//! Results are written as JSON (default `BENCH_serve.json`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;
use teamnet_obs::{HistogramSnapshot, Obs, RingSink, SystemClock};
use teamnet_serve::{Batcher, BatcherConfig};
use teamnet_simnet::poisson_schedule;

/// Modeled cost of one collaborative inference round regardless of batch
/// size: input broadcast, worker forwards kicked off, result gather and
/// the argmin-entropy fold. Matches the low-milliseconds rounds the
/// chaos soaks observe on loopback channel transports.
const ROUND_OVERHEAD_NS: u64 = 2_000_000;
/// Modeled incremental cost per batched row (per-row forward + encode).
const PER_ROW_NS: u64 = 200_000;
/// A served request is "within SLO" when its end-to-end latency (queue
/// wait + round) stays under this p99 target.
const FIXED_P99_NS: u64 = 25_000_000;
/// The engine's dual-trigger deadline (mirrors `BatcherConfig::default`).
const MAX_DELAY_NS: u64 = 8_000_000;
/// Admission window in rows, identical across caps so only the batch cap
/// varies between sweeps.
const QUEUE_CAP_ROWS: usize = 256;

#[derive(Serialize)]
struct LoadRow {
    offered_rps: f64,
    served: usize,
    rejected: usize,
    p50_latency_ns: u64,
    p99_latency_ns: u64,
    /// Served requests divided by the horizon from first arrival to last
    /// completion.
    throughput_rps: f64,
    within_slo: bool,
}

#[derive(Serialize)]
struct CapSweep {
    batch_cap: usize,
    /// Highest offered load (req/s) that stayed within the fixed p99
    /// target with < 1% admission rejections — the headline "throughput
    /// at fixed p99" number.
    sustained_rps: f64,
    loads: Vec<LoadRow>,
}

#[derive(Serialize)]
struct ServiceModel {
    round_overhead_ns: u64,
    per_row_ns: u64,
    max_delay_ns: u64,
    queue_cap_rows: usize,
}

/// One `round.attr.*.ns` histogram from a live traced cluster, flattened
/// for the JSON report.
#[derive(Serialize)]
struct AttrHistogram {
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
}

impl AttrHistogram {
    fn from_snapshot(h: &HistogramSnapshot) -> Self {
        AttrHistogram {
            count: h.count,
            sum_ns: h.sum,
            min_ns: h.min,
            max_ns: h.max,
            p50_ns: h.quantile(50),
            p99_ns: h.quantile(99),
            p999_ns: h.quantile_permille(999),
        }
    }
}

/// Where the wall time of a real collaborative round goes — the same
/// compute / wire / wait / retry split `cargo xtask trace-assemble`
/// derives offline, here read straight from the runtime's
/// `round.attr.*.ns` histograms over a live 3-node loopback cluster.
#[derive(Serialize)]
struct RoundAttribution {
    rounds: usize,
    compute: AttrHistogram,
    wire: AttrHistogram,
    wait: AttrHistogram,
    retry: AttrHistogram,
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    seed: u64,
    requests_per_point: usize,
    fixed_p99_ns: u64,
    service_model: ServiceModel,
    caveat: &'static str,
    caps: Vec<CapSweep>,
    round_attribution: RoundAttribution,
}

/// Runs a short traced inference session on a real 3-node loopback
/// cluster and reads back the per-round latency attribution histograms.
/// This grounds the simulated service model: `round_overhead_ns` above
/// should sit in the same decade as `wire + wait` here.
fn measure_round_attribution(rounds: usize) -> RoundAttribution {
    use teamnet_core::build_expert;
    use teamnet_core::runtime::{serve_worker, shutdown_workers, InferenceSession, MasterConfig};
    use teamnet_nn::ModelSpec;
    use teamnet_tensor::Tensor;

    let spec = ModelSpec::mlp(2, 16);
    let mut mesh = teamnet_net::ChannelTransport::mesh(3);
    let worker2 = mesh.pop().expect("node 2");
    let worker1 = mesh.pop().expect("node 1");
    let master = mesh.pop().expect("node 0");

    // Tracing must be on (that is what arms the attribution histograms),
    // but the span stream itself is irrelevant here — a small ring
    // swallows it at fixed cost. A NullSink would disable the tracer.
    let obs = Obs::new(Arc::new(SystemClock), Arc::new(RingSink::new(64)));
    let config = MasterConfig {
        obs: obs.clone(),
        trace_seed: 0xBE4C,
        ..MasterConfig::default()
    };

    crossbeam::thread::scope(|scope| {
        for (i, node) in [&worker1, &worker2].into_iter().enumerate() {
            let spec = spec.clone();
            scope.spawn(move |_| {
                let mut expert = build_expert(&spec, i as u64 + 1);
                serve_worker(node, 0, &mut expert).expect("worker");
            });
        }
        let mut session = InferenceSession::new(&master, config);
        let mut expert = build_expert(&spec, 0);
        for round in 0..rounds {
            let images = Tensor::full([2, 1, 28, 28], (round % 5) as f32 * 0.2);
            session.infer(&master, &mut expert, &images).expect("infer");
        }
        shutdown_workers(&master).expect("shutdown");
    })
    .expect("scope");

    let snap = obs.metrics.snapshot();
    let take = |name: &str| -> AttrHistogram {
        let h = snap
            .histograms
            .get(name)
            .unwrap_or_else(|| panic!("histogram {name} missing from traced session"));
        AttrHistogram::from_snapshot(h)
    };
    RoundAttribution {
        rounds,
        compute: take("round.attr.compute.ns"),
        wire: take("round.attr.wire.ns"),
        wait: take("round.attr.wait.ns"),
        retry: take("round.attr.retry.ns"),
    }
}

/// Runs one (batch cap, offered load) point: virtual-time event loop over
/// the real `Batcher`, single modeled server.
fn simulate_point(cap: usize, rate_hz: f64, requests: usize, seed: u64) -> LoadRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let schedule: Vec<u64> = poisson_schedule(rate_hz, requests, &mut rng)
        .into_iter()
        .map(|t| t.as_nanos())
        .collect();

    let mut batcher = Batcher::new(BatcherConfig {
        max_batch_rows: cap,
        max_delay_ns: MAX_DELAY_NS,
        queue_cap_rows: QUEUE_CAP_ROWS,
    });
    let mut now = 0u64;
    let mut server_free = 0u64;
    let mut next = 0usize;
    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    let mut rejected = 0usize;
    let mut last_done = 0u64;

    while next < schedule.len() || !batcher.is_empty() {
        // When would the current pending set flush? Size trigger: as soon
        // as the server frees up. Deadline trigger: oldest + max_delay,
        // or when the server frees up, whichever is later.
        let flush_at = if batcher.is_empty() {
            u64::MAX
        } else {
            let trigger = if batcher.ready(now) {
                now
            } else {
                batcher.due_at().unwrap_or(now)
            };
            trigger.max(server_free).max(now)
        };
        if next < schedule.len() && schedule[next] <= flush_at {
            now = schedule[next];
            if batcher.admit(next as u64, 1, now).is_err() {
                rejected += 1;
            }
            next += 1;
            continue;
        }
        if flush_at == u64::MAX {
            break;
        }
        now = flush_at;
        let batch = batcher.take_batch();
        let rows: u64 = batch.iter().map(|p| p.rows as u64).sum();
        let done = now + ROUND_OVERHEAD_NS + rows * PER_ROW_NS;
        server_free = done;
        last_done = done;
        for p in &batch {
            latencies.push(done.saturating_sub(p.enqueued_ns));
        }
    }

    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let served = latencies.len();
    let horizon_s = (last_done.max(1)) as f64 / 1e9;
    let p99 = pct(0.99);
    LoadRow {
        offered_rps: rate_hz,
        served,
        rejected,
        p50_latency_ns: pct(0.50),
        p99_latency_ns: p99,
        throughput_rps: served as f64 / horizon_s,
        within_slo: p99 <= FIXED_P99_NS && (rejected as f64) < 0.01 * requests as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_serve.json", String::as_str);

    let seed = 0x5E21_BE4C;
    let requests = if smoke { 2_000 } else { 20_000 };
    let caps = [1usize, 8, 64];
    let offered: Vec<f64> = vec![100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0];

    println!("serve bench — smoke={smoke} requests/point={requests}\n");
    let mut sweeps = Vec::new();
    for &cap in &caps {
        let mut loads = Vec::new();
        let mut sustained = 0.0f64;
        for &rate in &offered {
            let row = simulate_point(cap, rate, requests, seed);
            println!(
                "cap={cap:>2}  offered={rate:>6.0} rps  p50={:7.2} ms  p99={:7.2} ms  served={}  rejected={}  slo={}",
                row.p50_latency_ns as f64 / 1e6,
                row.p99_latency_ns as f64 / 1e6,
                row.served,
                row.rejected,
                row.within_slo
            );
            if row.within_slo {
                sustained = sustained.max(row.offered_rps);
            }
            loads.push(row);
        }
        println!("cap={cap:>2}  sustained at p99<=25ms: {sustained:.0} rps\n");
        sweeps.push(CapSweep {
            batch_cap: cap,
            sustained_rps: sustained,
            loads,
        });
    }

    // The headline claim, enforced: raising the batch cap must not lower
    // the sustained rate, and the largest cap must beat no batching.
    for pair in sweeps.windows(2) {
        assert!(
            pair[1].sustained_rps >= pair[0].sustained_rps,
            "sustained throughput regressed: cap {} gives {} rps, cap {} gives {} rps",
            pair[0].batch_cap,
            pair[0].sustained_rps,
            pair[1].batch_cap,
            pair[1].sustained_rps
        );
    }
    let (first, last) = (&sweeps[0], &sweeps[sweeps.len() - 1]);
    assert!(
        last.sustained_rps > first.sustained_rps,
        "batching bought nothing: cap {} and cap {} both sustain {} rps",
        first.batch_cap,
        last.batch_cap,
        first.sustained_rps
    );

    let attr_rounds = if smoke { 8 } else { 32 };
    let round_attribution = measure_round_attribution(attr_rounds);
    println!(
        "round attribution over {attr_rounds} live rounds: compute p50={:.3} ms  wire p50={:.3} ms  wait p50={:.3} ms  retry sum={:.3} ms",
        round_attribution.compute.p50_ns as f64 / 1e6,
        round_attribution.wire.p50_ns as f64 / 1e6,
        round_attribution.wait.p50_ns as f64 / 1e6,
        round_attribution.retry.sum_ns as f64 / 1e6,
    );

    let report = Report {
        smoke,
        seed,
        requests_per_point: requests,
        fixed_p99_ns: FIXED_P99_NS,
        service_model: ServiceModel {
            round_overhead_ns: ROUND_OVERHEAD_NS,
            per_row_ns: PER_ROW_NS,
            max_delay_ns: MAX_DELAY_NS,
            queue_cap_rows: QUEUE_CAP_ROWS,
        },
        caveat: "Virtual-time simulation: the admission and dual-trigger batching logic is \
                 the production teamnet-serve Batcher, the collaborative round is modeled \
                 as round_overhead_ns + rows * per_row_ns. Numbers isolate the batching \
                 win (round overhead amortized across coalesced rows) and are \
                 deterministic per seed; they are not wall-clock measurements of a \
                 particular host.",
        caps: sweeps,
        round_attribution,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Err(e) = std::fs::write(out_path, json + "\n") {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
