//! # teamnet-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! TeamNet paper's evaluation (Section VI):
//!
//! | Paper artifact | Generator |
//! |---|---|
//! | Figure 5 (RPi, MNIST panel)            | [`figures::fig5`] |
//! | Table I(a)/(b) (Jetson CPU/GPU, MNIST) | [`tables::table1`] |
//! | Figure 6 (MNIST γ-convergence)         | [`figures::fig6`] |
//! | Figure 7 (Jetson, CIFAR panel)         | [`figures::fig7`] |
//! | Table II(a)/(b) (Jetson, CIFAR)        | [`tables::table2`] |
//! | Figure 8 (CIFAR γ-convergence)         | [`figures::fig8`] |
//! | Figure 9 (specialization heat map)     | [`figures::fig9`] |
//!
//! Accuracy columns come from *really training* every contender (TeamNet,
//! the single baseline, SG-MoE) on the synthetic datasets; latency /
//! memory / utilization columns come from the calibrated edge-device cost
//! model in `teamnet-simnet` + `teamnet-partition`, driven by FLOP/byte
//! profiles measured on the real models. The `reproduce` binary prints the
//! paper-shaped tables; `cargo bench` runs Criterion microbenchmarks of
//! the real inference paths (one bench target per table/figure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod figures;
pub mod suites;
pub mod tables;

pub use suites::{CifarSuite, MnistSuite, Scale};
pub use tables::TableRow;
