//! Ablations of the design choices DESIGN.md calls out — beyond the
//! paper's own evaluation, these probe *why* TeamNet behaves as it does.
//!
//! 1. [`gain_sweep`] — the proportional-controller gain `a` against
//!    convergence speed (theory and measured);
//! 2. [`link_sweep`] — where TeamNet's latency win appears/disappears as
//!    the network gets better or worse;
//! 3. [`combiner_comparison`] — the paper's arg-min-entropy gate versus
//!    the rejected majority-vote ensemble (Section V);
//! 4. [`load_sweep`] — response time under a Poisson request stream, where
//!    TeamNet's smaller per-node service time buys headroom.

use crate::suites::{mnist_baseline_spec, mnist_expert_spec, MnistSuite, Scale};
use serde::{Deserialize, Serialize};
use teamnet_core::convergence::{gamma_recurrence, imbalance};
use teamnet_core::{build_expert, TrainConfig, Trainer};
use teamnet_data::synth_digits;
use teamnet_nn::ModelSpec;
use teamnet_partition::{simulate, ModelCost, Strategy, Workload};
use teamnet_simnet::{simulate_serving, ComputeUnit, DeviceProfile, SimCluster, SimTime, WifiLink};

/// One row of the controller-gain ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GainRow {
    /// Controller gain `a`.
    pub gain: f32,
    /// Theoretical residual imbalance of the Appendix A recurrence after
    /// 100 batches from a 0.9/0.1 start (the tail contraction rate is
    /// `(L−1)/L·(1 − a/(L−1))`, so larger gains damp harder).
    pub theory_imbalance_at_100: f32,
    /// Measured final imbalance after a short real training run.
    pub measured_imbalance: f32,
}

/// Sweeps the proportional-controller gain `a`.
pub fn gain_sweep(seed: u64) -> Vec<GainRow> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let data = synth_digits(500, &mut rng);
    [0.1f32, 0.3, 0.5, 0.7, 0.9]
        .iter()
        .map(|&gain| {
            // Theory: residual deviation after 100 batches.
            let trajectory = gamma_recurrence(gain, &[0.9, 0.1], 100);
            // gamma_recurrence(_, _, 100) yields exactly 100 points. lint: allow(no-expect)
            let theory_imbalance_at_100 = imbalance(trajectory.last().expect("non-empty"));
            // Measurement: a short real training run with this gain.
            let mut config = TrainConfig {
                epochs: 3,
                batch_size: 50,
                seed,
                ..TrainConfig::default()
            };
            config.gate.gain = gain;
            let mut trainer = Trainer::new(ModelSpec::mlp(2, 24), 2, config);
            trainer.train(&data);
            let measured_imbalance = trainer.history().final_imbalance(3);
            GainRow {
                gain,
                theory_imbalance_at_100,
                measured_imbalance,
            }
        })
        .collect()
}

/// One row of the link-quality ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkRow {
    /// Link label.
    pub link: String,
    /// Baseline latency (ms) — link-independent.
    pub baseline_ms: f64,
    /// TeamNet ×2 latency (ms) on this link.
    pub teamnet_x2_ms: f64,
    /// MPI-Matrix ×2 latency (ms) on this link.
    pub mpi_matrix_x2_ms: f64,
}

/// Sweeps the network quality under the MNIST workload: TeamNet's win
/// grows as the link worsens *relative to MPI*, but the baseline wins
/// outright when the link is bad enough.
pub fn link_sweep(scale: &Scale) -> Vec<LinkRow> {
    let full_spec = mnist_baseline_spec(scale);
    let expert_spec = mnist_expert_spec(scale, 2);
    let w = Workload {
        full: ModelCost::measure(&build_expert(&full_spec, 0), &full_spec.input_dims()),
        expert: ModelCost::measure(&build_expert(&expert_spec, 0), &expert_spec.input_dims()),
        result_bytes: 20,
    };
    [
        ("ethernet", WifiLink::ethernet()),
        ("wifi-802.11n", WifiLink::wifi_80211n()),
        ("wifi-congested", WifiLink::wifi_congested()),
    ]
    .into_iter()
    .map(|(name, link)| {
        let cluster = SimCluster::homogeneous(DeviceProfile::jetson_tx2_cpu(), 2).with_link(link);
        let base = simulate(Strategy::Baseline, &w, &cluster, ComputeUnit::Cpu);
        let team = simulate(Strategy::TeamNet { k: 2 }, &w, &cluster, ComputeUnit::Cpu);
        let mpi = simulate(
            Strategy::MpiMatrix { nodes: 2 },
            &w,
            &cluster,
            ComputeUnit::Cpu,
        );
        LinkRow {
            link: name.to_string(),
            baseline_ms: base.sim.makespan.as_millis_f64(),
            teamnet_x2_ms: team.sim.makespan.as_millis_f64(),
            mpi_matrix_x2_ms: mpi.sim.makespan.as_millis_f64(),
        }
    })
    .collect()
}

/// Result of the inference-combiner ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinerRow {
    /// Number of experts.
    pub k: usize,
    /// Accuracy of the paper's arg-min-entropy gate.
    pub argmin_accuracy: f64,
    /// Accuracy of the rejected (weighted) majority vote.
    pub majority_accuracy: f64,
}

/// Compares the arg-min gate against the majority vote on trained teams
/// (Section V's design argument).
pub fn combiner_comparison(suite: &mut MnistSuite) -> Vec<CombinerRow> {
    let test = suite.test.clone();
    let mut rows = Vec::new();
    for k in [2usize, 4] {
        let team = if k == 2 {
            &mut suite.team2.team
        } else {
            &mut suite.team4.team
        };
        rows.push(CombinerRow {
            k,
            argmin_accuracy: team.evaluate(&test).accuracy,
            majority_accuracy: team.evaluate_majority(&test),
        });
    }
    rows
}

/// One row of the request-rate ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadRow {
    /// Arrival rate in requests/second.
    pub rate_hz: f64,
    /// Mean response time (ms) serving with the baseline model.
    pub baseline_mean_ms: f64,
    /// Mean response time (ms) serving with TeamNet ×2.
    pub teamnet_mean_ms: f64,
    /// Baseline server utilization.
    pub baseline_utilization: f64,
    /// TeamNet master utilization.
    pub teamnet_utilization: f64,
}

/// Sweeps the request rate through an M/D/1 server using each strategy's
/// modeled service time: the strategy with the lower service time saturates
/// later.
pub fn load_sweep(scale: &Scale, seed: u64) -> Vec<LoadRow> {
    use rand::SeedableRng;
    let full_spec = mnist_baseline_spec(scale);
    let expert_spec = mnist_expert_spec(scale, 2);
    let w = Workload {
        full: ModelCost::measure(&build_expert(&full_spec, 0), &full_spec.input_dims()),
        expert: ModelCost::measure(&build_expert(&expert_spec, 0), &expert_spec.input_dims()),
        result_bytes: 20,
    };
    let cluster = SimCluster::homogeneous(DeviceProfile::jetson_tx2_cpu(), 2);
    let base_service = simulate(Strategy::Baseline, &w, &cluster, ComputeUnit::Cpu)
        .sim
        .makespan;
    let team_service = simulate(Strategy::TeamNet { k: 2 }, &w, &cluster, ComputeUnit::Cpu)
        .sim
        .makespan;

    [20.0f64, 60.0, 120.0, 180.0]
        .iter()
        .map(|&rate_hz| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let base = serve_capped(base_service, rate_hz, &mut rng);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let team = serve_capped(team_service, rate_hz, &mut rng);
            LoadRow {
                rate_hz,
                baseline_mean_ms: base.0,
                teamnet_mean_ms: team.0,
                baseline_utilization: base.1,
                teamnet_utilization: team.1,
            }
        })
        .collect()
}

/// One row of the mixed-hardware ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedClusterRow {
    /// Cluster composition label.
    pub cluster: String,
    /// TeamNet ×2 end-to-end latency (ms).
    pub teamnet_x2_ms: f64,
    /// Latency of the slowest node's local compute alone (ms).
    pub slowest_compute_ms: f64,
}

/// The paper claims TeamNet "is proven to work well with ... different
/// numbers and types of edge devices"; this ablation quantifies the cost
/// of heterogeneity: the arg-min gather waits for the slowest expert.
pub fn mixed_cluster_sweep(scale: &Scale) -> Vec<MixedClusterRow> {
    use teamnet_simnet::SimCluster as SC;
    let full_spec = mnist_baseline_spec(scale);
    let expert_spec = mnist_expert_spec(scale, 2);
    let w = Workload {
        full: ModelCost::measure(&build_expert(&full_spec, 0), &full_spec.input_dims()),
        expert: ModelCost::measure(&build_expert(&expert_spec, 0), &expert_spec.input_dims()),
        result_bytes: 20,
    };
    let jetson = DeviceProfile::jetson_tx2_cpu;
    let rpi = DeviceProfile::raspberry_pi_3b_plus;
    [
        ("jetson+jetson", vec![jetson(), jetson()]),
        ("jetson+rpi", vec![jetson(), rpi()]),
        ("rpi+rpi", vec![rpi(), rpi()]),
    ]
    .into_iter()
    .map(|(name, devices)| {
        let slowest_compute_ms = devices
            .iter()
            .map(|d| {
                d.compute_time(w.expert.total_flops(), w.expert.depth(), ComputeUnit::Cpu)
                    .as_millis_f64()
            })
            .fold(0.0f64, f64::max);
        let cluster = SC::heterogeneous(devices);
        let report = simulate(Strategy::TeamNet { k: 2 }, &w, &cluster, ComputeUnit::Cpu);
        MixedClusterRow {
            cluster: name.to_string(),
            teamnet_x2_ms: report.sim.makespan.as_millis_f64(),
            slowest_compute_ms,
        }
    })
    .collect()
}

/// Serves 2 000 requests unless the offered load exceeds capacity, in
/// which case the response time is reported as infinite (the queue grows
/// without bound).
fn serve_capped(service: SimTime, rate_hz: f64, rng: &mut impl rand::Rng) -> (f64, f64) {
    let capacity_hz = 1.0 / service.as_secs_f64();
    if rate_hz >= capacity_hz {
        return (f64::INFINITY, 1.0);
    }
    let report = simulate_serving(service, rate_hz, 2_000, rng);
    (report.mean_response.as_millis_f64(), report.utilization)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_sweep_theory_monotone() {
        let rows = gain_sweep(3);
        assert_eq!(rows.len(), 5);
        // Higher gain → smaller theoretical residual at batch 100.
        for pair in rows.windows(2) {
            assert!(
                pair[1].theory_imbalance_at_100 <= pair[0].theory_imbalance_at_100 + 1e-7,
                "{pair:?}"
            );
        }
        // Every measured run still balances reasonably.
        for row in &rows {
            assert!(row.measured_imbalance < 0.35, "{row:?}");
        }
    }

    #[test]
    fn link_sweep_shapes() {
        let rows = link_sweep(&Scale::full());
        assert_eq!(rows.len(), 3);
        let eth = &rows[0];
        let congested = &rows[2];
        // Baseline is link-independent.
        assert!((eth.baseline_ms - congested.baseline_ms).abs() < 1e-6);
        // Congestion hurts TeamNet and devastates MPI.
        assert!(congested.teamnet_x2_ms > eth.teamnet_x2_ms);
        assert!(congested.mpi_matrix_x2_ms > 2.0 * eth.mpi_matrix_x2_ms);
        // On ethernet TeamNet clearly beats the baseline.
        assert!(eth.teamnet_x2_ms < eth.baseline_ms);
    }

    #[test]
    fn mixed_cluster_pays_for_its_slowest_member() {
        let rows = mixed_cluster_sweep(&Scale::full());
        assert_eq!(rows.len(), 3);
        // Latency ordering follows the slowest device.
        assert!(rows[0].teamnet_x2_ms < rows[1].teamnet_x2_ms);
        assert!(rows[1].teamnet_x2_ms <= rows[2].teamnet_x2_ms + 1e-9);
        // And each is at least the slowest member's compute time.
        for row in &rows {
            assert!(row.teamnet_x2_ms >= row.slowest_compute_ms, "{row:?}");
        }
    }

    #[test]
    fn load_sweep_saturates_baseline_first() {
        let rows = load_sweep(&Scale::full(), 9);
        assert_eq!(rows.len(), 4);
        // At low rate both respond near their service times.
        assert!(rows[0].baseline_mean_ms.is_finite());
        // TeamNet (shorter service time) keeps lower utilization throughout.
        for row in &rows {
            if row.baseline_utilization < 1.0 {
                assert!(
                    row.teamnet_utilization <= row.baseline_utilization + 1e-9,
                    "{row:?}"
                );
            }
        }
        // The baseline saturates at or before the rate TeamNet saturates.
        let base_sat = rows.iter().position(|r| r.baseline_mean_ms.is_infinite());
        let team_sat = rows.iter().position(|r| r.teamnet_mean_ms.is_infinite());
        if let (Some(b), Some(t)) = (base_sat, team_sat) {
            assert!(b <= t);
        }
    }
}
